//! Integration tests of the full allocator stack — fault injector over
//! correcting allocator over DieFast over DieHard over the arena —
//! exercising interactions no single crate's unit tests can reach.

use xt_alloc::{AllocTime, FreeOutcome, Heap, SiteHash, SitePair};
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_faults::{FaultKind, FaultSpec, FaultyHeap, INJECTED_FREE_SITE};
use xt_patch::PatchTable;

const SITE: SiteHash = SiteHash::from_raw(0x57AC);

type FullStack = FaultyHeap<CorrectingHeap<DieFastHeap>>;

fn stack(seed: u64, patches: PatchTable, fault: Option<FaultSpec>) -> FullStack {
    let diefast = DieFastHeap::new(DieFastConfig::with_seed(seed));
    FaultyHeap::new(CorrectingHeap::new(diefast, patches), fault)
}

#[test]
fn padded_site_contains_injected_overflow_through_the_whole_stack() {
    // An overflow injected *above* the correcting allocator lands inside
    // the pad the correcting allocator added *below* — the full mitigation
    // path, end to end.
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 16,
            fill: 0xAB,
        },
        trigger: AllocTime::from_raw(1),
    };
    let mut patches = PatchTable::new();
    patches.add_pad(SITE, 16);
    let mut s = stack(1, patches, Some(fault));
    let p = s.malloc(16, SITE).unwrap(); // 16 + 16 pad → 32-byte slot
                                         // The injector wrote [16, 32): inside the padded slot.
    assert_eq!(s.arena().read_bytes(p + 16, 16).unwrap(), &[0xAB; 16]);
    // No canary corruption anywhere: allocate a lot and expect no signals.
    for _ in 0..200 {
        let q = s.malloc(16, SITE).unwrap();
        s.free(q, SITE);
    }
    assert!(
        !s.inner_mut().inner_mut().has_signals(),
        "padded overflow still corrupted the heap"
    );
}

#[test]
fn unpadded_overflow_is_detected_through_the_whole_stack() {
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 16,
            fill: 0xAB,
        },
        // Fire once the class has churned: Theorem 2's detection term
        // assumes freed (canaried) fence-posts exist, which takes ~100
        // allocations of alloc/free traffic to establish.
        trigger: AllocTime::from_raw(150),
    };
    // Across several seeds, the same stack WITHOUT the pad must detect the
    // corruption in a near-majority of runs.
    let mut detected = 0;
    for seed in 0..8 {
        let mut s = stack(seed, PatchTable::new(), Some(fault));
        // Three frees per surviving object: most free slots end up
        // canaried, giving the per-run detection probability the theorem
        // promises.
        let mut live = Vec::new();
        for i in 0..300u64 {
            let q = s.malloc(16, SITE).unwrap();
            if i % 4 == 0 {
                live.push(q);
            } else {
                s.free(q, SITE);
            }
        }
        for q in live {
            s.free(q, SITE);
        }
        if s.inner_mut().inner_mut().has_signals() {
            detected += 1;
        }
    }
    assert!(
        detected >= 4,
        "only {detected}/8 stacks detected the overflow"
    );
}

#[test]
fn deferral_neutralizes_injected_dangling_free_through_the_stack() {
    let fault = FaultSpec {
        kind: FaultKind::DanglingFree { lag: 3 },
        trigger: AllocTime::from_raw(2),
    };
    let mut patches = PatchTable::new();
    patches.add_deferral(SitePair::new(SITE, INJECTED_FREE_SITE), 1_000_000);
    let mut s = stack(3, patches, Some(fault));
    let _a = s.malloc(16, SITE).unwrap();
    let b = s.malloc(16, SITE).unwrap(); // trigger object (clock 2)
    s.arena_mut().write_u64(b, 0x5AFE).unwrap();
    for _ in 0..50 {
        let q = s.malloc(16, SITE).unwrap();
        s.free(q, SITE);
    }
    // The injected free fired but was deferred: the object's data is
    // still intact and no canary was written over it.
    assert_eq!(s.arena().read_u64(b).unwrap(), 0x5AFE);
    assert!(!s.inner_mut().inner_mut().has_signals());
}

#[test]
fn hot_reload_fixes_a_live_process() {
    // §3.4: "subsequent allocations in the same process will be patched
    // on-the-fly without interrupting execution."
    let mut s = stack(4, PatchTable::new(), None);
    let before = s.malloc(16, SITE).unwrap();
    assert_eq!(s.usable_size(before), Some(16));
    let mut patches = PatchTable::new();
    patches.add_pad(SITE, 20);
    s.inner_mut().reload_patches(patches);
    let after = s.malloc(16, SITE).unwrap();
    assert_eq!(
        s.usable_size(after),
        Some(64),
        "pad not applied after reload"
    );
    // Pre-reload objects still free cleanly.
    assert_eq!(s.free(before, SITE), FreeOutcome::Freed);
}

#[test]
fn breakpoint_propagates_through_all_layers() {
    let mut s = stack(5, PatchTable::new(), None);
    s.inner_mut()
        .inner_mut()
        .set_breakpoint(Some(AllocTime::from_raw(3)));
    for _ in 0..3 {
        s.malloc(16, SITE).unwrap();
    }
    assert!(matches!(
        s.malloc(16, SITE),
        Err(xt_alloc::HeapError::Breakpoint { .. })
    ));
}

#[test]
fn clocks_agree_across_layers() {
    // The allocation clock is the coordinate system for breakpoints,
    // deferrals, and injections; every layer must report the same one.
    let mut s = stack(6, PatchTable::new(), None);
    for _ in 0..17 {
        s.malloc(24, SITE).unwrap();
    }
    let top = s.clock();
    let mid = s.inner().clock();
    let bottom = s.inner().inner().clock();
    assert_eq!(top, AllocTime::from_raw(17));
    assert_eq!(top, mid);
    assert_eq!(mid, bottom);
}

#[test]
fn alloc_site_survives_all_wrappers() {
    let mut s = stack(7, PatchTable::new(), None);
    let p = s.malloc(48, SITE).unwrap();
    assert_eq!(s.alloc_site_of(p), Some(SITE));
    assert_eq!(s.inner().alloc_site_of(p), Some(SITE));
    s.free(p, SITE);
    assert_eq!(s.alloc_site_of(p), None, "freed object still has a site");
}

#[test]
fn deferred_objects_survive_heavy_pressure() {
    // Parked objects must never be handed out again while deferred, even
    // under allocation pressure in their size class.
    let mut patches = PatchTable::new();
    let free_site = SiteHash::from_raw(0xF2EE);
    patches.add_deferral(SitePair::new(SITE, free_site), 500);
    let mut s = stack(8, patches, None);
    let mut parked = Vec::new();
    for i in 0..20u64 {
        let p = s.malloc(16, SITE).unwrap();
        s.arena_mut().write_u64(p, 0xD00D_0000 + i).unwrap();
        assert!(matches!(s.free(p, free_site), FreeOutcome::Deferred { .. }));
        parked.push((p, 0xD00D_0000 + i));
    }
    // Pressure: hundreds of allocations in the same class.
    for _ in 0..300 {
        let q = s.malloc(16, SiteHash::from_raw(1)).unwrap();
        assert!(
            parked.iter().all(|&(p, _)| p != q),
            "parked object reallocated"
        );
        s.free(q, SiteHash::from_raw(1));
    }
    for (p, tag) in &parked {
        assert_eq!(s.arena().read_u64(*p).unwrap(), *tag, "drag data lost");
    }
}
