//! End-to-end integration: the full detect → isolate → patch → verify
//! pipeline across all crates, on the paper's case studies.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_faults::FaultKind;
use xt_patch::PatchTable;
use xt_workloads::{benign_requests, overflow_requests, EspressoLike, SquidLike, WorkloadInput};

#[test]
fn squid_overflow_is_repaired_with_a_six_byte_pad() {
    let input = WorkloadInput::with_seed(1)
        .payload(overflow_requests(25))
        .intensity(3);
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&SquidLike::new(), &input, None);
    assert!(outcome.fixed, "squid not repaired");
    let pads: Vec<u32> = outcome.patches.pads().map(|(_, p)| p).collect();
    assert!(
        pads.contains(&6),
        "expected the paper's exact 6-byte pad, got {pads:?}"
    );
    // Exactly one culprit site (the paper: "identifies a single allocation
    // site as the culprit").
    assert_eq!(outcome.patches.pads().count(), 1);
}

#[test]
fn squid_on_benign_traffic_needs_no_patches() {
    let input = WorkloadInput::with_seed(2)
        .payload(benign_requests(40))
        .intensity(2);
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&SquidLike::new(), &input, None);
    assert!(outcome.fixed);
    assert!(outcome.patches.is_empty(), "patches on clean input");
    assert!(outcome.rounds.is_empty());
}

#[test]
fn patch_files_round_trip_through_disk_and_still_fix_the_bug() {
    let input = WorkloadInput::with_seed(9).intensity(3);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 36,
            fill: 0xCC,
        },
        100,
        300,
        20,
        4,
        31,
    )
    .expect("no manifesting fault");
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
    assert!(outcome.fixed);

    // Save → load → apply: the stored patch file fixes subsequent
    // executions, the paper's deployment story (§3.4).
    let dir = std::env::temp_dir().join("xt_end_to_end");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("patches.txt");
    outcome.patches.save(&path).unwrap();
    let loaded = PatchTable::load(&path).unwrap();
    assert_eq!(loaded, outcome.patches);
    std::fs::remove_file(&path).unwrap();

    let mut failures = 0;
    for seed in 0..5 {
        let mut config = RunConfig::with_seed(900 + seed);
        config.fault = Some(fault);
        config.patches = loaded.clone();
        config.halt_on_signal = true;
        if execute(&EspressoLike::new(), &input, config).failed() {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "loaded patches did not fix the bug");
}

#[test]
fn breakpoint_replays_reproduce_object_ids_across_seeds() {
    // The property iterative isolation rests on: the same input replayed
    // under different heap seeds, stopped at the same malloc breakpoint,
    // yields identical object-id populations.
    use xt_alloc::AllocTime;
    let input = WorkloadInput::with_seed(3).intensity(2);
    let breakpoint = AllocTime::from_raw(150);
    let mut id_sets = Vec::new();
    for seed in 0..3 {
        let mut config = RunConfig::with_seed(seed * 101 + 7);
        config.breakpoint = Some(breakpoint);
        let rec = execute(&EspressoLike::new(), &input, config);
        assert!(rec.hit_breakpoint());
        let mut ids: Vec<u64> = rec
            .image
            .live_objects()
            .map(|(_, s)| s.object_id.raw())
            .collect();
        ids.sort_unstable();
        id_sets.push(ids);
    }
    assert_eq!(id_sets[0], id_sets[1], "live-object ids diverged");
    assert_eq!(id_sets[1], id_sets[2], "live-object ids diverged");
    assert!(!id_sets[0].is_empty());
}

/// Finds an injected overflow that both manifests *and* repairs — the
/// paper's per-seed methodology; not every manifesting fault is
/// isolatable in iterative mode.
fn repairable_overflow(
    input: &WorkloadInput,
    delta: u32,
    fill: u8,
    lo: u64,
    hi: u64,
    base_sel: u64,
) -> Option<(xt_faults::FaultSpec, PatchTable)> {
    for sel in base_sel..base_sel + 10 {
        let fault = find_manifesting_fault(
            &EspressoLike::new(),
            input,
            FaultKind::BufferOverflow { delta, fill },
            lo,
            hi,
            20,
            4,
            sel,
        )?;
        let mut mode = IterativeMode::new(IterativeConfig {
            base_seed: sel ^ 0xF00D,
            ..IterativeConfig::default()
        });
        let outcome = mode.repair(&EspressoLike::new(), input, Some(fault));
        if outcome.fixed && outcome.patches.pads().count() > 0 {
            return Some((fault, outcome.patches));
        }
    }
    None
}

#[test]
fn repair_survives_two_distinct_bugs_in_one_program() {
    // Two different overflows; each repaired independently, their patches
    // merged (§6.4) protect against both.
    let input = WorkloadInput::with_seed(61).intensity(3);
    let (fault_a, patches_a) =
        repairable_overflow(&input, 4, 0xA1, 100, 250, 41).expect("no repairable bug A");
    let (fault_b, patches_b) =
        repairable_overflow(&input, 20, 0xB2, 250, 450, 80).expect("no repairable bug B");
    let merged = PatchTable::merged([&patches_a, &patches_b]);
    for (fault, label) in [(fault_a, "A"), (fault_b, "B")] {
        let mut failures = 0;
        for seed in 0..4 {
            let mut config = RunConfig::with_seed(7000 + seed);
            config.fault = Some(fault);
            config.patches = merged.clone();
            config.halt_on_signal = true;
            if execute(&EspressoLike::new(), &input, config).failed() {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "merged patches fail against bug {label}");
    }
}
