//! The deployment shape the replica pool exists for: a squid-style cache
//! served by a persistent replica set. Requests stream in continuously;
//! an attack request arrives in live traffic; the pool observes the
//! divergence, isolates the overflow from the replicas' heap images, and
//! hot-patches its own workers — after which the *same* attack is
//! harmless. No replica is ever restarted.

use exterminator::pool::{PoolConfig, ReplicaPool};
use xt_patch::PatchTable;
use xt_workloads::{server_session, SquidLike};

#[test]
fn pooled_squid_server_self_heals_under_attack_traffic() {
    let workload = SquidLike::new();
    // 24 batches of 16 requests; every 6th batch carries the crafted
    // escaped URL (batches 5, 11, 17, 23).
    let session = server_session(24, 16, Some(6));
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &workload,
            PoolConfig {
                replicas: 6,
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        let mut first_error_batch = None;
        let mut healed_attacks = 0;
        for (i, input) in session.iter().enumerate() {
            let out = pool.run_one(input, None);
            if out.outcome.error_observed() {
                first_error_batch.get_or_insert(i);
                assert!(
                    out.outcome.report.is_some(),
                    "error at batch {i} triggered no isolation"
                );
            } else if !pool.patches().is_empty() && i % 6 == 5 {
                // An attack batch served cleanly under isolated patches:
                // the pad contains the 6-byte trailer.
                healed_attacks += 1;
            }
            assert_eq!(
                out.outcome.replicas.len(),
                6,
                "replica set changed size mid-session"
            );
        }
        let first = first_error_batch.expect("the seeded overflow never manifested");
        assert_eq!(first % 6, 5, "error observed on a benign batch");
        assert!(
            healed_attacks >= 1,
            "no attack batch was served cleanly after patching"
        );
        // The pool's live table now carries a pad ≥ 6 for the escaped
        // store path (site 0x5C_E5CA under the session/batch context —
        // check by effect, not by hash): patched attack runs are clean.
        assert!(
            !pool.patches().is_empty(),
            "self-healing left no patches loaded"
        );
        assert!(
            pool.patches().pads().any(|(_, pad)| pad >= 6),
            "no pad large enough for the 6-byte trailer: {:?}",
            pool.patches().pads().collect::<Vec<_>>()
        );
        pool.shutdown();
    });
}
