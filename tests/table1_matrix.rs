//! Table 1 as executable assertions: how Exterminator handles each class
//! of memory error.
//!
//! | Error              | DieHard       | Exterminator                |
//! |--------------------|---------------|-----------------------------|
//! | invalid frees      | tolerate      | tolerate                    |
//! | double frees       | tolerate      | tolerate                    |
//! | uninitialized reads| detect*       | N/A (zero-filled instead)   |
//! | dangling pointers  | tolerate*     | tolerate* & correct*        |
//! | buffer overflows   | tolerate*     | tolerate* & correct*        |

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_alloc::{Addr, FreeOutcome, Heap, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_faults::FaultKind;
use xt_workloads::{EspressoLike, WorkloadInput};

const SITE: SiteHash = SiteHash::from_raw(0x7AB1);

#[test]
fn invalid_frees_are_tolerated() {
    let mut heap = DieFastHeap::new(DieFastConfig::with_seed(1));
    let p = heap.malloc(32, SITE).unwrap();
    heap.arena_mut().write_u64(p, 42).unwrap();
    // Wild pointer, interior pointer, null: all ignored.
    assert_eq!(
        heap.free(Addr::new(0x1234_5678), SITE),
        FreeOutcome::InvalidFreeIgnored
    );
    assert_eq!(heap.free(p + 8, SITE), FreeOutcome::InvalidFreeIgnored);
    assert_eq!(heap.free(Addr::NULL, SITE), FreeOutcome::InvalidFreeIgnored);
    // The heap is undamaged: the object still reads back.
    assert_eq!(heap.arena().read_u64(p).unwrap(), 42);
    assert!(!heap.has_signals());
}

#[test]
fn double_frees_are_tolerated() {
    let mut heap = DieFastHeap::new(DieFastConfig::with_seed(2));
    let p = heap.malloc(32, SITE).unwrap();
    assert_eq!(heap.free(p, SITE), FreeOutcome::Freed);
    for _ in 0..5 {
        assert_eq!(heap.free(p, SITE), FreeOutcome::DoubleFreeIgnored);
    }
    // Later allocations still work; nothing is corrupted.
    let q = heap.malloc(32, SITE).unwrap();
    heap.arena_mut().write_u64(q, 7).unwrap();
    assert_eq!(heap.arena().read_u64(q).unwrap(), 7);
}

#[test]
fn uninitialized_reads_see_zeros() {
    // "Exterminator fills all allocated objects with zeroes" (§2.1): an
    // uninitialized read is deterministic rather than garbage, even when
    // the slot previously held data or canaries.
    let mut heap = DieFastHeap::new(DieFastConfig::with_seed(3));
    let p = heap.malloc(64, SITE).unwrap();
    heap.arena_mut().fill(p, 64, 0xAB).unwrap();
    heap.free(p, SITE);
    // Allocate until the same class reuses slots; all reads must be zero.
    for _ in 0..200 {
        let q = heap.malloc(64, SITE).unwrap();
        let bytes = heap.arena().read_bytes(q, 64).unwrap();
        assert!(bytes.iter().all(|&b| b == 0), "uninitialized data leaked");
    }
}

#[test]
fn buffer_overflows_are_tolerated_and_corrected() {
    let input = WorkloadInput::with_seed(41).intensity(3);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        100,
        300,
        20,
        4,
        17,
    )
    .expect("no manifesting overflow");
    // Tolerate (probabilistically): some randomized runs complete despite
    // the overflow.
    let mut survived = 0;
    for seed in 0..8 {
        let mut config = RunConfig::with_seed(3000 + seed);
        config.fault = Some(fault);
        if execute(&EspressoLike::new(), &input, config)
            .result
            .completed()
        {
            survived += 1;
        }
    }
    assert!(survived >= 2, "randomization never tolerated the overflow");
    // Correct: iterative repair then zero failures.
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
    assert!(outcome.fixed, "overflow not corrected");
    assert!(outcome.patches.pads().count() > 0);
}

#[test]
fn dangling_pointers_are_tolerated_and_correctable() {
    // Tolerate: DieHard randomization makes premature reuse unlikely, so
    // many runs survive a dangling free unharmed.
    let input = WorkloadInput::with_seed(55).intensity(2);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::DanglingFree { lag: 12 },
        100,
        300,
        20,
        4,
        23,
    )
    .expect("no manifesting dangling fault");
    let mut survived_diehard = 0;
    for seed in 0..8 {
        let mut config = RunConfig::with_seed(4000 + seed);
        config.fault = Some(fault);
        // Without canaries (plain-DieHard behaviour) the stale data is
        // usually still intact when read.
        config.diefast = DieFastConfig::with_seed(0).fill_probability(0.0);
        if execute(&EspressoLike::new(), &input, config)
            .result
            .completed()
        {
            survived_diehard += 1;
        }
    }
    // Tolerance is probabilistic (Table 1's asterisk): the claim is that
    // randomization beats the baseline's LIFO reuse, which hands the
    // dangled slot to the very next same-size allocation.
    let mut survived_baseline = 0;
    for seed in 0..8 {
        let baseline = xt_baseline::BaselineHeap::with_seed(seed);
        let mut stack = xt_faults::FaultyHeap::new(baseline, Some(fault));
        use xt_workloads::Workload as _;
        if EspressoLike::new().run(&mut stack, &input).completed() {
            survived_baseline += 1;
        }
    }
    assert!(
        survived_diehard >= 2,
        "randomization tolerated the dangling free in only {survived_diehard}/8 runs"
    );
    assert!(
        survived_diehard >= survived_baseline,
        "DieHard ({survived_diehard}/8) should tolerate at least as well as \
         the baseline ({survived_baseline}/8)"
    );
    // Correct: a deferral patch neutralizes the premature free entirely.
    let mut patches = xt_patch::PatchTable::new();
    patches.add_deferral(
        xt_alloc::SitePair::new(
            // The deferral keys on (alloc site, injected free site); rather
            // than isolate here (covered by other tests), show that the
            // correcting allocator + a suitable patch makes every run
            // clean. Find the alloc site from a reference run's history.
            {
                let mut config = RunConfig::with_seed(77);
                config.fault = Some(fault);
                config.diefast = DieFastConfig::cumulative_with_seed(77).fill_probability(1.0);
                let rec = execute(&EspressoLike::new(), &input, config);
                let history = rec.history.unwrap();
                history
                    .get(xt_alloc::ObjectId::from_raw(fault.trigger.raw()))
                    .expect("trigger object in history")
                    .alloc_site
            },
            xt_faults::INJECTED_FREE_SITE,
        ),
        10_000,
    );
    let mut failures = 0;
    for seed in 0..6 {
        let mut config = RunConfig::with_seed(5000 + seed);
        config.fault = Some(fault);
        config.patches = patches.clone();
        config.halt_on_signal = true;
        if execute(&EspressoLike::new(), &input, config).failed() {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 0,
        "deferral patch did not correct the dangling free"
    );
}
