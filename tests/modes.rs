//! Integration tests for the replicated and cumulative modes of operation
//! (§3.4), spanning the full crate stack.

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use exterminator::replicated::{run_replicated, ReplicatedConfig};
use exterminator::runner::find_manifesting_fault;
use exterminator::voter::vote;
use xt_faults::FaultKind;
use xt_patch::PatchTable;
use xt_workloads::{
    attack_browsing_session, benign_browsing_session, CfracLike, EspressoLike, MozillaLike,
    ProfileWorkload, Workload, WorkloadInput,
};

#[test]
fn replicas_vote_unanimously_on_clean_workloads() {
    // Every workload in the suite is deterministic modulo heap layout, so
    // differently-seeded replicas must agree byte-for-byte.
    let workloads: Vec<Box<dyn Workload + Sync>> = vec![
        Box::new(EspressoLike::new()),
        Box::new(CfracLike::new()),
        Box::new(ProfileWorkload::parser_like()),
    ];
    for w in &workloads {
        let outcome = run_replicated(
            w.as_ref(),
            &WorkloadInput::with_seed(5),
            None,
            &PatchTable::new(),
            &ReplicatedConfig::default(),
        );
        assert!(
            outcome.vote.unanimous(),
            "{} replicas diverged on clean input",
            w.name()
        );
        assert!(!outcome.error_observed());
    }
}

#[test]
fn replicated_mode_observes_and_isolates_faults() {
    let input = WorkloadInput::with_seed(12).intensity(3);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 36,
            fill: 0x77,
        },
        100,
        300,
        20,
        4,
        51,
    )
    .expect("no manifesting fault");
    let outcome = run_replicated(
        &EspressoLike::new(),
        &input,
        Some(fault),
        &PatchTable::new(),
        &ReplicatedConfig {
            replicas: 6,
            ..ReplicatedConfig::default()
        },
    );
    assert!(outcome.error_observed(), "six replicas all blind to fault");
    assert!(outcome.report.is_some(), "no isolation attempted");
}

#[test]
fn voter_matches_manual_plurality() {
    let outputs = vec![
        b"alpha".to_vec(),
        b"beta".to_vec(),
        b"alpha".to_vec(),
        b"alpha".to_vec(),
        b"gamma".to_vec(),
    ];
    let v = vote(&outputs);
    assert_eq!(v.winner, b"alpha");
    assert_eq!(v.agreeing, vec![0, 2, 3]);
    assert_eq!(v.dissenting, vec![1, 4]);
    assert!(v.majority());
}

#[test]
fn cumulative_mode_isolates_mozilla_idn_overflow() {
    let input = WorkloadInput::with_seed(77).payload(attack_browsing_session(2));
    let mut mode = CumulativeMode::new(CumulativeModeConfig {
        vary_input_seed: true,
        ..CumulativeModeConfig::default()
    });
    let outcome = mode.run_until_isolated(&MozillaLike::new(), &input, None, 150);
    assert!(
        outcome.isolated,
        "not isolated after {} runs / {} failures",
        outcome.runs, outcome.failures
    );
    let max_pad = outcome.patches.pads().map(|(_, p)| p).max().unwrap_or(0);
    assert!(max_pad >= 8, "pad {max_pad} below the 8-byte overflow");
    // Patched browsing stops failing: run a few more times with patches.
    let patches = outcome.patches.clone();
    let mut post_failures = 0;
    for seed in 0..6 {
        let mut config = exterminator::runner::RunConfig::with_seed(0xACE + seed);
        config.patches = patches.clone();
        config.halt_on_signal = true;
        let mut run_input = input.clone();
        run_input.seed = 9000 + seed;
        if exterminator::runner::execute(&MozillaLike::new(), &run_input, config).failed() {
            post_failures += 1;
        }
    }
    assert_eq!(post_failures, 0, "patched browser still failing");
}

#[test]
fn cumulative_mode_has_no_false_positives_on_benign_browsing() {
    let input = WorkloadInput::with_seed(88).payload(benign_browsing_session(10));
    let mut mode = CumulativeMode::new(CumulativeModeConfig {
        vary_input_seed: true,
        ..CumulativeModeConfig::default()
    });
    for _ in 0..30 {
        let digest = mode.run_once(&MozillaLike::new(), &input, None);
        assert!(!digest.failed, "benign browsing failed");
        assert!(!digest.isolated, "false positive on benign browsing");
    }
}

#[test]
fn cumulative_state_stays_small() {
    // §3.4: "The retained data is on the order of a few kilobytes per
    // execution, compared to tens or hundreds of megabytes for each heap
    // image."
    let input = WorkloadInput::with_seed(91).payload(attack_browsing_session(2));
    let mut mode = CumulativeMode::new(CumulativeModeConfig {
        vary_input_seed: true,
        ..CumulativeModeConfig::default()
    });
    for _ in 0..20 {
        mode.run_once(&MozillaLike::new(), &input, None);
    }
    let state = mode.isolator().state_bytes();
    assert!(
        state < 256 * 1024,
        "cumulative state too big: {state} bytes"
    );
    // Compare against one heap image of the same workload.
    let rec = exterminator::runner::execute(
        &MozillaLike::new(),
        &input,
        exterminator::runner::RunConfig::with_seed(1),
    );
    let image_bytes = rec.image.to_bytes().len();
    assert!(
        state < image_bytes / 4,
        "state {state} not much smaller than an image ({image_bytes})"
    );
}
