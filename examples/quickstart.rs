//! Quickstart: inject a memory error, watch Exterminator isolate and
//! correct it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The flow mirrors the paper's iterative mode (§3.4): a buggy "program"
//! (an espresso-like workload with an injected buffer overflow) is run
//! until DieFast detects corruption, replayed under fresh heap
//! randomization to collect independent heap images, the images are
//! diffed to pin down the culprit allocation site, and a runtime patch is
//! generated that pads that site — after which the same buggy program runs
//! clean.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_faults::FaultKind;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    let workload = EspressoLike::new();
    let input = WorkloadInput::with_seed(2024).intensity(3);

    // Step 1: create a buggy program. The injector plants a deterministic
    // 20-byte buffer overflow, like the DieHard fault injector the paper
    // uses (§7.2). Faults absorbed by size-class rounding trigger nothing,
    // so we search for one that actually manifests — the paper does the
    // same ("until it triggers an error or divergent output").
    let fault = find_manifesting_fault(
        &workload,
        &input,
        FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        100,
        400,
        30,
        4,
        7,
    )
    .expect("could not construct a manifesting overflow");
    println!("injected fault: {fault:?}");

    // Step 2: demonstrate the symptom. Without patches, randomized runs
    // fail (DieFast signal or crash) with high probability.
    let mut unpatched_failures = 0;
    for seed in 0..5 {
        let mut config = RunConfig::with_seed(seed);
        config.fault = Some(fault);
        config.halt_on_signal = true;
        if execute(&workload, &input, config).failed() {
            unpatched_failures += 1;
        }
    }
    println!("unpatched: {unpatched_failures}/5 randomized runs fail");

    // Step 3: let Exterminator repair it.
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&workload, &input, Some(fault));
    println!(
        "repair: fixed={} rounds={} heap images used={}",
        outcome.fixed,
        outcome.rounds.len(),
        outcome.images_used
    );
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "  round {i}: detected via {:?} at {}",
            round.failure, round.breakpoint
        );
        print!("{}", round.report);
    }
    println!("runtime patches:\n{}", outcome.patches.to_text());

    // Step 4: verify — the same buggy binary, fresh randomization, patches
    // loaded: no failures.
    let mut patched_failures = 0;
    for seed in 100..105 {
        let mut config = RunConfig::with_seed(seed);
        config.fault = Some(fault);
        config.patches = outcome.patches.clone();
        config.halt_on_signal = true;
        if execute(&workload, &input, config).failed() {
            patched_failures += 1;
        }
    }
    println!("patched: {patched_failures}/5 randomized runs fail");
    assert!(outcome.fixed, "quickstart should end with a fix");
    assert_eq!(patched_failures, 0, "patched program must run clean");
}
