//! The Squid case study (§7.2): a real-bug reproduction.
//!
//! ```text
//! cargo run --example squid_server
//! ```
//!
//! "Version 2.3s5 of Squid has a buffer overflow; certain inputs cause
//! Squid to crash with either the GNU libc allocator or the
//! Boehm-Demers-Weiser collector. We run Squid three times under
//! Exterminator in iterative mode with an input that triggers a buffer
//! overflow. Exterminator continues executing correctly in each run ...
//! [and] generates a pad of exactly 6 bytes, fixing the error."
//!
//! This example shows all three acts: the crash under the baseline
//! (glibc-style) allocator, survival under DieHard randomization, and
//! isolation + the 6-byte pad under Exterminator.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use xt_baseline::BaselineHeap;
use xt_workloads::{overflow_requests, SquidLike, Workload, WorkloadInput};

fn main() {
    let squid = SquidLike::new();
    let evil_input = WorkloadInput::with_seed(1)
        .payload(overflow_requests(25))
        .intensity(3);

    // Act 1: the baseline allocator. The 6-byte overflow tramples inline
    // chunk metadata; the allocator detects corruption (glibc would call
    // abort()).
    let mut baseline = BaselineHeap::with_seed(1);
    let result = squid.run(&mut baseline, &evil_input);
    println!(
        "baseline (libc-style): completed={} poisoned={}",
        result.completed(),
        baseline.poisoned()
    );

    // Act 2 + 3: Exterminator. Randomization tolerates the overflow while
    // DieFast detects it; iterative isolation diffs the heap images and
    // emits the pad.
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&squid, &evil_input, None);
    println!(
        "exterminator: fixed={} rounds={} images={}",
        outcome.fixed,
        outcome.rounds.len(),
        outcome.images_used
    );
    for round in &outcome.rounds {
        print!("{}", round.report);
    }
    println!("patches:\n{}", outcome.patches.to_text());

    let pads: Vec<u32> = outcome.patches.pads().map(|(_, pad)| pad).collect();
    assert!(outcome.fixed, "squid overflow should be corrected");
    assert!(
        pads.contains(&6),
        "the paper's pad is exactly 6 bytes, got {pads:?}"
    );
    println!("=> pad of exactly 6 bytes, matching the paper");
}
