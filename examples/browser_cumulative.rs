//! The Mozilla case study (§7.2): cumulative mode on a nondeterministic
//! application.
//!
//! ```text
//! cargo run --example browser_cumulative
//! ```
//!
//! Mozilla's IDN overflow (bug 307259) cannot be isolated by diffing heap
//! images: allocation sequences diverge across runs ("even slight
//! differences in moving the mouse"), so object ids never line up.
//! Cumulative mode instead reduces each run to per-allocation-site
//! statistics and accumulates Bayesian evidence across runs. The paper
//! reports isolation with no false positives after 23 runs (immediate
//! repro) and 34 runs (noisy navigation before the attack page).

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use xt_workloads::{attack_browsing_session, MozillaLike, WorkloadInput};

fn main() {
    let browser = MozillaLike::new();

    for (label, benign_pages) in [("immediate repro", 0), ("noisy navigation", 8)] {
        // Every run browses differently (vary_input_seed), then hits the
        // attack page with the malformed international hostname.
        let input = WorkloadInput::with_seed(31).payload(attack_browsing_session(benign_pages));
        let mut mode = CumulativeMode::new(CumulativeModeConfig {
            vary_input_seed: true,
            ..CumulativeModeConfig::default()
        });
        let outcome = mode.run_until_isolated(&browser, &input, None, 150);
        println!(
            "{label}: isolated={} after {} runs ({} failures observed)",
            outcome.isolated, outcome.runs, outcome.failures
        );
        for verdict in &outcome.flagged {
            println!(
                "  flagged {} (likelihood ratio {:.1} over {} observations)",
                verdict.site, verdict.ratio, verdict.observations
            );
        }
        println!("  patches:\n{}", indent(&outcome.patches.to_text()));
        assert!(outcome.isolated, "{label}: IDN overflow never isolated");
        let max_pad = outcome.patches.pads().map(|(_, p)| p).max().unwrap_or(0);
        assert!(
            max_pad >= 8,
            "{label}: pad {max_pad} cannot contain the 8-byte IDN overflow"
        );
    }
    println!("=> both scenarios isolated the IDN site, as in the paper");
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}\n"))
        .collect::<String>()
}
