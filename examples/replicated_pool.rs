//! The persistent replica pool serving live traffic (§3.4, Fig. 5).
//!
//! ```text
//! cargo run --release --example replicated_pool
//! ```
//!
//! A squid-like web cache runs as a replicated service: one
//! [`ReplicaPool`] of differently-randomized replicas stays up while
//! request batches stream through it. A malformed request in live traffic
//! triggers the seeded 6-byte overflow; the pool votes, replays to the
//! detection clock for aligned heap images, isolates the culprit site,
//! and hot-patches its own workers — after which the same attack is
//! harmless. A deliberately slowed replica shows the streaming voter
//! answering before the whole replica set finishes.

use std::time::Duration;

use exterminator::pool::{PoolConfig, ReplicaPool, Straggler};
use xt_patch::PatchTable;
use xt_workloads::{server_session, SquidLike};

fn main() {
    let workload = SquidLike::new();
    // 18 batches of 16 requests; every 6th batch carries the attack URL.
    let session = server_session(18, 16, Some(6));
    println!(
        "# replicated squid cache: one pool, {} request batches\n",
        session.len()
    );

    let mut healed = false;
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &workload,
            PoolConfig {
                replicas: 6,
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        for (i, input) in session.iter().enumerate() {
            let out = pool.run_one(input, None);
            let attack = i % 6 == 5;
            if out.outcome.error_observed() {
                let report = out.outcome.report.as_ref().expect("isolation ran");
                println!(
                    "batch {i:2}: ATTACK observed — {} replica(s) failed, isolation found {} overflow culprit(s), {} patch(es) hot-loaded",
                    out.outcome.replicas.iter().filter(|r| r.failed).count(),
                    report.overflows.len(),
                    pool.patches().len(),
                );
            } else if attack {
                println!(
                    "batch {i:2}: attack served cleanly under {} loaded patch(es)",
                    pool.patches().len()
                );
                healed = !pool.patches().is_empty();
            }
        }
        let pads: Vec<_> = pool.patches().pads().collect();
        println!("\nlive patch table: {:?}", pads);
        pool.shutdown();
    });
    assert!(healed, "pool never healed the attack");

    // Streaming vote: a 25 ms straggler does not delay the verdict.
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &workload,
            PoolConfig {
                replicas: 3,
                straggler: Some(Straggler {
                    replica: 2,
                    delay: Duration::from_millis(25),
                }),
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        let out = pool.run_one(&server_session(1, 16, None)[0], None);
        println!(
            "\nstraggler demo: verdict after {:.2} ms ({} replica still running), full barrier after {:.2} ms",
            out.timing.verdict_latency.as_secs_f64() * 1e3,
            out.timing.outstanding_at_verdict,
            out.timing.full_latency.as_secs_f64() * 1e3,
        );
        assert!(out.timing.outstanding_at_verdict >= 1);
        pool.shutdown();
    });
    println!("\n=> the pool self-healed live traffic and voted ahead of its straggler");
}
