//! The pool front-end serving a multi-client population (§6.4 inside one
//! process).
//!
//! ```text
//! cargo run --release --example frontend_service
//! ```
//!
//! A squid-like cache runs behind a [`PoolFrontend`]: two replica pools
//! share one front door, three client threads submit their own request
//! streams concurrently through the bounded queues, and per-job tickets
//! let each client overlap its next submission with the replicas' work.
//! A malformed request arrives in one client's traffic; whichever pool
//! serves it votes, isolates the overflow, and the patch fans out to the
//! sibling pool — after which *every* client's attack batches are served
//! cleanly, by pools that never saw the failure themselves.

use std::sync::atomic::{AtomicU64, Ordering};

use exterminator::frontend::{FrontendConfig, PoolFrontend, RouteBy};
use exterminator::pool::PoolConfig;
use xt_patch::PatchTable;
use xt_workloads::{multi_client_sessions, SquidLike};

fn main() {
    let workload = SquidLike::new();
    // 3 clients x 9 batches of 12 requests; every 3rd batch of every
    // client carries the crafted escaped URL.
    let sessions = multi_client_sessions(3, 9, 12, Some(3));
    println!(
        "# squid cache behind a 2-pool front-end: {} clients x {} batches\n",
        sessions.len(),
        sessions[0].len()
    );

    let errors = AtomicU64::new(0);
    let healed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let frontend = PoolFrontend::scoped(
            scope,
            &workload,
            FrontendConfig {
                pools: 2,
                pool: PoolConfig {
                    replicas: 6,
                    ..PoolConfig::default()
                },
                queue_capacity: 4,
                route: RouteBy::RoundRobin,
                share_isolated: true,
                ..FrontendConfig::default()
            },
            PatchTable::new(),
        );
        std::thread::scope(|clients| {
            for (id, session) in sessions.iter().enumerate() {
                let frontend = &frontend;
                let (errors, healed) = (&errors, &healed);
                clients.spawn(move || {
                    for (i, input) in session.iter().enumerate() {
                        let out = frontend.submit(input, None).wait();
                        let attack = i % 3 == 2;
                        if out.outcome.error_observed() {
                            errors.fetch_add(1, Ordering::Relaxed);
                            println!(
                                "client {id} batch {i}: ATTACK observed — isolation found {} culprit(s)",
                                out.outcome.report.as_ref().map_or(0, |r| r.overflows.len()),
                            );
                        } else if attack && !frontend.patches().is_empty() {
                            healed.fetch_add(1, Ordering::Relaxed);
                            println!("client {id} batch {i}: attack served cleanly under fanned-out patches");
                        }
                    }
                });
            }
        });
        let stats = frontend.stats();
        println!(
            "\nfront-end stats: {} submitted, {} completed, {} failures, {} backpressure waits",
            stats.submitted, stats.completed, stats.failures, stats.backpressure_waits,
        );
        let pads: Vec<_> = frontend.patches().pads().collect();
        println!("shared live patch table: {pads:?}");
        frontend.shutdown();
    });
    assert!(
        errors.load(Ordering::Relaxed) >= 1,
        "the attack never manifested"
    );
    assert!(
        healed.load(Ordering::Relaxed) >= 1,
        "no attack batch was served cleanly after fan-out"
    );
    println!(
        "\n=> {} failure(s) taught the whole front-end: {} attack batch(es) served cleanly",
        errors.load(Ordering::Relaxed),
        healed.load(Ordering::Relaxed),
    );
}
