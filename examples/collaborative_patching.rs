//! Collaborative correction (§6.4): merging patches from multiple users.
//!
//! ```text
//! cargo run --example collaborative_patching
//! ```
//!
//! "Each individual user of an application is likely to experience
//! different errors. To allow an entire user community to automatically
//! improve software reliability, Exterminator provides a simple utility
//! that supports collaborative correction ... computing the maximum buffer
//! pad required for any allocation site, and the maximal deferral amount."
//!
//! Here three users each hit a *different* bug in the same application
//! (two distinct overflows and a dangling free). Their locally generated
//! patch files are merged; the merged file corrects all three errors for
//! everyone.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_faults::{FaultKind, FaultSpec};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, WorkloadInput};

/// Verifies a patch set against a fault over several fresh heap seeds.
fn patch_verified(input: &WorkloadInput, fault: FaultSpec, patches: &PatchTable) -> bool {
    (0..4).all(|seed| {
        let mut config = RunConfig::with_seed(0x7E57 + seed);
        config.fault = Some(fault);
        config.patches = patches.clone();
        config.halt_on_signal = true;
        !execute(&EspressoLike::new(), input, config).failed()
    })
}

/// One user's repair session: find a manifesting fault of `kind`, repair
/// it, and keep only repairs that survive independent verification —
/// detection is probabilistic (Theorem 2), so a repair certified by a few
/// clean runs is occasionally premature.
fn repaired_user(
    label: &str,
    input: &WorkloadInput,
    kind: FaultKind,
    base_sel: u64,
) -> (FaultSpec, PatchTable) {
    for sel in base_sel..base_sel + 16 {
        let Some(fault) =
            find_manifesting_fault(&EspressoLike::new(), input, kind, 100, 450, 20, 4, sel)
        else {
            continue;
        };
        let mut mode = IterativeMode::new(IterativeConfig {
            base_seed: sel ^ 0xD00D,
            ..IterativeConfig::default()
        });
        let outcome = mode.repair(&EspressoLike::new(), input, Some(fault));
        if outcome.fixed
            && !outcome.patches.is_empty()
            && patch_verified(input, fault, &outcome.patches)
        {
            println!(
                "{label}: fixed=true rounds={} patch entries={}",
                outcome.rounds.len(),
                outcome.patches.len()
            );
            return (fault, outcome.patches);
        }
    }
    panic!("{label}: no verifiably repairable fault found");
}

fn main() {
    let input = WorkloadInput::with_seed(77).intensity(3);

    // Three users, three distinct bugs (found with the §7.2 methodology:
    // injector seeds are drawn until the fault manifests; repairs are
    // accepted only after independent verification).
    let (overflow_a, patches_a) = repaired_user(
        "user A (4B overflow)",
        &input,
        FaultKind::BufferOverflow {
            delta: 4,
            fill: 0xA1,
        },
        1,
    );
    let (overflow_b, patches_b) = repaired_user(
        "user B (36B overflow)",
        &input,
        FaultKind::BufferOverflow {
            delta: 36,
            fill: 0xB2,
        },
        40,
    );
    let (dangling, patches_c) = repaired_user(
        "user C (dangling free)",
        &input,
        FaultKind::DanglingFree { lag: 12 },
        80,
    );

    // The collaborative-correction utility: pointwise max over all users.
    let merged = PatchTable::merged([&patches_a, &patches_b, &patches_c]);
    println!(
        "merged patch file ({} entries, {} bytes):\n{}",
        merged.len(),
        merged.to_text().len(),
        merged.to_text()
    );

    // Every user's bug is corrected by the merged file.
    for (label, fault) in [("A", overflow_a), ("B", overflow_b), ("C", dangling)] {
        let mut failures = 0;
        for seed in 0..4 {
            let mut config = RunConfig::with_seed(0xC0DE + seed);
            config.fault = Some(fault);
            config.patches = merged.clone();
            config.halt_on_signal = true;
            if execute(&EspressoLike::new(), &input, config).failed() {
                failures += 1;
            }
        }
        println!("merged patches vs bug {label}: {failures}/4 runs fail");
        assert_eq!(failures, 0, "bug {label} not corrected by merged patches");
    }
    println!("=> one merged patch file corrects every user's error");
}
