//! Collaborative correction (§6.4) as a service: the fleet loop.
//!
//! ```text
//! cargo run --release --example collaborative_patching
//! ```
//!
//! "Each individual user of an application is likely to experience
//! different errors. To allow an entire user community to automatically
//! improve software reliability, Exterminator provides a simple utility
//! that supports collaborative correction ... computing the maximum buffer
//! pad required for any allocation site, and the maximal deferral amount."
//!
//! The original version of this example hand-merged two patch files. This
//! one runs the real loop the paper sketches (and `xt-fleet` implements):
//! a community of users, half hitting a cold-site buffer overflow and half
//! a dangling free, each **submits** its runs' compact summaries to the
//! sharded aggregation service, the service **aggregates** evidence and
//! publishes versioned patch epochs, and every user **pulls** the latest
//! epoch before its next run. Nobody computes a patch locally — isolation
//! emerges from the pooled evidence, and one published epoch corrects both
//! bugs for everyone.

use exterminator::summarized_run;
use xt_fleet::simulator::{demo_faults, verified_corrected};
use xt_fleet::{FleetConfig, FleetService, RunReport};
use xt_workloads::{EspressoLike, WorkloadInput};

/// Community size. Even users inject the overflow, odd users the dangling
/// free — two disjoint sub-populations, as in the paper's deployment story.
const USERS: u64 = 20;

/// Runs each user contributes at most.
const ROUNDS: u32 = 12;

fn main() {
    let input = WorkloadInput::with_seed(21).intensity(3);
    let workload = EspressoLike::new();

    // Two community bugs, screened to be §5-isolatable (not every
    // manifesting fault develops the canary/failure correlation the
    // Bayesian test needs — see `exp_injected_dangling`).
    let (overflow, dangling) =
        demo_faults(&workload, &input).expect("no isolatable demonstration faults found");
    println!("bug A (overflow): {overflow:?}");
    println!("bug B (dangling): {dangling:?}");

    // The aggregation service: 8 evidence shards, a fresh epoch every 16
    // reports.
    let service = FleetService::new(FleetConfig {
        shards: 8,
        publish_every: 16,
        ..FleetConfig::default()
    });

    let mut runs = 0u64;
    let mut last_verified = 0u64;
    'fleet: for round in 0..ROUNDS {
        for user in 0..USERS {
            // Pull: adopt the newest published epoch before running.
            let epoch = service.latest();
            let fault = if user % 2 == 0 { overflow } else { dangling };
            let run = summarized_run(
                &workload,
                &input,
                Some(fault),
                epoch.patches.clone(),
                0x5EED ^ (user * 7919 + u64::from(round) * 104_729),
                service.config().isolator.fill_probability,
                2.0,
            );
            runs += 1;
            // Submit: a few hundred bytes over the wire, not a heap image.
            let report = RunReport::from_summary(user, round, &run.summary);
            let receipt = service
                .ingest(&report.encode())
                .expect("well-formed report");
            assert!(!receipt.duplicate);

            // Aggregate: epochs appear on the publish cadence; verify
            // only when a new one is minted (probes are whole workload
            // executions) and stop once one corrects both bugs.
            let epoch = service.latest();
            if epoch.number > last_verified && !epoch.patches.is_empty() {
                last_verified = epoch.number;
                if verified_corrected(&workload, &input, overflow, &epoch.patches, 4, 0xA5)
                    && verified_corrected(&workload, &input, dangling, &epoch.patches, 4, 0xB6)
                {
                    break 'fleet;
                }
            }
        }
    }

    let epoch = service.publish();
    let m = service.metrics();
    println!(
        "\nfleet: {} reports ({} failed) from {USERS} users in {runs} runs; \
         {} sites tracked across {} shards; epoch {} published",
        m.reports, m.failed_reports, m.sites_tracked, m.shards, epoch.number
    );
    println!(
        "published patch file ({} entries, {} bytes):\n{}",
        epoch.patches.len(),
        epoch.to_text().len(),
        epoch.to_text()
    );

    // Every user's bug is corrected by the published epoch.
    for (label, fault) in [("A (overflow)", overflow), ("B (dangling)", dangling)] {
        let corrected = verified_corrected(&workload, &input, fault, &epoch.patches, 4, 0xC0DE);
        println!(
            "epoch {} vs bug {label}: corrected={corrected}",
            epoch.number
        );
        assert!(
            corrected,
            "bug {label} not corrected by the published epoch"
        );
    }
    println!("=> one published epoch corrects every user's error");
}
