//! A fleet server that forgets nothing: evidence WAL + snapshots on
//! disk, a late-starting server, and a restart that recovers everything.
//!
//! ```text
//! cargo run --release --example durable_fleet
//! ```
//!
//! The paper's aggregator is only useful if it *accumulates*: §5's
//! probabilities sharpen over millions of runs, and an aggregator that
//! loses its evidence on every restart never gets there. This demo runs
//! the whole durability story end to end on a real temp directory:
//!
//! 1. **The client comes up first.** Orchestrated deployments make no
//!    ordering promises, so the client uses
//!    [`NetClient::connect_with_retry`] — bounded exponential backoff
//!    with deterministic jitter — against a port the server has not
//!    bound yet.
//! 2. **The server binds late, durable.** Its [`NetConfig`] carries a
//!    [`NetDurability`] over [`DirStorage`]: every remote `XTR1` report
//!    is WAL-appended *before* it folds into the evidence shards, and
//!    snapshots compact the log on a cadence.
//! 3. **Evidence accumulates to an epoch**, then the server shuts down
//!    gracefully (final compacted snapshot, empty WAL).
//! 4. **A "new process" reopens the same directory.** Recovery loads the
//!    snapshot, replays the (empty) WAL tail, and the epoch, the report
//!    count, the canonical state digest, and the per-client replay
//!    windows are all back — a redelivered report is a *duplicate*, not
//!    fresh evidence, with zero new reports ingested.

use std::sync::Arc;
use std::time::Duration;

use xt_fleet::{DirStorage, DurabilityConfig, FleetConfig, RunReport};
use xt_net::{NetClient, NetConfig, NetDurability, NetFrontend, RetryPolicy};
use xt_workloads::EspressoLike;

/// A deterministic dangling-pointer report: one hot site, the shape a
/// cumulative-mode client ships after a premature free.
fn report(seq: u32) -> RunReport {
    RunReport {
        client: 42,
        seq,
        failed: true,
        clock: 300 + u64::from(seq),
        n_sites: 120,
        overflow_obs: Vec::new(),
        dangling_obs: vec![(0xDEAD, 0.5, true)],
        pad_hints: Vec::new(),
        defer_hints: vec![(0xDEAD, 0x1F, 40)],
    }
}

fn durable_config(dir: &std::path::Path) -> NetConfig {
    NetConfig {
        fleet: FleetConfig {
            shards: 4,
            publish_every: 8,
            ..FleetConfig::default()
        },
        durability: Some(NetDurability {
            storage: Arc::new(DirStorage::open(dir).expect("open storage dir")),
            config: DurabilityConfig { snapshot_every: 16 },
        }),
        ..NetConfig::default()
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("xt-durable-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("# durable fleet storage: {}\n", dir.display());

    // Reserve a port, then free it: the client will be retrying against
    // it before the server exists.
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr");

    let server_dir = dir.clone();
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        NetFrontend::bind(EspressoLike::new(), addr, durable_config(&server_dir))
            .expect("bind durable server")
    });

    println!("client up first: retrying {addr} with exponential backoff...");
    let client = NetClient::connect_with_retry(
        addr,
        &RetryPolicy {
            attempts: 60,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_seed: 0xD00D,
        },
    )
    .expect("the late server never came up");
    let server = server_thread.join().expect("server thread");
    println!("connected — the server bound ~150ms after the client started\n");

    // Ship evidence until the fleet publishes a corrective epoch.
    let mut seq = 0u32;
    let mut epoch = 0u64;
    while epoch == 0 && seq < 64 {
        let receipt = client.ingest_report(&report(seq)).expect("report ack");
        assert!(!receipt.duplicate, "fresh report deduplicated");
        epoch = receipt.epoch;
        seq += 1;
    }
    assert!(epoch >= 1, "evidence never crossed the publish threshold");
    let reports_before = u64::from(seq);
    let digest_before = server.service().state_digest();
    let before = server.fleet_metrics();
    println!(
        "shipped {seq} reports -> epoch {epoch}; WAL appends {}, snapshots {}",
        before.wal_appends, before.snapshots_written
    );
    assert_eq!(before.wal_appends, reports_before);
    assert_eq!(before.recoveries, 0, "a fresh directory is not a recovery");

    drop(client);
    println!("graceful shutdown (final compacted snapshot)...");
    server.shutdown();

    // "Restart": a brand-new server process over the same directory.
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", durable_config(&dir))
        .expect("rebind durable server");
    let after = server.fleet_metrics();
    println!(
        "\nreopened: recoveries {}, reports {}, epoch {}, torn tails {}",
        after.recoveries, after.reports, after.epoch, after.torn_tail_truncated
    );
    assert!(after.recoveries >= 1, "reopen did not count a recovery");
    assert_eq!(after.reports, reports_before, "report count diverged");
    assert_eq!(after.epoch, epoch, "the epoch did not survive the restart");
    assert_eq!(
        server.service().state_digest(),
        digest_before,
        "recovered evidence state diverged"
    );
    assert_eq!(after.wal_appends, 0, "recovery is replay, not re-append");

    // The replay windows survived too: redelivering an old report over
    // the wire is recognized, not double-counted.
    let client = NetClient::connect(server.local_addr()).expect("reconnect");
    let redelivery = client.ingest_report(&report(0)).expect("ack");
    assert!(redelivery.duplicate, "recovery forgot the delivery window");
    println!("redelivered report 0 -> duplicate (replay window recovered)");

    // The health probe tells the restart story in one frame, and the
    // merged metrics snapshot shows the recovered counters next to the
    // wire/WAL latency histograms.
    let health = client.pull_health().expect("health pull");
    println!(
        "\nhealth: durable={}, recoveries={}, epoch {}, {}ms up",
        health.durable, health.recoveries, health.epoch, health.uptime_ms
    );
    assert!(health.durable);
    let snapshot = client.pull_metrics().expect("metrics pull");
    println!("\nmetrics at shutdown:\n{}", snapshot.render_text());

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\n=> a restart costs the fleet nothing: evidence, epoch, and dedup state all recover"
    );
}
