//! A self-healing server with *remote* clients: the §6.4 loop over a
//! real localhost socket.
//!
//! ```text
//! cargo run --release --example net_service
//! ```
//!
//! An espresso-like workload runs behind a [`NetFrontend`] — two replica
//! pools with self-patching disabled, a co-located fleet service, one TCP
//! front door. A remote [`NetClient`] (separate connection, nothing
//! shared in-process) submits a request stream in which every submission
//! carries a crafted overflow. The loop that follows is exactly the
//! paper's collaborative correction, with only compact wire messages
//! crossing the socket:
//!
//! 1. the client submits; the server's replicas vote and *detect*;
//! 2. the client re-runs the failing input under cumulative
//!    instrumentation locally and ships each run's `XTR1` report
//!    (a few hundred bytes) over the same connection;
//! 3. the server's fleet service crosses the §5 threshold, publishes an
//!    epoch, and — because report ingest fans epochs straight into the
//!    server's own pools — the front-end is patched without ever having
//!    isolated anything itself;
//! 4. the client pulls the epoch, and its next attack submissions are
//!    served cleanly by every pool.
//!
//! Because self-patching is off, any healing observed can only have come
//! through the wire.

use exterminator::frontend::FrontendConfig;
use exterminator::pool::PoolConfig;
use exterminator::summarized_run;
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_fleet::{FleetConfig, RunReport};
use xt_net::{NetClient, NetConfig, NetFrontend};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(21).intensity(3);
    // The screened cold-site overflow (pads heal it deterministically —
    // see the ROADMAP's fleet notes for why that makes the clean
    // loop-closure demo).
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        trigger: AllocTime::from_raw(239),
    };
    let config = NetConfig {
        frontend: FrontendConfig {
            pools: 2,
            pool: PoolConfig {
                replicas: 3,
                auto_patch: false,
                ..PoolConfig::default()
            },
            share_isolated: false,
            ..FrontendConfig::default()
        },
        fleet: FleetConfig {
            shards: 4,
            publish_every: 8,
            ..FleetConfig::default()
        },
        ..NetConfig::default()
    };
    let fill = config.fleet.isolator.fill_probability;

    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");
    println!(
        "# self-healing server on {} (2 pools x 3 replicas, self-patching OFF)\n",
        server.local_addr()
    );

    // The remote side: its own workload instance, its own connection —
    // everything it learns travels over the socket.
    let workload = EspressoLike::new();
    let client = NetClient::connect(server.local_addr()).expect("connect");

    let mut epoch = 0u64;
    let mut patches = PatchTable::new();
    let mut next_seq = 0u32;
    let mut healed = false;
    for round in 0..40 {
        if let Some(newer) = client.pull_epoch(epoch).expect("epoch pull") {
            println!(
                "round {round}: pulled epoch {} ({} patch entries)",
                newer.number,
                newer.patches.len()
            );
            epoch = newer.number;
            patches.merge(&newer.patches);
        }
        let ticket = client.submit(&input, Some(fault)).expect("submit");
        let verdict = ticket.wait_verdict().expect("verdict");
        let outcome = ticket.wait().expect("outcome");
        if outcome.error_observed {
            println!(
                "round {round}: ATTACK detected by the vote (quorum {}, {} dissenting) — \
                 probing locally, reporting over the wire",
                verdict.map_or(0, |v| v.agreeing.len()),
                outcome.dissenting.len()
            );
            for _ in 0..8 {
                let run = summarized_run(
                    &workload,
                    &input,
                    Some(fault),
                    patches.clone(),
                    0xF1EE7 ^ (u64::from(next_seq) << 8),
                    fill,
                    2.0,
                );
                let report = RunReport::from_summary(1, next_seq, &run.summary);
                next_seq += 1;
                client.ingest_report(&report).expect("report ack");
            }
        } else if !patches.is_empty() {
            println!(
                "round {round}: attack served CLEANLY under fleet epoch {epoch} — \
                 the server was healed by patches it never isolated"
            );
            healed = true;
            break;
        } else {
            println!("round {round}: served cleanly (fault did not manifest)");
        }
    }

    let stats = server.stats();
    let metrics = server.service().metrics();
    println!(
        "\nserver: {} jobs, {} wire reports, epoch {}; client pads: {:?}",
        stats.jobs,
        stats.reports,
        metrics.epoch,
        patches.pads().collect::<Vec<_>>()
    );
    // The operator's view, pulled over the same socket the jobs rode:
    // health, then every layer's counters and latency histograms.
    let health = client.pull_health().expect("health pull");
    println!(
        "\nhealth: epoch {} after {}ms up, {} connections, durable={}",
        health.epoch, health.uptime_ms, health.connections, health.durable
    );
    let snapshot = client.pull_metrics().expect("metrics pull");
    println!("\nmetrics at shutdown:\n{}", snapshot.render_text());
    drop(client);
    server.shutdown();
    assert!(healed, "the fleet loop never healed the server");
    assert!(
        patches.pads().any(|(_, pad)| pad >= 20),
        "correction must pad the 20-byte delta"
    );
    println!("=> remote evidence corrected the server for every future client");
}
