//! Umbrella package for the Exterminator reproduction.
//!
//! The implementation lives in the `crates/` workspace members; this package
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See `README.md` for a tour and `DESIGN.md` for the
//! system inventory.

pub use exterminator;
pub use xt_alloc;
pub use xt_arena;
pub use xt_baseline;
pub use xt_correct;
pub use xt_diefast;
pub use xt_diehard;
pub use xt_faults;
pub use xt_image;
pub use xt_isolate;
pub use xt_patch;
pub use xt_workloads;
