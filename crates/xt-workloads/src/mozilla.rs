//! A Mozilla-like workload carrying the paper's IDN overflow.
//!
//! §7.2: Mozilla bug 307259 is a heap overflow "because of an error in
//! Mozilla's processing of Unicode characters in domain names". Crucially
//! for the evaluation, Mozilla is multi-threaded and input-timing
//! sensitive: "even slight differences in moving the mouse cause
//! allocation sequences to diverge. Thus, neither replicated nor iterative
//! modes can identify equivalent objects across multiple runs" — it is
//! the showcase for *cumulative* mode.
//!
//! This stand-in browses a list of pages. Each page load allocates a
//! nondeterministic amount of DOM noise (driven by the per-run seed, the
//! analogue of mouse/timer jitter), then processes every link hostname.
//! Hostnames containing non-ASCII bytes take the IDN path, whose buffer is
//! sized by *character* count but filled by *byte* count — a heap overflow
//! of `bytes − chars` bytes, triggered only by the attack page.

use xt_alloc::Heap;

use crate::ctx::{fnv1a, Abort, Ctx};
use crate::{RunResult, Workload, WorkloadInput};

const NODE_MAGIC: u32 = 0xD0_0D1E5;
const IDN_MAGIC: u32 = 0x1D4_CAFE;
const HEADER: usize = 8;

/// The Mozilla stand-in. See the module docs above.
#[derive(Clone, Copy, Debug, Default)]
pub struct MozillaLike;

impl MozillaLike {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        MozillaLike
    }

    /// Counts "characters" the way the buggy size computation does: ASCII
    /// bytes and multibyte *lead* bytes count, continuation bytes
    /// (`0x80..0xC0`) do not.
    fn char_count(host: &[u8]) -> usize {
        host.iter().filter(|&&b| !(0x80..0xC0).contains(&b)).count()
    }

    /// The IDN conversion with the seeded bug.
    fn idn_convert(&self, ctx: &mut Ctx<'_>, host: &[u8]) -> Result<u64, Abort> {
        let chars = Self::char_count(host);
        ctx.scoped(0x1D4_0B06, |ctx| {
            // BUG: sized by chars, filled by bytes.
            let buf = ctx.malloc(HEADER + chars)?;
            ctx.write_u32(buf, IDN_MAGIC)?;
            ctx.write_u32(buf + 4, chars as u32)?;
            ctx.write_bytes(buf + HEADER as u64, host)?; // writes `bytes`
            let echo = ctx.read_bytes(buf + HEADER as u64, chars)?;
            let digest = fnv1a(0, &echo);
            ctx.free(buf);
            Ok(digest)
        })
    }

    /// Browser startup: chrome/XUL-style allocation churn across all size
    /// classes. By the time any page loads, freed (and thus canaried)
    /// slots pervade every miniheap — the fence-post population DieFast's
    /// detection probability (Theorem 2) assumes, and what a real
    /// browser's heap looks like after initialization.
    fn startup(&self, ctx: &mut Ctx<'_>) -> Result<(), Abort> {
        let mut scratch: Vec<xt_arena::Addr> = Vec::new();
        for i in 0..300u32 {
            let caller = 0x3000 + (ctx.rng().next_u32() % 32);
            let size = 16 + ctx.rng().below_usize(140);
            let p = ctx.scoped(caller, |ctx| {
                let p = ctx.malloc(size)?;
                ctx.write_u32(p, NODE_MAGIC)?;
                ctx.write_u32(p + 4, i)?;
                Ok(p)
            })?;
            scratch.push(p);
            // Free roughly two thirds, oldest first, as initialization
            // data structures are torn down.
            if scratch.len() > 100 && ctx.rng().chance(0.85) {
                let victim = scratch.remove(0);
                if ctx.read_u32(victim)? != NODE_MAGIC {
                    return Err(Abort::SelfAbort("mozilla: corrupt startup object"));
                }
                ctx.scoped(0x3FFF, |ctx| {
                    ctx.free(victim);
                    Ok(())
                })?;
            }
        }
        for victim in scratch {
            ctx.scoped(0x3FFE, |ctx| {
                ctx.free(victim);
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Fast path for pure-ASCII hostnames — correctly sized.
    fn ascii_host(&self, ctx: &mut Ctx<'_>, host: &[u8]) -> Result<u64, Abort> {
        ctx.scoped(0x1D4_A5C1, |ctx| {
            let buf = ctx.malloc(HEADER + host.len())?;
            ctx.write_u32(buf, IDN_MAGIC)?;
            ctx.write_u32(buf + 4, host.len() as u32)?;
            ctx.write_bytes(buf + HEADER as u64, host)?;
            let digest = fnv1a(1, &ctx.read_bytes(buf + HEADER as u64, host.len())?);
            ctx.free(buf);
            Ok(digest)
        })
    }

    fn exec(&self, ctx: &mut Ctx<'_>, input: &WorkloadInput) -> Result<(), Abort> {
        ctx.enter(0xD0D0);
        self.startup(ctx)?;
        let payload = input.payload.clone();
        for page in payload.split(|&b| b == b';') {
            if page.is_empty() {
                continue;
            }
            // Nondeterministic DOM noise: counts and sizes differ per run
            // seed, so object ids never line up across runs.
            let n_nodes = 5 + ctx.rng().below_usize(24);
            let mut nodes = Vec::with_capacity(n_nodes);
            for i in 0..n_nodes {
                let caller = 0x2000 + (ctx.rng().next_u32() % 48);
                let size = 16 + ctx.rng().below_usize(120);
                let node = ctx.scoped(caller, |ctx| {
                    let node = ctx.malloc(size)?;
                    ctx.write_u32(node, NODE_MAGIC)?;
                    ctx.write_u32(node + 4, i as u32)?;
                    Ok(node)
                })?;
                nodes.push(node);
            }
            // Process the page's link hostnames.
            let mut page_digest = 0u64;
            for host in page.split(|&b| b == b',') {
                if host.is_empty() {
                    continue;
                }
                let digest = if host.iter().any(|&b| b >= 0x80) {
                    self.idn_convert(ctx, host)?
                } else {
                    self.ascii_host(ctx, host)?
                };
                page_digest = fnv1a(page_digest, &digest.to_le_bytes());
            }
            ctx.emit_u64(page_digest);
            // Tear down a random subset of the DOM (the rest "leaks" to a
            // later GC, i.e. stays live).
            for node in nodes {
                if ctx.read_u32(node)? != NODE_MAGIC {
                    return Err(Abort::SelfAbort("mozilla: corrupt DOM node"));
                }
                if ctx.rng().chance(0.7) {
                    ctx.scoped(0x2FFF, |ctx| {
                        ctx.free(node);
                        Ok(())
                    })?;
                }
            }
        }
        ctx.leave();
        Ok(())
    }
}

impl Workload for MozillaLike {
    fn name(&self) -> &'static str {
        "mozilla-like"
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        let mut ctx = Ctx::new(heap, input.seed);
        let result = self.exec(&mut ctx, input);
        ctx.finish(result)
    }
}

/// A benign browsing session of `n_pages` ASCII-only pages.
#[must_use]
pub fn benign_browsing_session(n_pages: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n_pages {
        if i > 0 {
            out.push(b';');
        }
        out.extend_from_slice(
            format!("www.page{i}.example,cdn{i}.example,img.page{i}.example").as_bytes(),
        );
    }
    out
}

/// A browsing session ending on the attack page: its link hostname has
/// eight two-byte characters, so the IDN buffer (sized 8 + 56 = 64, a
/// DieHard size class) takes an 8-byte overflow — the bug-307259 analogue.
#[must_use]
pub fn attack_browsing_session(benign_pages: usize) -> Vec<u8> {
    let mut out = benign_browsing_session(benign_pages);
    if !out.is_empty() {
        out.push(b';');
    }
    // 48 ASCII bytes + 8 × (0xC3 0xA9): chars = 56, bytes = 64.
    let mut evil: Vec<u8> = Vec::new();
    evil.extend_from_slice(&[b'x'; 43]);
    evil.extend_from_slice(b".evil");
    for _ in 0..8 {
        evil.extend_from_slice(&[0xC3, 0xA9]);
    }
    debug_assert_eq!(MozillaLike::char_count(&evil), 56);
    debug_assert_eq!(evil.len(), 64);
    out.extend_from_slice(&evil);
    // The browser keeps running after the malicious page: a few more page
    // loads follow, whose allocation churn is what gives DieFast's probes
    // the chance to discover the corruption (§3.3: detection within E(H)
    // allocations).
    for i in 0..3 {
        out.push(b';');
        out.extend_from_slice(
            format!("after{i}.example,cdn-after{i}.example,img-after{i}.example").as_bytes(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_diefast::{DieFastConfig, DieFastHeap};
    use xt_diehard::DieHardConfig;

    #[test]
    fn char_count_skips_continuations() {
        assert_eq!(MozillaLike::char_count(b"abc"), 3);
        assert_eq!(MozillaLike::char_count(&[0xC3, 0xA9, b'x']), 2);
    }

    #[test]
    fn attack_geometry_is_an_eight_byte_overflow() {
        let session = attack_browsing_session(0);
        let host = session
            .split(|&b| b == b';' || b == b',')
            .find(|h| h.iter().any(|&b| b >= 0x80))
            .expect("attack host present");
        let chars = MozillaLike::char_count(host);
        assert_eq!(HEADER + chars, 64, "buggy allocation request");
        assert_eq!(host.len() - chars, 8, "overflow delta");
    }

    #[test]
    fn benign_session_is_clean() {
        let input = WorkloadInput::with_seed(5).payload(benign_browsing_session(12));
        let mut heap = DieFastHeap::new(DieFastConfig::with_seed(1));
        let r = MozillaLike::new().run(&mut heap, &input);
        assert!(r.completed(), "{:?}", r.outcome);
        assert!(!heap.has_signals());
    }

    #[test]
    fn allocation_sequences_diverge_across_run_seeds() {
        // The property that rules out iterative/replicated modes: two runs
        // with different per-run seeds allocate different counts.
        let w = MozillaLike::new();
        let payload = benign_browsing_session(8);
        let mut h1 = DieFastHeap::new(DieFastConfig::with_seed(1));
        let mut h2 = DieFastHeap::new(DieFastConfig::with_seed(1));
        w.run(
            &mut h1,
            &WorkloadInput::with_seed(100).payload(payload.clone()),
        );
        w.run(&mut h2, &WorkloadInput::with_seed(200).payload(payload));
        assert_ne!(
            h1.clock(),
            h2.clock(),
            "per-run nondeterminism missing — object ids would line up"
        );
    }

    #[test]
    fn page_digests_are_seed_independent() {
        // Output covers hostname digests only, not the DOM noise, so the
        // deterministic part of the output matches across run seeds.
        let w = MozillaLike::new();
        let payload = benign_browsing_session(5);
        let mut h1 = DieFastHeap::new(DieFastConfig::with_seed(1));
        let mut h2 = DieFastHeap::new(DieFastConfig::with_seed(2));
        let a = w.run(
            &mut h1,
            &WorkloadInput::with_seed(11).payload(payload.clone()),
        );
        let b = w.run(&mut h2, &WorkloadInput::with_seed(22).payload(payload));
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn attack_page_corrupts_the_heap() {
        // Run the attack across several randomized heaps: DieFast must
        // signal in a solid majority (the overflow lands on canaried free
        // space with probability ≥ (M−1)/2M per §4.1 — in practice much
        // higher after DOM churn).
        let input = WorkloadInput::with_seed(3).payload(attack_browsing_session(6));
        let mut detected = 0;
        for seed in 0..8 {
            let mut heap = DieFastHeap::new(
                DieFastConfig::with_seed(seed)
                    .heap(DieHardConfig::with_seed(seed).track_history(true)),
            );
            let r = MozillaLike::new().run(&mut heap, &input);
            // Either DieFast signals corruption, or (when the IDN buffer
            // lands at the very edge of its miniheap) the overflow runs off
            // the mapping and segfaults outright — both are detections.
            if heap.has_signals() || !r.completed() {
                detected += 1;
            }
        }
        assert!(detected >= 4, "detected only {detected}/8");
    }
}
