//! The execution context shared by all workloads: scoped call-site
//! tracking, heap access with crash propagation, and output capture.

use xt_alloc::{Heap, HeapError, Rng, SiteHash, SiteStack};
use xt_arena::{Addr, MemFault};

use crate::{CrashKind, RunOutcome, RunResult};

/// Abort signal threaded through workload code with `?`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Abort {
    /// A memory access faulted.
    Mem(MemFault),
    /// The allocator refused a request.
    Heap(HeapError),
    /// The workload detected an inconsistency and aborted itself.
    SelfAbort(&'static str),
}

impl From<MemFault> for Abort {
    fn from(f: MemFault) -> Abort {
        Abort::Mem(f)
    }
}

impl From<HeapError> for Abort {
    fn from(e: HeapError) -> Abort {
        Abort::Heap(e)
    }
}

impl Abort {
    /// Maps the abort to the crash kind reported in a [`RunResult`].
    #[must_use]
    pub fn crash_kind(self) -> CrashKind {
        match self {
            Abort::Mem(f) => CrashKind::SegFault(f),
            Abort::Heap(HeapError::Breakpoint { .. }) => CrashKind::Breakpoint,
            Abort::Heap(e) => CrashKind::HeapExhausted(e),
            Abort::SelfAbort(what) => CrashKind::SelfAbort(what),
        }
    }
}

/// Workload execution context.
///
/// `Ctx` is what gives the reproduction's workloads the shape of C
/// programs: every "function" pushes a synthetic return address onto the
/// [`SiteStack`], so each `malloc`/`free` carries the DJB2-hashed calling
/// context of §3.2, and every load/store is a bounds-checked access that
/// aborts the run on a fault, like a signal would kill a process.
///
/// # Example
///
/// ```
/// use xt_diehard::{DieHardConfig, DieHardHeap};
/// use xt_workloads::Ctx;
///
/// let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
/// let mut ctx = Ctx::new(&mut heap, 42);
/// let result: Result<(), _> = (|| {
///     ctx.enter(0x100);
///     let p = ctx.malloc(32)?;
///     ctx.write_u64(p, 7)?;
///     assert_eq!(ctx.read_u64(p)?, 7);
///     ctx.free(p);
///     ctx.leave();
///     Ok::<(), xt_workloads::Abort>(())
/// })();
/// assert!(result.is_ok());
/// ```
pub struct Ctx<'a> {
    heap: &'a mut dyn Heap,
    sites: SiteStack,
    output: Vec<u8>,
    rng: Rng,
}

impl<'a> Ctx<'a> {
    /// Creates a context over `heap` with workload randomness from `seed`.
    pub fn new(heap: &'a mut dyn Heap, seed: u64) -> Self {
        Ctx {
            heap,
            sites: SiteStack::new(),
            output: Vec::new(),
            rng: Rng::new(seed ^ 0x3017_AD5E_11AA_77FF),
        }
    }

    /// Pushes a synthetic return address ("entering a function").
    pub fn enter(&mut self, pc: u32) {
        self.sites.push(pc);
    }

    /// Pops the most recent return address ("returning").
    pub fn leave(&mut self) {
        self.sites.pop();
    }

    /// Runs `f` with `pc` pushed, popping afterwards even on abort.
    pub fn scoped<R>(
        &mut self,
        pc: u32,
        f: impl FnOnce(&mut Self) -> Result<R, Abort>,
    ) -> Result<R, Abort> {
        self.enter(pc);
        let out = f(self);
        self.leave();
        out
    }

    /// The current call-site hash.
    #[must_use]
    pub fn site(&self) -> SiteHash {
        self.sites.hash()
    }

    /// The workload's own RNG (independent of heap randomization).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Allocates `size` bytes at the current call site.
    ///
    /// # Errors
    ///
    /// Aborts the run on allocator failure (including breakpoints).
    pub fn malloc(&mut self, size: usize) -> Result<Addr, Abort> {
        let site = self.sites.hash();
        Ok(self.heap.malloc(size, site)?)
    }

    /// Frees `ptr` at the current call site.
    pub fn free(&mut self, ptr: Addr) {
        let site = self.sites.hash();
        self.heap.free(ptr, site);
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn read_u64(&self, addr: Addr) -> Result<u64, Abort> {
        Ok(self.heap.arena().read_u64(addr)?)
    }

    /// Writes a `u64`.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn write_u64(&mut self, addr: Addr, v: u64) -> Result<(), Abort> {
        Ok(self.heap.arena_mut().write_u64(addr, v)?)
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn read_u32(&self, addr: Addr) -> Result<u32, Abort> {
        Ok(self.heap.arena().read_u32(addr)?)
    }

    /// Writes a `u32`.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn write_u32(&mut self, addr: Addr, v: u32) -> Result<(), Abort> {
        Ok(self.heap.arena_mut().write_u32(addr, v)?)
    }

    /// Reads `len` bytes into a fresh vector.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Result<Vec<u8>, Abort> {
        Ok(self.heap.arena().read_bytes(addr, len)?.to_vec())
    }

    /// Writes raw bytes.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), Abort> {
        Ok(self.heap.arena_mut().write_bytes(addr, bytes)?)
    }

    /// Reads a stored pointer.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn read_ptr(&self, addr: Addr) -> Result<Addr, Abort> {
        Ok(self.heap.arena().read_addr(addr)?)
    }

    /// Stores a pointer into heap memory.
    ///
    /// # Errors
    ///
    /// Aborts the run on a memory fault.
    pub fn write_ptr(&mut self, addr: Addr, value: Addr) -> Result<(), Abort> {
        Ok(self.heap.arena_mut().write_addr(addr, value)?)
    }

    /// Appends bytes to the run's output stream.
    pub fn emit(&mut self, bytes: &[u8]) {
        self.output.extend_from_slice(bytes);
    }

    /// Appends a `u64` (little-endian) to the output stream.
    pub fn emit_u64(&mut self, v: u64) {
        self.output.extend_from_slice(&v.to_le_bytes());
    }

    /// Finishes the run, wrapping the captured output.
    #[must_use]
    pub fn finish(self, result: Result<(), Abort>) -> RunResult {
        RunResult {
            outcome: match result {
                Ok(()) => RunOutcome::Completed,
                Err(abort) => RunOutcome::Crashed(abort.crash_kind()),
            },
            output: self.output,
        }
    }
}

/// FNV-1a, the workloads' output-checksum function. Heap addresses must
/// never be fed to it — outputs must be layout-independent.
#[must_use]
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = if state == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        state
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_diehard::{DieHardConfig, DieHardHeap};

    #[test]
    fn scoped_sites_differ_by_depth() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
        let mut ctx = Ctx::new(&mut heap, 1);
        let outer = ctx.site();
        ctx.enter(10);
        let inner = ctx.site();
        ctx.leave();
        assert_ne!(outer, inner);
        assert_eq!(ctx.site(), outer);
    }

    #[test]
    fn scoped_pops_on_abort() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(2));
        let mut ctx = Ctx::new(&mut heap, 1);
        let before = ctx.site();
        let r: Result<(), Abort> = ctx.scoped(99, |_| Err(Abort::SelfAbort("x")));
        assert!(r.is_err());
        assert_eq!(ctx.site(), before, "frame leaked after abort");
    }

    #[test]
    fn memory_helpers_round_trip() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(3));
        let mut ctx = Ctx::new(&mut heap, 1);
        let p = ctx.malloc(64).unwrap();
        ctx.write_u64(p, 1).unwrap();
        ctx.write_u32(p + 8, 2).unwrap();
        ctx.write_bytes(p + 12, b"abc").unwrap();
        ctx.write_ptr(p + 16, p).unwrap();
        assert_eq!(ctx.read_u64(p).unwrap(), 1);
        assert_eq!(ctx.read_u32(p + 8).unwrap(), 2);
        assert_eq!(ctx.read_bytes(p + 12, 3).unwrap(), b"abc");
        assert_eq!(ctx.read_ptr(p + 16).unwrap(), p);
    }

    #[test]
    fn faults_become_segfault_crashes() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(4));
        let ctx = Ctx::new(&mut heap, 1);
        let err = ctx.read_u64(Addr::new(0x40)).unwrap_err();
        assert!(matches!(err.crash_kind(), CrashKind::SegFault(_)));
    }

    #[test]
    fn breakpoint_is_a_distinct_crash_kind() {
        use xt_alloc::AllocTime;
        let err = Abort::Heap(HeapError::Breakpoint {
            at: AllocTime::from_raw(5),
        });
        assert_eq!(err.crash_kind(), CrashKind::Breakpoint);
    }

    #[test]
    fn finish_captures_output() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(5));
        let mut ctx = Ctx::new(&mut heap, 1);
        ctx.emit(b"hello");
        ctx.emit_u64(7);
        let result = ctx.finish(Ok(()));
        assert!(result.completed());
        assert_eq!(result.output.len(), 13);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a(0, b"abc");
        assert_eq!(a, fnv1a(0, b"abc"));
        assert_ne!(a, fnv1a(0, b"abd"));
        assert_ne!(fnv1a(a, b"x"), fnv1a(0, b"x"));
    }
}
