//! An espresso-like workload: boolean-minimization-flavoured heap churn.
//!
//! espresso (the two-level logic minimizer) is the paper's main
//! fault-injection target (§7.2). What the experiments actually depend on
//! is its *heap behaviour*, which this stand-in reproduces:
//!
//! * a resident *cover* of tagged bitset objects ("cubes") linked through a
//!   singly linked list whose node pointers live **in heap memory** — so a
//!   dangling node turns traversal into a wild dereference (the paper's
//!   "cascade" failure mode), and a canaried cube fails its tag check (the
//!   "reads a canary value ... and either crashes or aborts" mode);
//! * high allocation intensity with short-lived temporaries (consensus
//!   cubes) and medium-lived residents;
//! * ~100 distinct allocation call sites, produced by a skewed caller
//!   distribution — cumulative mode's prior `1/(cN)` needs a realistic `N`;
//! * deterministic, heap-layout-independent output: every 16 rounds the
//!   whole cover is folded into an FNV checksum and emitted, so replicas
//!   vote on identical byte streams and silent corruption changes the
//!   output.

use xt_alloc::Heap;
use xt_arena::Addr;

use crate::ctx::{fnv1a, Abort, Ctx};
use crate::{RunResult, Workload, WorkloadInput};

const CUBE_MAGIC: u32 = 0xC0BE_CAFE;
const NODE_MAGIC: u32 = 0x4E0D_E11A;

/// Cube layout: magic, width (words), then `width` 8-byte bit words.
const CUBE_HEADER: usize = 8;
/// Node layout: magic + pad, cube pointer, next pointer.
const NODE_SIZE: usize = 24;

/// Rounds per unit of [`WorkloadInput::intensity`].
const ROUNDS_PER_INTENSITY: u32 = 200;

/// Hard cap on resident cubes.
const MAX_LIVE: usize = 400;

/// The espresso stand-in. See the module docs above.
#[derive(Clone, Copy, Debug, Default)]
pub struct EspressoLike;

impl EspressoLike {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        EspressoLike
    }

    fn exec(&self, ctx: &mut Ctx<'_>, input: &WorkloadInput) -> Result<(), Abort> {
        let rounds = ROUNDS_PER_INTENSITY * input.intensity.max(1);
        let mut head = Addr::NULL;
        // Registry of (node, cube) resident pairs — the workload's "stack
        // variables". Pointer-chasing correctness is still enforced by the
        // in-heap list.
        let mut live: Vec<(Addr, Addr)> = Vec::new();
        let mut checksum = 0u64;

        ctx.enter(0xE59);
        for round in 0..rounds {
            // espresso's outer minimization phases (expand / irredundant /
            // essential / ...) give every allocation a deeper calling
            // context: the paper's sites are DJB2 hashes of 5-deep stacks,
            // and its espresso patch file holds thousands of them.
            let phase = 0x5A00 + (round / 40) % 6;
            ctx.enter(phase);
            let op = ctx.rng().below(100);
            if live.len() < 8 || (op < 35 && live.len() < MAX_LIVE) {
                let pair = self.expand(ctx, &mut head)?;
                live.push(pair);
            } else if op < 43 {
                let idx = ctx.rng().below_usize(live.len());
                self.reduce(ctx, live[idx].1)?;
            } else if op < 73 {
                // Unchecked fast-path write (real minimizers have plenty):
                // this is what turns a dangling pointer into an *overwrite*
                // the isolator can see, instead of a read-abort.
                let idx = ctx.rng().below_usize(live.len());
                self.mark(ctx, live[idx].1)?;
            } else if op < 82 {
                let a = live[ctx.rng().below_usize(live.len())].1;
                let b = live[ctx.rng().below_usize(live.len())].1;
                checksum = fnv1a(checksum, &self.consensus(ctx, a, b)?.to_le_bytes());
            } else {
                let idx = ctx.rng().below_usize(live.len());
                let (node, cube) = live.swap_remove(idx);
                self.retire(ctx, &mut head, node, cube)?;
            }
            ctx.leave();
            if round % 32 == 31 {
                let sum = self.sweep(ctx, head)?;
                ctx.emit_u64(sum);
            }
        }
        let final_sum = self.sweep(ctx, head)?;
        ctx.emit_u64(fnv1a(checksum, &final_sum.to_le_bytes()));
        ctx.leave();
        Ok(())
    }

    /// Allocates a new cube and links a cover node for it at the head.
    fn expand(&self, ctx: &mut Ctx<'_>, head: &mut Addr) -> Result<(Addr, Addr), Abort> {
        // Skewed caller distribution: few hot call paths, many cold ones,
        // like a real minimizer's expand/irredundant/essen call sites.
        let caller = {
            let rng = ctx.rng();
            let hot = rng.next_u32().trailing_zeros().min(15);
            0x1000 + hot * 2 + rng.next_u32() % 2
        };
        let words = [1usize, 2, 4, 6][ctx.rng().below_usize(4)];
        ctx.scoped(caller, |ctx| {
            let cube = ctx.scoped(0xA110_C0BE, |ctx| {
                let cube = ctx.malloc(CUBE_HEADER + 8 * words)?;
                ctx.write_u32(cube, CUBE_MAGIC)?;
                ctx.write_u32(cube + 4, words as u32)?;
                for w in 0..words {
                    let bits = ctx.rng().next_u64();
                    ctx.write_u64(cube + (CUBE_HEADER + 8 * w) as u64, bits)?;
                }
                Ok(cube)
            })?;
            let node = ctx.scoped(0xA110_40DE, |ctx| {
                let node = ctx.malloc(NODE_SIZE)?;
                ctx.write_u32(node, NODE_MAGIC)?;
                ctx.write_u32(node + 4, 0)?;
                ctx.write_ptr(node + 8, cube)?;
                ctx.write_ptr(node + 16, *head)?;
                Ok(node)
            })?;
            *head = node;
            Ok((node, cube))
        })
    }

    /// Validates a cube's tag and returns its width in words.
    fn check_cube(&self, ctx: &Ctx<'_>, cube: Addr) -> Result<usize, Abort> {
        if ctx.read_u32(cube)? != CUBE_MAGIC {
            return Err(Abort::SelfAbort("espresso: corrupt cube tag"));
        }
        let words = ctx.read_u32(cube + 4)? as usize;
        if words == 0 || words > 6 {
            return Err(Abort::SelfAbort("espresso: corrupt cube width"));
        }
        Ok(words)
    }

    /// Sets "covered" bits in a cube's first word *without* validating the
    /// tag — an unchecked hot-path write, the kind of code that silently
    /// writes through dangling pointers in real programs.
    fn mark(&self, ctx: &mut Ctx<'_>, cube: Addr) -> Result<(), Abort> {
        let stamp = ctx.rng().next_u64();
        ctx.write_u64(cube + CUBE_HEADER as u64, stamp)
    }

    /// Rewrites a cube's bits in place (a literal-reduction step).
    fn reduce(&self, ctx: &mut Ctx<'_>, cube: Addr) -> Result<(), Abort> {
        let words = self.check_cube(ctx, cube)?;
        for w in 0..words {
            let at = cube + (CUBE_HEADER + 8 * w) as u64;
            let old = ctx.read_u64(at)?;
            let mask = ctx.rng().next_u64();
            ctx.write_u64(at, old & (mask | 0xFFFF))?;
        }
        Ok(())
    }

    /// Computes the consensus of two cubes through a temporary.
    fn consensus(&self, ctx: &mut Ctx<'_>, a: Addr, b: Addr) -> Result<u64, Abort> {
        let wa = self.check_cube(ctx, a)?;
        let wb = self.check_cube(ctx, b)?;
        let words = wa.min(wb);
        ctx.scoped(0x0C02_5E25 + words as u32, |ctx| {
            let tmp = ctx.malloc(CUBE_HEADER + 8 * words)?;
            ctx.write_u32(tmp, CUBE_MAGIC)?;
            ctx.write_u32(tmp + 4, words as u32)?;
            let mut acc = 0u64;
            for w in 0..words {
                let off = (CUBE_HEADER + 8 * w) as u64;
                let va = ctx.read_u64(a + off)?;
                let vb = ctx.read_u64(b + off)?;
                let c = (va & vb) ^ (va | vb).rotate_left(w as u32);
                ctx.write_u64(tmp + off, c)?;
                acc = acc.wrapping_add(u64::from(c.count_ones()));
            }
            // Read the temporary back (espresso re-scans consensus cubes).
            let check = self.check_cube(ctx, tmp)?;
            debug_assert_eq!(check, words);
            ctx.free(tmp);
            Ok(acc)
        })
    }

    /// Unlinks a node from the in-heap cover list and frees node + cube.
    fn retire(
        &self,
        ctx: &mut Ctx<'_>,
        head: &mut Addr,
        node: Addr,
        cube: Addr,
    ) -> Result<(), Abort> {
        // Walk the heap-resident list to find the predecessor.
        let mut cur = *head;
        let mut prev = Addr::NULL;
        let mut hops = 0usize;
        while !cur.is_null() {
            if ctx.read_u32(cur)? != NODE_MAGIC {
                return Err(Abort::SelfAbort("espresso: corrupt cover node"));
            }
            if cur == node {
                break;
            }
            prev = cur;
            cur = ctx.read_ptr(cur + 16)?;
            hops += 1;
            if hops > MAX_LIVE * 2 {
                return Err(Abort::SelfAbort("espresso: cover list cycle"));
            }
        }
        if cur != node {
            return Err(Abort::SelfAbort("espresso: cover list broken"));
        }
        let next = ctx.read_ptr(node + 16)?;
        if prev.is_null() {
            *head = next;
        } else {
            ctx.write_ptr(prev + 16, next)?;
        }
        self.check_cube(ctx, cube)?;
        ctx.scoped(0xF2EE_C0BE, |ctx| {
            ctx.free(cube);
            Ok(())
        })?;
        ctx.scoped(0xF2EE_40DE, |ctx| {
            ctx.free(node);
            Ok(())
        })?;
        Ok(())
    }

    /// Traverses the whole cover, folding all cube bits into a checksum.
    ///
    /// Deliberately *unvalidated*, like a C program's hot output loop: a
    /// dangled node sends the traversal through a canary-valued `next`
    /// pointer (a wild dereference — the paper's cascade/crash case), and a
    /// dangled cube's canary bits silently poison the checksum (output
    /// divergence, which only the replicated mode's voter can see).
    fn sweep(&self, ctx: &mut Ctx<'_>, head: Addr) -> Result<u64, Abort> {
        let mut sum = 0u64;
        let mut cur = head;
        let mut hops = 0usize;
        while !cur.is_null() {
            let cube = ctx.read_ptr(cur + 8)?;
            let words = (ctx.read_u32(cube + 4)? as usize).min(6);
            for w in 0..words {
                let bits = ctx.read_u64(cube + (CUBE_HEADER + 8 * w) as u64)?;
                sum = fnv1a(sum, &bits.to_le_bytes());
            }
            cur = ctx.read_ptr(cur + 16)?;
            hops += 1;
            if hops > MAX_LIVE * 2 {
                return Err(Abort::SelfAbort("espresso: cover list cycle"));
            }
        }
        Ok(sum)
    }
}

impl Workload for EspressoLike {
    fn name(&self) -> &'static str {
        "espresso-like"
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        let mut ctx = Ctx::new(heap, input.seed);
        let result = self.exec(&mut ctx, input);
        ctx.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::{AllocTime, FreeOutcome, SiteHash};
    use xt_baseline::BaselineHeap;
    use xt_diehard::{DieHardConfig, DieHardHeap};

    fn run_on_diehard(heap_seed: u64, input: &WorkloadInput) -> RunResult {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(heap_seed));
        EspressoLike::new().run(&mut heap, input)
    }

    #[test]
    fn completes_and_emits_output() {
        let result = run_on_diehard(1, &WorkloadInput::with_seed(7));
        assert!(result.completed(), "outcome {:?}", result.outcome);
        assert!(!result.output.is_empty());
    }

    #[test]
    fn output_is_heap_layout_independent() {
        // The voter's core requirement: different heap seeds, identical
        // output.
        let input = WorkloadInput::with_seed(11);
        let a = run_on_diehard(100, &input);
        let b = run_on_diehard(200, &input);
        assert!(a.completed() && b.completed());
        assert_eq!(a.output, b.output, "output depends on heap layout");
    }

    #[test]
    fn output_runs_on_baseline_identically() {
        let input = WorkloadInput::with_seed(11);
        let diehard = run_on_diehard(1, &input);
        let mut base = BaselineHeap::with_seed(5);
        let baseline = EspressoLike::new().run(&mut base, &input);
        assert!(baseline.completed());
        assert_eq!(diehard.output, baseline.output);
    }

    #[test]
    fn different_inputs_differ() {
        let a = run_on_diehard(1, &WorkloadInput::with_seed(1));
        let b = run_on_diehard(1, &WorkloadInput::with_seed(2));
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn intensity_scales_allocation_count() {
        let mut h1 = DieHardHeap::new(DieHardConfig::with_seed(1));
        EspressoLike::new().run(&mut h1, &WorkloadInput::with_seed(3));
        let mut h4 = DieHardHeap::new(DieHardConfig::with_seed(1));
        EspressoLike::new().run(&mut h4, &WorkloadInput::with_seed(3).intensity(4));
        assert!(h4.clock() > h1.clock() + h1.clock().raw() * 2);
    }

    #[test]
    fn produces_many_distinct_alloc_sites() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1).track_history(true));
        EspressoLike::new().run(&mut heap, &WorkloadInput::with_seed(5).intensity(3));
        let sites = heap.history().unwrap().distinct_alloc_sites().len();
        assert!(
            (60..3000).contains(&sites),
            "want a realistic (context-sensitive) site count, got {sites}"
        );
    }

    #[test]
    fn most_sites_are_cold() {
        // Context-sensitive sites keep the per-site allocation volume low —
        // the property cumulative-mode isolation's per-site statistics
        // depend on (and why the paper's espresso patch file is large but
        // each entry precise).
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(2).track_history(true));
        EspressoLike::new().run(&mut heap, &WorkloadInput::with_seed(7).intensity(3));
        let log = heap.history().unwrap();
        let sites = log.distinct_alloc_sites();
        let cold = sites
            .iter()
            .filter(|&&s| log.records_from_site(s).count() <= 8)
            .count();
        assert!(
            cold * 2 > sites.len(),
            "only {cold}/{} sites are cold",
            sites.len()
        );
    }

    #[test]
    fn dangling_canary_read_self_aborts() {
        // A cube whose tag was replaced by a canary-like value fails the
        // validated read paths — the paper's "reads a canary value through
        // the dangled pointer ... aborts" case.
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(9));
        let workload = EspressoLike::new();
        let mut ctx = Ctx::new(&mut heap, 3);
        let mut head = Addr::NULL;
        let (_node, cube) = workload.expand(&mut ctx, &mut head).unwrap();
        // Dangling write fills the cube with canary-ish bytes.
        ctx.write_u32(cube, 0xDEAD_BEEF).unwrap();
        let err = workload.reduce(&mut ctx, cube).unwrap_err();
        assert_eq!(err, Abort::SelfAbort("espresso: corrupt cube tag"));
    }

    #[test]
    fn unchecked_mark_writes_through_without_validation() {
        // `mark` must NOT validate: it is the write path that turns a
        // dangling pointer into an isolatable overwrite.
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(11));
        let workload = EspressoLike::new();
        let mut ctx = Ctx::new(&mut heap, 3);
        let mut head = Addr::NULL;
        let (_node, cube) = workload.expand(&mut ctx, &mut head).unwrap();
        ctx.write_u32(cube, 0xDEAD_BEEF).unwrap(); // trash the tag
        assert!(workload.mark(&mut ctx, cube).is_ok(), "mark validated");
    }

    #[test]
    fn dangling_node_pointer_segfaults() {
        // A canary value in a node's next pointer sends traversal to a
        // wild address — the cascade/crash failure mode.
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(10));
        let workload = EspressoLike::new();
        let mut ctx = Ctx::new(&mut heap, 4);
        let mut head = Addr::NULL;
        let (node, _cube) = workload.expand(&mut ctx, &mut head).unwrap();
        ctx.write_u64(node + 16, 0x4343_4343_4343_4343).unwrap();
        let err = workload.sweep(&mut ctx, head).unwrap_err();
        assert!(matches!(err, Abort::Mem(_)), "got {err:?}");
    }

    #[test]
    fn double_free_of_cube_is_tolerated_by_diehard() {
        // Inject an early free of a cube the workload will free again:
        // DieHard ignores the double free and the run completes.
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(12));
        let input = WorkloadInput::with_seed(21);
        // First run to find any cube address, then free it mid-run via a
        // wrapper is complex; instead verify directly that double frees
        // are benign under workload-realistic conditions.
        let p = heap.malloc(24, SiteHash::from_raw(1)).unwrap();
        assert_eq!(heap.free(p, SiteHash::from_raw(2)), FreeOutcome::Freed);
        assert_eq!(
            heap.free(p, SiteHash::from_raw(2)),
            FreeOutcome::DoubleFreeIgnored
        );
        let result = EspressoLike::new().run(&mut heap, &input);
        assert!(result.completed());
        assert!(heap.clock() > AllocTime::from_raw(100));
    }
}
