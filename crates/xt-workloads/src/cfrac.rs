//! A cfrac-like workload: continued-fraction factorization flavour.
//!
//! cfrac is the most allocation-intensive benchmark in the paper's suite
//! (Exterminator's worst case in Fig. 7 at ~2.3× — the cost of computing
//! allocation contexts dominates when almost every operation allocates).
//! This stand-in reproduces that profile: multi-precision "bignum" limb
//! arrays created and destroyed at a rate of several allocations per
//! arithmetic step, with almost no computation in between.

use xt_alloc::Heap;
use xt_arena::Addr;

use crate::ctx::{fnv1a, Abort, Ctx};
use crate::{RunResult, Workload, WorkloadInput};

const NUM_MAGIC: u32 = 0xB16_0001;
const HEADER: usize = 8;

/// Steps per unit of intensity.
const STEPS_PER_INTENSITY: u32 = 400;

/// The cfrac stand-in. See the module docs above.
#[derive(Clone, Copy, Debug, Default)]
pub struct CfracLike;

impl CfracLike {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        CfracLike
    }

    /// Allocates a bignum with `limbs` limbs seeded from the RNG.
    fn bignum(&self, ctx: &mut Ctx<'_>, caller: u32, limbs: usize) -> Result<Addr, Abort> {
        ctx.scoped(caller, |ctx| {
            let p = ctx.malloc(HEADER + 8 * limbs)?;
            ctx.write_u32(p, NUM_MAGIC)?;
            ctx.write_u32(p + 4, limbs as u32)?;
            for i in 0..limbs {
                let limb = ctx.rng().next_u64() | 1;
                ctx.write_u64(p + (HEADER + 8 * i) as u64, limb)?;
            }
            Ok(p)
        })
    }

    fn limbs_of(&self, ctx: &Ctx<'_>, p: Addr) -> Result<usize, Abort> {
        if ctx.read_u32(p)? != NUM_MAGIC {
            return Err(Abort::SelfAbort("cfrac: corrupt bignum"));
        }
        Ok(ctx.read_u32(p + 4)? as usize)
    }

    /// `out = (a * b) mod 2^64` per limb pair, allocated fresh — the
    /// transient that makes cfrac allocation-bound.
    fn mulmod(&self, ctx: &mut Ctx<'_>, a: Addr, b: Addr) -> Result<Addr, Abort> {
        let la = self.limbs_of(ctx, a)?;
        let lb = self.limbs_of(ctx, b)?;
        let lo = la.min(lb);
        ctx.scoped(0x3F2A_C001, |ctx| {
            let out = ctx.malloc(HEADER + 8 * lo)?;
            ctx.write_u32(out, NUM_MAGIC)?;
            ctx.write_u32(out + 4, lo as u32)?;
            for i in 0..lo {
                let off = (HEADER + 8 * i) as u64;
                let va = ctx.read_u64(a + off)?;
                let vb = ctx.read_u64(b + off)?;
                ctx.write_u64(out + off, va.wrapping_mul(vb) ^ va.rotate_left(13))?;
            }
            Ok(out)
        })
    }

    fn exec(&self, ctx: &mut Ctx<'_>, input: &WorkloadInput) -> Result<(), Abort> {
        let steps = STEPS_PER_INTENSITY * input.intensity.max(1);
        ctx.enter(0xCF2A);
        // The continued-fraction state: numerator/denominator chains.
        let mut num = self.bignum(ctx, 0x10, 4)?;
        let mut den = self.bignum(ctx, 0x11, 4)?;
        let mut residue = 0u64;
        for step in 0..steps {
            // Transient quotient digit — allocated and freed immediately.
            let limbs = 2 + ctx.rng().below_usize(5);
            let q = self.bignum(ctx, 0x20 + (step % 7), limbs)?;
            let t = self.mulmod(ctx, num, q)?;
            ctx.scoped(0x30, |ctx| {
                ctx.free(q);
                Ok(())
            })?;
            // Rotate the chain: den ← num, num ← t.
            ctx.scoped(0x31, |ctx| {
                ctx.free(den);
                Ok(())
            })?;
            den = num;
            num = t;
            let l0 = ctx.read_u64(num + HEADER as u64)?;
            residue = fnv1a(residue, &l0.to_le_bytes());
            if step % 32 == 31 {
                ctx.emit_u64(residue);
            }
        }
        ctx.emit_u64(residue);
        ctx.free(num);
        ctx.free(den);
        ctx.leave();
        Ok(())
    }
}

impl Workload for CfracLike {
    fn name(&self) -> &'static str {
        "cfrac-like"
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        let mut ctx = Ctx::new(heap, input.seed);
        let result = self.exec(&mut ctx, input);
        ctx.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_baseline::BaselineHeap;
    use xt_diehard::{DieHardConfig, DieHardHeap};

    #[test]
    fn completes_with_output() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
        let r = CfracLike::new().run(&mut heap, &WorkloadInput::with_seed(5));
        assert!(r.completed(), "{:?}", r.outcome);
        assert!(!r.output.is_empty());
    }

    #[test]
    fn output_is_layout_independent() {
        let input = WorkloadInput::with_seed(9);
        let mut h1 = DieHardHeap::new(DieHardConfig::with_seed(1));
        let mut h2 = DieHardHeap::new(DieHardConfig::with_seed(999));
        let mut hb = BaselineHeap::with_seed(3);
        let w = CfracLike::new();
        let a = w.run(&mut h1, &input);
        let b = w.run(&mut h2, &input);
        let c = w.run(&mut hb, &input);
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, c.output);
    }

    #[test]
    fn is_allocation_intensive() {
        // cfrac's defining property: ~3 allocations per step with trivial
        // compute. 400 steps ⇒ well over 1000 allocations.
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(2));
        CfracLike::new().run(&mut heap, &WorkloadInput::with_seed(1));
        assert!(heap.clock().raw() > 800, "clock {:?}", heap.clock());
        // And the live set stays tiny: transients die immediately.
        assert!(heap.live_objects() < 10);
    }

    #[test]
    fn corrupt_bignum_tag_aborts() {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(3));
        let w = CfracLike::new();
        let mut ctx = Ctx::new(&mut heap, 1);
        let n = w.bignum(&mut ctx, 0x10, 2).unwrap();
        ctx.write_u32(n, 0x1111_1111).unwrap();
        assert_eq!(
            w.limbs_of(&ctx, n).unwrap_err(),
            Abort::SelfAbort("cfrac: corrupt bignum")
        );
    }
}
