//! The benchmark applications of the paper's evaluation (§7), rebuilt as
//! Rust programs over the [`Heap`] trait.
//!
//! The paper evaluates Exterminator on the SPECint2000 suite, an
//! allocation-intensive suite (espresso, cfrac, ...), the Squid web cache,
//! and Mozilla. None of those C programs can run over the simulated
//! address space, so this crate provides *behavioural stand-ins* (see
//! `DESIGN.md`): each workload
//!
//! * allocates and frees with a realistic profile (sizes, lifetimes,
//!   allocation intensity) through any [`Heap`];
//! * stores real data in its objects and *uses* them — reads are verified
//!   against tags/invariants, so memory corruption actually manifests as
//!   wrong output, self-detected aborts, or simulated segfaults;
//! * emits a deterministic output stream that is a pure function of its
//!   input — independent of heap layout — so the replicated mode's voter
//!   can compare replicas byte-for-byte;
//! * propagates heap errors (including the iterative mode's malloc
//!   breakpoint) by aborting, like a crashing process.
//!
//! Two workloads carry *seeded real bugs* mirroring the paper's case
//! studies: [`SquidLike`] (a deterministic 6-byte heap overflow on a
//! malformed request, §7.2) and [`MozillaLike`] (a buffer overflow in
//! international-domain-name processing with nondeterministic allocation
//! noise, paper bug 307259).

mod cfrac;
mod ctx;
mod espresso;
mod mozilla;
mod profile;
mod squid;

pub use cfrac::CfracLike;
pub use ctx::{fnv1a, Abort, Ctx};
pub use espresso::EspressoLike;
pub use mozilla::{attack_browsing_session, benign_browsing_session, MozillaLike};
pub use profile::{AllocProfile, ProfileWorkload};
pub use squid::{
    attack_request, benign_request_window, benign_requests, multi_client_sessions,
    overflow_requests, server_session, SquidLike,
};

use xt_alloc::{Heap, HeapError, MemFault};

/// Input to a workload run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadInput {
    /// Seed for the workload's own randomness. Deterministic workloads
    /// derive everything from it; [`MozillaLike`] treats it as the
    /// per-run nondeterminism (mouse movement, timers).
    pub seed: u64,
    /// Request stream / page list / raw input bytes, workload-specific.
    pub payload: Vec<u8>,
    /// Scale factor: more rounds, more requests, more pages.
    pub intensity: u32,
}

impl WorkloadInput {
    /// A convenience constructor for seed-only inputs.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        WorkloadInput {
            seed,
            payload: Vec::new(),
            intensity: 1,
        }
    }

    /// Sets the payload.
    #[must_use]
    pub fn payload(mut self, payload: impl Into<Vec<u8>>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Sets the intensity.
    #[must_use]
    pub fn intensity(mut self, intensity: u32) -> Self {
        self.intensity = intensity;
        self
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Ran to completion.
    Completed,
    /// Aborted: the reproduction's equivalent of a process crash.
    Crashed(CrashKind),
}

impl RunOutcome {
    /// `true` if the run completed normally.
    #[must_use]
    pub fn completed(&self) -> bool {
        *self == RunOutcome::Completed
    }
}

/// Why a run crashed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// An access faulted (simulated SIGSEGV).
    SegFault(MemFault),
    /// The allocator refused an allocation (OOM or oversized request).
    HeapExhausted(HeapError),
    /// The iterative mode's malloc breakpoint fired — not an error, the
    /// runtime stops replays this way (§3.4).
    Breakpoint,
    /// The application detected an internal inconsistency and aborted
    /// (e.g. espresso reading a canary where a cube tag should be).
    SelfAbort(&'static str),
}

/// The result of one workload run: outcome plus captured output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Output bytes produced up to the end (complete runs) or up to the
    /// crash point. The replicated mode's voter compares these.
    pub output: Vec<u8>,
}

impl RunResult {
    /// `true` if the run completed normally.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.outcome.completed()
    }
}

/// A benchmark application runnable over any allocator.
pub trait Workload {
    /// Short name, as it appears in Fig. 7's x-axis.
    fn name(&self) -> &'static str;

    /// Runs the workload to completion (or crash) over `heap`.
    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult;
}

impl<T: Workload + ?Sized> Workload for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        (**self).run(heap, input)
    }
}

/// The allocation-intensive suite of §7.1 (espresso, cfrac, and
/// profile-driven stand-ins for lindsay, p2c, and roboop).
#[must_use]
pub fn alloc_intensive_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(CfracLike::new()),
        Box::new(EspressoLike::new()),
        Box::new(ProfileWorkload::lindsay_like()),
        Box::new(ProfileWorkload::p2c_like()),
        Box::new(ProfileWorkload::roboop_like()),
    ]
}

/// The SPECint2000 stand-in suite of §7.1.
#[must_use]
pub fn spec_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ProfileWorkload::gzip_like()),
        Box::new(ProfileWorkload::vpr_like()),
        Box::new(ProfileWorkload::gcc_like()),
        Box::new(ProfileWorkload::mcf_like()),
        Box::new(ProfileWorkload::crafty_like()),
        Box::new(ProfileWorkload::parser_like()),
        Box::new(ProfileWorkload::perlbmk_like()),
        Box::new(ProfileWorkload::gap_like()),
        Box::new(ProfileWorkload::vortex_like()),
        Box::new(ProfileWorkload::bzip2_like()),
        Box::new(ProfileWorkload::twolf_like()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_builder_chains() {
        let input = WorkloadInput::with_seed(7)
            .payload(b"x".to_vec())
            .intensity(3);
        assert_eq!(input.seed, 7);
        assert_eq!(input.payload, b"x");
        assert_eq!(input.intensity, 3);
    }

    #[test]
    fn outcome_predicates() {
        assert!(RunOutcome::Completed.completed());
        assert!(!RunOutcome::Crashed(CrashKind::Breakpoint).completed());
    }

    #[test]
    fn suites_are_populated() {
        assert_eq!(alloc_intensive_suite().len(), 5);
        assert_eq!(spec_suite().len(), 11);
        let names: Vec<&str> = spec_suite().iter().map(|w| w.name()).collect();
        assert!(names.contains(&"crafty-like"));
    }
}
