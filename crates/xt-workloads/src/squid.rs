//! A Squid-like workload carrying the paper's web-cache overflow.
//!
//! §7.2: "Version 2.3s5 of Squid has a buffer overflow; certain inputs
//! cause Squid to crash with either the GNU libc allocator or the
//! Boehm-Demers-Weiser collector. ... Exterminator's error isolation
//! algorithm identifies a single allocation site as the culprit and
//! generates a pad of exactly 6 bytes, fixing the error."
//!
//! This stand-in processes `GET <url>` requests and caches response
//! entries. Its seeded bug mirrors the real one (a mis-sized buffer for
//! URLs needing unescaping): for URLs containing `%XX` escapes, the entry
//! buffer is sized for the *decoded* URL but the store path always appends
//! a 6-byte trailer — a deterministic 6-byte heap overflow on malformed
//! input, absent on clean input.

use std::collections::HashMap;

use xt_alloc::Heap;

use crate::ctx::{fnv1a, Abort, Ctx};
use crate::{RunResult, Workload, WorkloadInput};

const ENTRY_MAGIC: u32 = 0x5B1D_CAFE;
const ENTRY_HEADER: usize = 8;
/// The trailer the buggy size computation forgets: `\r\n\r\nOK`.
const TRAILER: &[u8; 6] = b"\r\n\r\nOK";

/// The Squid stand-in. See the module docs above.
#[derive(Clone, Copy, Debug, Default)]
pub struct SquidLike;

impl SquidLike {
    /// Creates the workload.
    #[must_use]
    pub fn new() -> Self {
        SquidLike
    }

    /// Percent-decodes a URL; `%XX` becomes one byte.
    fn decode(url: &[u8]) -> (Vec<u8>, bool) {
        let mut out = Vec::with_capacity(url.len());
        let mut had_escape = false;
        let mut i = 0;
        while i < url.len() {
            if url[i] == b'%' && i + 2 < url.len() {
                let hex = |b: u8| match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    _ => None,
                };
                if let (Some(hi), Some(lo)) = (hex(url[i + 1]), hex(url[i + 2])) {
                    out.push(hi * 16 + lo);
                    had_escape = true;
                    i += 3;
                    continue;
                }
            }
            out.push(url[i]);
            i += 1;
        }
        (out, had_escape)
    }

    /// Stores a cache entry for `decoded`, returning its address.
    ///
    /// The bug: the escaped path sizes the buffer without the trailer.
    fn store_entry(
        &self,
        ctx: &mut Ctx<'_>,
        decoded: &[u8],
        had_escape: bool,
    ) -> Result<xt_arena::Addr, Abort> {
        // One allocation site for the escaped path (the culprit the paper's
        // isolation pins down), another for the clean path.
        let caller = if had_escape { 0x5C_E5CA } else { 0x5C_C1EA };
        ctx.scoped(caller, |ctx| {
            let correct_size = ENTRY_HEADER + decoded.len() + TRAILER.len();
            let buggy_size = ENTRY_HEADER + decoded.len(); // forgot TRAILER
            let size = if had_escape { buggy_size } else { correct_size };
            let entry = ctx.malloc(size)?;
            ctx.write_u32(entry, ENTRY_MAGIC)?;
            ctx.write_u32(entry + 4, decoded.len() as u32)?;
            ctx.write_bytes(entry + ENTRY_HEADER as u64, decoded)?;
            // The store path ALWAYS writes the trailer — 6 bytes past the
            // end of the buggy allocation.
            ctx.write_bytes(entry + (ENTRY_HEADER + decoded.len()) as u64, TRAILER)?;
            Ok(entry)
        })
    }

    fn exec(&self, ctx: &mut Ctx<'_>, input: &WorkloadInput) -> Result<(), Abort> {
        /// Cache capacity before FIFO eviction (Squid's replacement policy
        /// stands in) — eviction churn is what lets DieFast's alloc/free
        /// canary checks discover corruption promptly.
        const CACHE_CAP: usize = 16;
        ctx.enter(0x5B1D);
        let mut cache: HashMap<u64, xt_arena::Addr> = HashMap::new();
        let mut order: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut responses = 0u64;
        let payload = input.payload.clone();
        for _ in 0..input.intensity.max(1) {
            for line in payload.split(|&b| b == b'\n') {
                let line = line.strip_suffix(b"\r").unwrap_or(line);
                let Some(url) = line.strip_prefix(b"GET ") else {
                    continue;
                };
                // Transient request-parsing buffer, like Squid's header
                // manipulation churn.
                ctx.scoped(0x5C_4EAD, |ctx| {
                    let buf = ctx.malloc(url.len().max(16))?;
                    ctx.write_bytes(buf, url)?;
                    let echo = ctx.read_bytes(buf, url.len().min(8))?;
                    responses = fnv1a(responses, &echo);
                    ctx.free(buf);
                    Ok(())
                })?;
                let (decoded, had_escape) = Self::decode(url);
                let key = fnv1a(0, &decoded);
                let hit = cache.contains_key(&key);
                if !hit {
                    let entry = self.store_entry(ctx, &decoded, had_escape)?;
                    cache.insert(key, entry);
                    order.push_back(key);
                    while order.len() > CACHE_CAP {
                        let victim = order.pop_front().expect("non-empty order");
                        if let Some(old) = cache.remove(&victim) {
                            if ctx.read_u32(old)? != ENTRY_MAGIC {
                                return Err(Abort::SelfAbort("squid: corrupt cache entry"));
                            }
                            ctx.scoped(0x5C_E71C, |ctx| {
                                ctx.free(old);
                                Ok(())
                            })?;
                        }
                    }
                }
                // Serve the response from the cache entry, verifying it.
                let entry = cache[&key];
                if ctx.read_u32(entry)? != ENTRY_MAGIC {
                    return Err(Abort::SelfAbort("squid: corrupt cache entry"));
                }
                let len = ctx.read_u32(entry + 4)? as usize;
                let body = ctx.read_bytes(entry + ENTRY_HEADER as u64, len)?;
                responses = fnv1a(responses, &body);
                ctx.emit_u64(responses ^ u64::from(hit));
            }
        }
        ctx.leave();
        Ok(())
    }
}

impl Workload for SquidLike {
    fn name(&self) -> &'static str {
        "squid-like"
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        let mut ctx = Ctx::new(heap, input.seed);
        let result = self.exec(&mut ctx, input);
        ctx.finish(result)
    }
}

/// A benign request stream: no escapes, no overflow. URL lengths vary so
/// cache entries span several size classes, like real responses.
#[must_use]
pub fn benign_requests(n: usize) -> Vec<u8> {
    benign_request_window(0, n)
}

/// `n` benign requests starting at request ordinal `start` — a window of
/// the same infinite deterministic request stream [`benign_requests`]
/// prefixes.
#[must_use]
pub fn benign_request_window(start: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in start..start + n {
        let pad = "x".repeat((i * 7) % 70);
        out.extend_from_slice(format!("GET /static/page-{i}/{pad}index.html\n").as_bytes());
    }
    out
}

/// The single crafted `GET` line that triggers the 6-byte overflow (the
/// attack request [`overflow_requests`] embeds in a batch).
#[must_use]
pub fn attack_request() -> Vec<u8> {
    // "/" + 52 ASCII bytes + "%20" (decodes to 1) + 2 more = 56 decoded
    // bytes: the buggy allocation requests 8 + 56 = 64 — exactly a size
    // class — so the 6-byte trailer lands in the next slot.
    let mut evil = String::from("GET /");
    evil.push_str(&"a".repeat(52));
    evil.push_str("%20ab");
    debug_assert_eq!(SquidLike::decode(&evil.as_bytes()[4..]).0.len(), 56);
    evil.push('\n');
    evil.into_bytes()
}

/// A streaming multi-request server session: the request stream of a
/// long-running cache, cut into per-request-batch [`WorkloadInput`]s for a
/// persistent executor (one input = one batch broadcast to every replica
/// of a `ReplicaPool`-served cache — see `exterminator::pool`). Batch `i`
/// serves a sliding window of the deterministic benign stream, so
/// consecutive batches share cache keys the way consecutive real requests
/// revisit hot URLs; if `attack_every = Some(k)`, every `k`-th batch also
/// carries the malformed escaped URL — the paper's §7.2 "certain inputs
/// cause Squid to crash" moment arriving in live traffic.
///
/// Each input is a pure function of `(i, requests_per_batch,
/// attack_every)`: replicas stay voteable and whole sessions replay
/// byte-identically.
#[must_use]
pub fn server_session(
    batches: usize,
    requests_per_batch: usize,
    attack_every: Option<usize>,
) -> Vec<WorkloadInput> {
    let per = requests_per_batch.max(1);
    (0..batches)
        .map(|i| {
            let mut payload = benign_request_window(i * per / 2, per);
            if let Some(k) = attack_every {
                if k > 0 && i % k == k - 1 {
                    payload.extend_from_slice(&attack_request());
                    // Post-attack traffic keeps the cache churning so the
                    // corruption is visited, as in `overflow_requests`.
                    payload.extend_from_slice(&benign_request_window(i * per / 2 + per, per));
                }
            }
            WorkloadInput::with_seed(i as u64).payload(payload)
        })
        .collect()
}

/// Per-client request streams for a multi-client cache deployment — the
/// traffic shape a concurrent pool front-end
/// (`exterminator::frontend::PoolFrontend`) serves: `clients` independent
/// request sources, each producing `batches` inputs of
/// `requests_per_batch` requests. Client `c` walks the same deterministic
/// benign URL universe as [`server_session`] but from a client-specific
/// starting offset, so clients overlap on hot cache keys (the way real
/// user populations revisit the same pages) without submitting
/// byte-identical streams; if `attack_every = Some(k)`, every client's
/// `k`-th batches carry the crafted escaped URL — the §7.2 malformed
/// request arriving from anywhere in the population.
///
/// Every input is a pure function of `(c, i, requests_per_batch,
/// attack_every)`, and the per-input seeds are distinct across the whole
/// matrix, so hash-routed front-ends spread clients over pools
/// deterministically.
#[must_use]
pub fn multi_client_sessions(
    clients: usize,
    batches: usize,
    requests_per_batch: usize,
    attack_every: Option<usize>,
) -> Vec<Vec<WorkloadInput>> {
    let per = requests_per_batch.max(1);
    (0..clients)
        .map(|c| {
            (0..batches)
                .map(|i| {
                    let offset = c * 5 + i * per / 2;
                    let mut payload = benign_request_window(offset, per);
                    if let Some(k) = attack_every {
                        if k > 0 && i % k == k - 1 {
                            payload.extend_from_slice(&attack_request());
                            payload.extend_from_slice(&benign_request_window(offset + per, per));
                        }
                    }
                    WorkloadInput::with_seed(((c as u64) << 32) | i as u64).payload(payload)
                })
                .collect()
        })
        .collect()
}

/// The crafted request stream that triggers the 6-byte overflow.
///
/// The escaped URL decodes to exactly 56 bytes, so the buggy entry
/// allocation requests 8 + 56 = 64 bytes — exactly a DieHard size class —
/// and the 6-byte trailer lands entirely in the next slot, mirroring how
/// the real Squid bug corrupted adjacent heap memory. Benign traffic
/// follows the attack, as it would for a live cache.
#[must_use]
pub fn overflow_requests(n_benign: usize) -> Vec<u8> {
    let mut out = benign_requests(n_benign);
    out.extend_from_slice(&attack_request());
    out.extend_from_slice(&benign_requests(n_benign.max(24)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_baseline::BaselineHeap;
    use xt_diefast::{DieFastConfig, DieFastHeap};
    use xt_diehard::{DieHardConfig, DieHardHeap};

    #[test]
    fn decode_handles_escapes() {
        assert_eq!(SquidLike::decode(b"/a%20b").0, b"/a b");
        assert!(SquidLike::decode(b"/a%20b").1);
        assert!(!SquidLike::decode(b"/plain").1);
        // Malformed escapes pass through untouched.
        assert_eq!(SquidLike::decode(b"/x%zz").0, b"/x%zz");
    }

    #[test]
    fn server_session_is_deterministic_and_layout_independent() {
        assert_eq!(
            server_session(12, 4, Some(3)),
            server_session(12, 4, Some(3)),
            "session generation must be pure"
        );
        let session = server_session(6, 4, None);
        assert_eq!(session.len(), 6);
        // Every benign batch completes with identical output on two
        // differently-seeded heaps: the stream is voteable.
        for input in &session {
            let mut h1 = DieFastHeap::new(DieFastConfig::with_seed(5));
            let mut h2 = DieFastHeap::new(DieFastConfig::with_seed(17));
            let r1 = SquidLike::new().run(&mut h1, input);
            let r2 = SquidLike::new().run(&mut h2, input);
            assert!(r1.completed(), "{:?}", r1.outcome);
            assert_eq!(r1.output, r2.output, "output depends on heap layout");
            assert!(!h1.has_signals() && !h2.has_signals());
        }
        // Attack batches carry the crafted escape; benign ones don't.
        let attacked = server_session(6, 4, Some(2));
        for (i, input) in attacked.iter().enumerate() {
            let has_escape = input.payload.windows(3).any(|w| w == b"%20");
            assert_eq!(has_escape, i % 2 == 1, "attack cadence wrong at {i}");
        }
    }

    #[test]
    fn multi_client_sessions_are_deterministic_distinct_and_overlapping() {
        assert_eq!(
            multi_client_sessions(3, 4, 6, Some(2)),
            multi_client_sessions(3, 4, 6, Some(2)),
            "session matrix must be pure"
        );
        let sessions = multi_client_sessions(3, 4, 6, None);
        assert_eq!(sessions.len(), 3);
        assert!(sessions.iter().all(|s| s.len() == 4));
        // Distinct seeds across the whole matrix (hash routing spreads).
        let mut seeds: Vec<u64> = sessions.iter().flatten().map(|input| input.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "duplicate input seeds across clients");
        // Clients are not byte-identical but share hot URLs.
        assert_ne!(sessions[0][0].payload, sessions[1][0].payload);
        let lines = |p: &[u8]| {
            p.split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .map(<[u8]>::to_vec)
                .collect::<std::collections::HashSet<_>>()
        };
        let a = lines(&sessions[0][1].payload);
        let b = lines(&sessions[1][0].payload);
        assert!(
            a.intersection(&b).count() > 0,
            "clients never overlap on cache keys"
        );
        // Attack cadence holds per client, and attack batches run the
        // crafted escape.
        let attacked = multi_client_sessions(2, 4, 6, Some(2));
        for session in &attacked {
            for (i, input) in session.iter().enumerate() {
                let has_escape = input.payload.windows(3).any(|w| w == b"%20");
                assert_eq!(has_escape, i % 2 == 1, "attack cadence wrong at {i}");
            }
        }
    }

    #[test]
    fn benign_input_is_clean_everywhere() {
        let input = WorkloadInput::with_seed(1)
            .payload(benign_requests(30))
            .intensity(2);
        let mut heap = DieFastHeap::new(DieFastConfig::with_seed(3));
        let r = SquidLike::new().run(&mut heap, &input);
        assert!(r.completed(), "{:?}", r.outcome);
        assert!(
            !heap.has_signals(),
            "false positive: {:?}",
            heap.take_signals()
        );
    }

    #[test]
    fn outputs_match_across_allocators() {
        let input = WorkloadInput::with_seed(1).payload(benign_requests(20));
        let w = SquidLike::new();
        let mut h1 = DieHardHeap::new(DieHardConfig::with_seed(2));
        let mut h2 = BaselineHeap::with_seed(2);
        assert_eq!(w.run(&mut h1, &input).output, w.run(&mut h2, &input).output);
    }

    #[test]
    fn crafted_url_overflows_exactly_six_bytes() {
        // On the baseline allocator, the overflow tramples the next chunk
        // header — the "crashes with the GNU libc allocator" behaviour.
        let input = WorkloadInput::with_seed(1).payload(overflow_requests(0));
        let mut heap = BaselineHeap::with_seed(7);
        let _ = SquidLike::new().run(&mut heap, &input);
        // 64-byte request with 6 bytes written past its end: either
        // detected at a later free or silently corrupting; the baseline
        // flags it when the neighbour is touched. At minimum, the entry's
        // own trailer write must not fault.
        // Now verify the overflow geometry directly on the crafted URL.
        let payload = overflow_requests(0);
        let line = payload
            .split(|&b| b == b'\n')
            .find(|l| l.contains(&b'%'))
            .unwrap();
        let (decoded, escaped) = SquidLike::decode(line.strip_prefix(b"GET ").unwrap());
        assert!(escaped);
        assert_eq!(ENTRY_HEADER + decoded.len(), 64, "buggy request size");
        assert_eq!(ENTRY_HEADER + decoded.len() + TRAILER.len(), 70);
    }

    #[test]
    fn overflow_is_observable_under_diefast() {
        // The evil input writes 6 bytes past its entry. Depending on the
        // randomized layout the bytes land on canaried free space (DieFast
        // signals) or on a live cache entry (the app's own validation
        // aborts, like the real Squid crash). Either way the error is
        // observable in most randomized runs; it must never be *silent* in
        // all of them.
        let input = WorkloadInput::with_seed(1)
            .payload(overflow_requests(25))
            .intensity(3);
        let mut signalled = 0;
        let mut crashed = 0;
        for seed in 0..6 {
            let mut heap = DieFastHeap::new(DieFastConfig::with_seed(seed));
            let r = SquidLike::new().run(&mut heap, &input);
            if heap.has_signals() {
                signalled += 1;
            } else if !r.completed() {
                crashed += 1;
            }
        }
        assert!(
            signalled + crashed >= 3,
            "error observed in only {}/6 randomized runs",
            signalled + crashed
        );
        assert!(signalled >= 1, "DieFast never signalled the corruption");
    }
}
