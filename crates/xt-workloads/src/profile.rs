//! Profile-driven synthetic workloads: the SPECint2000 stand-ins.
//!
//! Fig. 7 compares Exterminator against GNU libc across SPECint2000 and an
//! allocation-intensive suite. The SPEC binaries and reference inputs are
//! not reproducible here, but the *property Fig. 7 measures* — how
//! allocator overhead scales with allocation intensity — only depends on
//! each benchmark's allocation profile: how often it allocates, the size
//! distribution, object lifetimes, and how much computation happens
//! between allocations. [`AllocProfile`] captures exactly those knobs;
//! the per-benchmark constants are set to reflect the published
//! memory-behaviour characterizations of the respective programs
//! (crafty allocates almost nothing; parser and perlbmk churn small
//! objects; gzip/bzip2 use a few large buffers; mcf holds medium
//! long-lived nodes; ...).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use xt_alloc::Heap;
use xt_arena::Addr;

use crate::ctx::{fnv1a, Abort, Ctx};
use crate::{RunResult, Workload, WorkloadInput};

const TAG: u64 = 0x7A6_0000_0000_0001;

/// An allocation-behaviour profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllocProfile {
    /// Benchmark display name.
    pub name: &'static str,
    /// Steps per unit of [`WorkloadInput::intensity`].
    pub steps_per_intensity: u32,
    /// Expected allocations per step (may be fractional).
    pub allocs_per_step: f64,
    /// Object size distribution as `(bytes, weight)` pairs.
    pub sizes: &'static [(usize, u32)],
    /// Mean object lifetime in steps (geometric distribution).
    pub mean_lifetime_steps: f64,
    /// Computation (hash rounds) per step — what dilutes allocator cost.
    pub compute_per_step: u32,
    /// Number of distinct allocation call paths to synthesize.
    pub site_variety: u32,
}

/// A workload that replays an [`AllocProfile`].
#[derive(Clone, Copy, Debug)]
pub struct ProfileWorkload {
    profile: AllocProfile,
}

macro_rules! profiles {
    ($($fn_name:ident => $profile:expr;)*) => {
        $(
            /// Constructs this benchmark stand-in. See the module
            /// docs for what the profile models.
            #[must_use]
            pub fn $fn_name() -> Self {
                ProfileWorkload { profile: $profile }
            }
        )*
    };
}

impl ProfileWorkload {
    /// Builds a workload from a custom profile.
    #[must_use]
    pub fn new(profile: AllocProfile) -> Self {
        ProfileWorkload { profile }
    }

    /// The profile being replayed.
    #[must_use]
    pub fn profile(&self) -> &AllocProfile {
        &self.profile
    }

    profiles! {
        gzip_like => AllocProfile {
            name: "gzip-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.02,
            sizes: &[(32 * 1024, 3), (16 * 1024, 2), (4096, 1)],
            mean_lifetime_steps: 80.0,
            compute_per_step: 1600,
            site_variety: 6,
        };
        vpr_like => AllocProfile {
            name: "vpr-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.2,
            sizes: &[(48, 4), (120, 2), (640, 1)],
            mean_lifetime_steps: 60.0,
            compute_per_step: 1000,
            site_variety: 24,
        };
        gcc_like => AllocProfile {
            name: "gcc-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.7,
            sizes: &[(24, 6), (64, 4), (256, 2), (2048, 1)],
            mean_lifetime_steps: 25.0,
            compute_per_step: 800,
            site_variety: 64,
        };
        mcf_like => AllocProfile {
            name: "mcf-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.05,
            sizes: &[(192, 4), (96, 1)],
            mean_lifetime_steps: 200.0,
            compute_per_step: 1300,
            site_variety: 5,
        };
        crafty_like => AllocProfile {
            name: "crafty-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.002,
            sizes: &[(1024, 1)],
            mean_lifetime_steps: 400.0,
            compute_per_step: 1800,
            site_variety: 3,
        };
        parser_like => AllocProfile {
            name: "parser-like",
            steps_per_intensity: 300,
            allocs_per_step: 2.2,
            sizes: &[(16, 6), (32, 5), (64, 2)],
            mean_lifetime_steps: 6.0,
            compute_per_step: 260,
            site_variety: 40,
        };
        perlbmk_like => AllocProfile {
            name: "perlbmk-like",
            steps_per_intensity: 300,
            allocs_per_step: 1.1,
            sizes: &[(24, 5), (48, 4), (160, 2), (1024, 1)],
            mean_lifetime_steps: 15.0,
            compute_per_step: 550,
            site_variety: 48,
        };
        gap_like => AllocProfile {
            name: "gap-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.3,
            sizes: &[(64, 3), (512, 2), (8192, 1)],
            mean_lifetime_steps: 50.0,
            compute_per_step: 1000,
            site_variety: 16,
        };
        vortex_like => AllocProfile {
            name: "vortex-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.9,
            sizes: &[(64, 4), (136, 3), (504, 1)],
            mean_lifetime_steps: 40.0,
            compute_per_step: 500,
            site_variety: 32,
        };
        bzip2_like => AllocProfile {
            name: "bzip2-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.008,
            sizes: &[(64 * 1024, 2), (32 * 1024, 1)],
            mean_lifetime_steps: 150.0,
            compute_per_step: 1700,
            site_variety: 3,
        };
        twolf_like => AllocProfile {
            name: "twolf-like",
            steps_per_intensity: 300,
            allocs_per_step: 0.45,
            sizes: &[(24, 5), (56, 3), (96, 1)],
            mean_lifetime_steps: 35.0,
            compute_per_step: 800,
            site_variety: 28,
        };
        lindsay_like => AllocProfile {
            name: "lindsay-like",
            steps_per_intensity: 300,
            allocs_per_step: 1.6,
            sizes: &[(16, 3), (40, 3), (72, 1)],
            mean_lifetime_steps: 10.0,
            compute_per_step: 30,
            site_variety: 20,
        };
        p2c_like => AllocProfile {
            name: "p2c-like",
            steps_per_intensity: 300,
            allocs_per_step: 1.3,
            sizes: &[(16, 4), (32, 3), (128, 1)],
            mean_lifetime_steps: 12.0,
            compute_per_step: 35,
            site_variety: 24,
        };
        roboop_like => AllocProfile {
            name: "roboop-like",
            steps_per_intensity: 300,
            allocs_per_step: 2.8,
            sizes: &[(24, 4), (72, 3), (200, 1)],
            mean_lifetime_steps: 3.0,
            compute_per_step: 20,
            site_variety: 12,
        };
    }

    fn pick_size(&self, ctx: &mut Ctx<'_>) -> usize {
        let total: u32 = self.profile.sizes.iter().map(|&(_, w)| w).sum();
        let mut roll = ctx.rng().below(u64::from(total)) as u32;
        for &(size, weight) in self.profile.sizes {
            if roll < weight {
                return size;
            }
            roll -= weight;
        }
        self.profile.sizes[0].0
    }

    /// Geometric lifetime with the profile's mean.
    fn pick_lifetime(&self, ctx: &mut Ctx<'_>) -> u64 {
        let mean = self.profile.mean_lifetime_steps.max(1.0);
        let u = ctx.rng().unit_f64().max(1e-12);
        (-u.ln() * mean).ceil() as u64
    }

    fn exec(&self, ctx: &mut Ctx<'_>, input: &WorkloadInput) -> Result<(), Abort> {
        let steps = u64::from(self.profile.steps_per_intensity) * u64::from(input.intensity.max(1));
        let mut acc = 0.0f64;
        let mut hash_state = 0x9E37_79B9u64 ^ input.seed;
        let mut checksum = 0u64;
        // Death queue ordered by (expiry step, allocation order): ties must
        // never be broken by address, or the output would depend on heap
        // layout and the replicated mode's voter would see divergence.
        let mut seq = 0u64;
        let mut deaths: BinaryHeap<Reverse<(u64, u64, Addr, u32)>> = BinaryHeap::new();
        ctx.enter(0x5EC0 + self.profile.site_variety);
        for step in 0..steps {
            // CPU work between allocations — this is what separates the
            // SPEC-like profiles from the allocation-intensive ones.
            for _ in 0..self.profile.compute_per_step {
                hash_state = hash_state
                    .rotate_left(13)
                    .wrapping_mul(0xA24B_AED4_963E_E407)
                    ^ (hash_state >> 7);
            }
            // Expire due objects (validating their tags: corruption of a
            // live object is observable, as in a real program).
            while let Some(&Reverse((due, _, ptr, nonce))) = deaths.peek() {
                if due > step {
                    break;
                }
                deaths.pop();
                let tag = ctx.read_u64(ptr)?;
                if tag != TAG ^ u64::from(nonce) {
                    return Err(Abort::SelfAbort("profile: corrupt object tag"));
                }
                checksum = fnv1a(checksum, &ctx.read_u64(ptr + 8)?.to_le_bytes());
                ctx.scoped(0xF2EE, |ctx| {
                    ctx.free(ptr);
                    Ok(())
                })?;
            }
            // Allocate according to the profile rate.
            acc += self.profile.allocs_per_step;
            while acc >= 1.0 {
                acc -= 1.0;
                let size = self.pick_size(ctx).max(16);
                let lifetime = self.pick_lifetime(ctx);
                let caller = 0x100 + ctx.rng().below(u64::from(self.profile.site_variety)) as u32;
                let nonce = ctx.rng().next_u32();
                let ptr = ctx.scoped(caller, |ctx| ctx.malloc(size))?;
                ctx.write_u64(ptr, TAG ^ u64::from(nonce))?;
                ctx.write_u64(ptr + 8, u64::from(nonce).wrapping_mul(step + 1))?;
                // Touch the tail of the buffer like a real consumer would.
                if size >= 24 {
                    ctx.write_u64(ptr + (size - 8) as u64, hash_state)?;
                }
                deaths.push(Reverse((step + lifetime, seq, ptr, nonce)));
                seq += 1;
            }
            if step % 64 == 63 {
                ctx.emit_u64(checksum ^ hash_state);
            }
        }
        ctx.emit_u64(fnv1a(checksum, &hash_state.to_le_bytes()));
        ctx.leave();
        Ok(())
    }
}

impl Workload for ProfileWorkload {
    fn name(&self) -> &'static str {
        self.profile.name
    }

    fn run(&self, heap: &mut dyn Heap, input: &WorkloadInput) -> RunResult {
        let mut ctx = Ctx::new(heap, input.seed);
        let result = self.exec(&mut ctx, input);
        ctx.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_baseline::BaselineHeap;
    use xt_diehard::{DieHardConfig, DieHardHeap};

    #[test]
    fn all_profiles_complete() {
        for w in crate::spec_suite()
            .iter()
            .chain(crate::alloc_intensive_suite().iter())
        {
            let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
            let r = w.run(&mut heap, &WorkloadInput::with_seed(3));
            assert!(r.completed(), "{} crashed: {:?}", w.name(), r.outcome);
            assert!(!r.output.is_empty(), "{} produced no output", w.name());
        }
    }

    #[test]
    fn outputs_are_layout_independent() {
        let input = WorkloadInput::with_seed(17);
        let w = ProfileWorkload::parser_like();
        let mut h1 = DieHardHeap::new(DieHardConfig::with_seed(4));
        let mut h2 = BaselineHeap::with_seed(9);
        assert_eq!(w.run(&mut h1, &input).output, w.run(&mut h2, &input).output);
    }

    #[test]
    fn alloc_intensity_ordering_holds() {
        // parser-like must allocate orders of magnitude more than
        // crafty-like — the spread Fig. 7 rides on.
        let input = WorkloadInput::with_seed(2);
        let mut hp = DieHardHeap::new(DieHardConfig::with_seed(1));
        ProfileWorkload::parser_like().run(&mut hp, &input);
        let mut hc = DieHardHeap::new(DieHardConfig::with_seed(1));
        ProfileWorkload::crafty_like().run(&mut hc, &input);
        assert!(
            hp.clock().raw() > 50 * hc.clock().raw().max(1),
            "parser {} vs crafty {}",
            hp.clock(),
            hc.clock()
        );
    }

    #[test]
    fn lifetimes_expire_objects() {
        let input = WorkloadInput::with_seed(8);
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(6));
        ProfileWorkload::parser_like().run(&mut heap, &input);
        // Short mean lifetime ⇒ most objects freed by the end.
        assert!(
            heap.live_objects() < heap.clock().raw() as usize / 10,
            "live {} of {} allocated",
            heap.live_objects(),
            heap.clock()
        );
    }

    #[test]
    fn custom_profile_is_usable() {
        let w = ProfileWorkload::new(AllocProfile {
            name: "custom",
            steps_per_intensity: 10,
            allocs_per_step: 1.0,
            sizes: &[(64, 1)],
            mean_lifetime_steps: 2.0,
            compute_per_step: 1,
            site_variety: 2,
        });
        assert_eq!(w.name(), "custom");
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
        assert!(w.run(&mut heap, &WorkloadInput::with_seed(1)).completed());
    }
}
