//! Minimal little-endian binary encoding for heap images.
//!
//! The paper's heap image is a bespoke on-disk format; we keep ours
//! dependency-free and versioned. [`ByteWriter`]/[`ByteReader`] are public
//! because the cumulative-mode summary files reuse them.

use std::error::Error;
use std::fmt;

/// An append-only little-endian encoder.
///
/// # Example
///
/// ```
/// use xt_image::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.u32(7);
/// w.bytes(b"hi");
/// let buf = w.into_bytes();
/// let mut r = ByteReader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.take(2).unwrap(), b"hi");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes (length is *not* encoded).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, returning the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageDecodeError {
    /// Input ended before the announced structure was complete.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        at: usize,
    },
    /// The magic number did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the input.
        found: u32,
    },
    /// A field held an impossible value.
    BadField {
        /// Which field.
        field: &'static str,
    },
}

impl fmt::Display for ImageDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageDecodeError::UnexpectedEof { at } => {
                write!(f, "unexpected end of image data at byte {at}")
            }
            ImageDecodeError::BadMagic => write!(f, "not a heap image (bad magic)"),
            ImageDecodeError::BadVersion { found } => {
                write!(f, "unsupported heap image version {found}")
            }
            ImageDecodeError::BadField { field } => write!(f, "invalid value for field {field}"),
        }
    }
}

impl Error for ImageDecodeError {}

/// A cursor-based little-endian decoder matching [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte buffer.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`ImageDecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ImageDecodeError> {
        if self.remaining() < n {
            return Err(ImageDecodeError::UnexpectedEof { at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`ImageDecodeError::UnexpectedEof`] at end of input.
    pub fn u8(&mut self) -> Result<u8, ImageDecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ImageDecodeError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, ImageDecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ImageDecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, ImageDecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes an `f64` stored as its bit pattern.
    ///
    /// # Errors
    ///
    /// [`ImageDecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, ImageDecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_types() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.25);
        w.bytes(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 4 + 8 + 8 + 3);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn eof_is_reported_with_position() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        let err = r.u32().unwrap_err();
        assert_eq!(err, ImageDecodeError::UnexpectedEof { at: 1 });
        assert!(err.to_string().contains("byte 1"));
    }

    #[test]
    fn empty_writer_is_empty() {
        assert!(ByteWriter::new().is_empty());
        assert!(ByteReader::new(&[]).is_empty());
    }
}
