//! The heap image structure, capture, and (de)serialization.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use xt_alloc::{AllocTime, Heap, ObjectId, SiteHash};
use xt_arena::{Addr, PAGE_SIZE};
use xt_diefast::DieFastHeap;
use xt_diehard::{MiniHeapId, SlotState};

use crate::{ByteReader, ByteWriter, ImageDecodeError};

const MAGIC: u32 = 0x5849_4D47; // "XIMG"
const VERSION: u32 = 1;

/// Everything recorded about one object slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotImage {
    /// Life-cycle state at capture time.
    pub state: SlotState,
    /// Identity of the current or most recent occupant.
    pub object_id: ObjectId,
    /// Allocation site of that occupant.
    pub alloc_site: SiteHash,
    /// Deallocation site (meaningful if freed).
    pub free_site: SiteHash,
    /// Allocation time of the occupant.
    pub alloc_time: AllocTime,
    /// Deallocation time (meaningful if freed).
    pub free_time: AllocTime,
    /// Whether the slot was canary-filled on free (Fig. 1's canary bitset).
    pub canaried: bool,
    /// Whether the slot ever held an object.
    pub ever_used: bool,
    /// Bytes the occupant requested.
    pub requested: u32,
    /// The slot's full contents (object-size bytes). Shared (`Arc`) so
    /// incremental capture can splice an unchanged slot from the base
    /// image by reference count instead of copying it — equality still
    /// compares contents.
    pub data: Arc<[u8]>,
}

/// One miniheap's snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiniHeapImage {
    /// The miniheap's identity (size class + ordinal).
    pub id: MiniHeapId,
    /// Base address of slot 0 in the source heap.
    pub base: Addr,
    /// Object size in bytes.
    pub object_size: u32,
    /// Allocation time at which the miniheap was created (`τ(M_j)`).
    pub created_at: AllocTime,
    /// All slots, in address order.
    pub slots: Vec<SlotImage>,
}

impl MiniHeapImage {
    /// Address of slot `idx` in the source heap.
    #[must_use]
    pub fn slot_addr(&self, idx: usize) -> Addr {
        self.base + (idx as u64) * u64::from(self.object_size)
    }

    /// End address (exclusive) of the slot area.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.slot_addr(self.slots.len())
    }
}

/// Position of a slot within a heap image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    /// Index into [`HeapImage::miniheaps`].
    pub miniheap: usize,
    /// Slot index within that miniheap.
    pub slot: usize,
}

/// The result of resolving a raw address against an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedAddr {
    /// The slot containing the address.
    pub slot: ObjectRef,
    /// The occupant's object id.
    pub object_id: ObjectId,
    /// Byte offset of the address within the slot.
    pub offset: u64,
    /// The slot's state.
    pub state: SlotState,
}

/// A corrupted canary found by scanning an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanaryCorruption {
    /// The corrupted slot.
    pub slot: ObjectRef,
    /// Its base address in the source heap.
    pub addr: Addr,
    /// Identity of the slot's most recent occupant.
    pub object_id: ObjectId,
    /// Offset of the first corrupted byte within the slot.
    pub first_bad: usize,
    /// Offset one past the last corrupted byte.
    pub end_bad: usize,
    /// Number of mismatching bytes in `[first_bad, end_bad)`.
    pub n_bad: usize,
}

/// Why a heap could not be captured: the allocator's metadata named memory
/// the arena does not back. Either is the signature of corrupted heap
/// metadata (or a caller unmapping behind the allocator's back), so capture
/// reports it as a diagnosable error instead of panicking in the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureError {
    /// A miniheap's base address had no mapped region behind it.
    UnmappedMiniHeap {
        /// Identity of the miniheap.
        id: MiniHeapId,
        /// Its recorded base address.
        base: Addr,
    },
    /// A slot extended past the end of the region backing its miniheap.
    TruncatedRegion {
        /// Identity of the miniheap.
        id: MiniHeapId,
        /// Its recorded base address.
        base: Addr,
        /// Index of the slot that did not fit.
        slot: usize,
        /// Bytes of backing the slot needed, measured from the region base.
        needed: usize,
        /// Bytes the region actually has.
        region_len: usize,
    },
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::UnmappedMiniHeap { id, base } => {
                write!(f, "miniheap {id:?} at {base:?} has no mapped region")
            }
            CaptureError::TruncatedRegion {
                id,
                base,
                slot,
                needed,
                region_len,
            } => write!(
                f,
                "miniheap {id:?} at {base:?}: slot {slot} needs {needed} bytes \
                 but the backing region has {region_len}"
            ),
        }
    }
}

impl Error for CaptureError {}

/// A complete snapshot of a DieFast heap.
///
/// # Example
///
/// ```
/// use xt_alloc::{Heap, SiteHash};
/// use xt_diefast::{DieFastConfig, DieFastHeap};
/// use xt_image::HeapImage;
///
/// # fn main() -> Result<(), xt_alloc::HeapError> {
/// let mut heap = DieFastHeap::new(DieFastConfig::with_seed(3));
/// let p = heap.malloc(32, SiteHash::from_raw(0xC0DE))?;
/// heap.arena_mut().write_u64(p, 99).unwrap();
/// let image = HeapImage::capture(&heap);
/// let obj = image.find_object(xt_alloc::ObjectId::from_raw(1)).unwrap();
/// assert_eq!(&image.slot(obj).data[..8], &99u64.to_le_bytes());
/// // Images round-trip through their binary format.
/// let bytes = image.to_bytes();
/// assert_eq!(HeapImage::from_bytes(&bytes).unwrap(), image);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct HeapImage {
    /// Allocation clock at capture ("the current allocation time").
    pub clock: AllocTime,
    /// The execution's random canary value.
    pub canary: u32,
    /// DieFast's canary fill probability `p`.
    pub fill_probability: f64,
    /// The heap multiplier `M`.
    pub multiplier: f64,
    /// Every miniheap, in (class, ordinal) order.
    pub miniheaps: Vec<MiniHeapImage>,
    index: HashMap<ObjectId, ObjectRef>,
    by_base: Vec<(u64, usize)>,
}

impl PartialEq for HeapImage {
    fn eq(&self, other: &Self) -> bool {
        self.clock == other.clock
            && self.canary == other.canary
            && self.fill_probability == other.fill_probability
            && self.multiplier == other.multiplier
            && self.miniheaps == other.miniheaps
    }
}

impl HeapImage {
    /// Captures the complete state of a DieFast heap.
    ///
    /// Clears the arena's dirty-page bits: the returned image is the
    /// baseline future [`HeapImage::capture_incremental`] calls diff
    /// against.
    ///
    /// # Panics
    ///
    /// Panics on malformed heap state (see [`HeapImage::try_capture`] for
    /// the fallible form).
    #[must_use]
    pub fn capture(heap: &DieFastHeap) -> Self {
        Self::try_capture(heap).unwrap_or_else(|e| panic!("heap capture failed: {e}"))
    }

    /// Fallible form of [`HeapImage::capture`].
    ///
    /// # Errors
    ///
    /// Returns a [`CaptureError`] if a miniheap's recorded geometry names
    /// memory the arena does not back — corrupted allocator metadata
    /// surfaces here as a diagnosable error, not a panic.
    pub fn try_capture(heap: &DieFastHeap) -> Result<Self, CaptureError> {
        Self::capture_impl(heap, None)
    }

    /// Captures the heap by re-reading only slots on pages stored to since
    /// `base` was captured, splicing every other slot's bytes from `base`
    /// by reference (no copy). Byte-identical to a full
    /// [`HeapImage::capture`] of the same heap — the property tests pin
    /// this — but on a sparse-touch heap it costs a fraction of one.
    ///
    /// Slot *metadata* is always re-read (allocator state changes without
    /// touching slot memory); only the data bytes are spliced, and only
    /// when the base describes the same miniheap (same id, base, geometry,
    /// creation time). A miniheap the base does not know is captured in
    /// full, so any base — even an empty one — is correct, just slower.
    ///
    /// Clears the arena's dirty-page bits: the returned image becomes the
    /// next baseline.
    ///
    /// # Panics
    ///
    /// Panics on malformed heap state (see
    /// [`HeapImage::try_capture_incremental`] for the fallible form).
    #[must_use]
    pub fn capture_incremental(base: &HeapImage, heap: &DieFastHeap) -> Self {
        Self::try_capture_incremental(base, heap)
            .unwrap_or_else(|e| panic!("incremental heap capture failed: {e}"))
    }

    /// Fallible form of [`HeapImage::capture_incremental`].
    ///
    /// # Errors
    ///
    /// Returns a [`CaptureError`] if a miniheap's recorded geometry names
    /// memory the arena does not back.
    pub fn try_capture_incremental(
        base: &HeapImage,
        heap: &DieFastHeap,
    ) -> Result<Self, CaptureError> {
        Self::capture_impl(heap, Some(base))
    }

    fn capture_impl(heap: &DieFastHeap, base: Option<&HeapImage>) -> Result<Self, CaptureError> {
        let inner = heap.inner();
        let arena = heap.arena();
        let base_by_id: HashMap<MiniHeapId, &MiniHeapImage> = base
            .map(|b| b.miniheaps.iter().map(|m| (m.id, m)).collect())
            .unwrap_or_default();
        let mut miniheaps = Vec::new();
        for mh in inner.miniheaps() {
            // One translation for the whole miniheap: snapshot its backing
            // region and slice per-slot data out of it, instead of paying a
            // bounds-checked simulated load per slot.
            let (region_base, region) =
                arena
                    .region_snapshot(mh.base())
                    .ok_or(CaptureError::UnmappedMiniHeap {
                        id: mh.id(),
                        base: mh.base(),
                    })?;
            // Splice from the base image only if it describes this exact
            // miniheap; geometry drift (different base, size, or creation
            // time) falls back to a full re-read of every slot.
            let base_mh = base_by_id.get(&mh.id()).copied().filter(|b| {
                b.base == mh.base()
                    && b.object_size as usize == mh.object_size()
                    && b.created_at == mh.created_at()
                    && b.slots.len() == mh.n_slots()
            });
            let dirty = base_mh.map(|_| {
                let (dirty_base, flags) = arena
                    .region_dirty_pages(mh.base())
                    .expect("snapshotted region is mapped");
                debug_assert_eq!(dirty_base, region_base);
                flags
            });
            let first = (mh.base() - region_base) as usize;
            let mut slots = Vec::with_capacity(mh.n_slots());
            for idx in 0..mh.n_slots() {
                let meta = mh.meta(idx);
                let off = first + idx * mh.object_size();
                let end = off + mh.object_size();
                // A slot whose pages are all clean since the base capture
                // has byte-identical contents: share the base's buffer.
                // Out-of-range pages count as dirty so a truncated region
                // falls through to the checked slice (and its error) below.
                let clean = match (&dirty, base_mh) {
                    (Some(flags), Some(_)) => (off / PAGE_SIZE..=(end - 1) / PAGE_SIZE)
                        .all(|p| flags.get(p).is_some_and(|&d| !d)),
                    _ => false,
                };
                let data = match (clean, base_mh) {
                    (true, Some(b)) => Arc::clone(&b.slots[idx].data),
                    _ => region
                        .get(off..end)
                        .ok_or(CaptureError::TruncatedRegion {
                            id: mh.id(),
                            base: mh.base(),
                            slot: idx,
                            needed: end,
                            region_len: region.len(),
                        })?
                        .into(),
                };
                slots.push(SlotImage {
                    state: meta.state,
                    object_id: meta.object_id,
                    alloc_site: meta.alloc_site,
                    free_site: meta.free_site,
                    alloc_time: meta.alloc_time,
                    free_time: meta.free_time,
                    canaried: meta.canaried,
                    ever_used: meta.ever_used,
                    requested: meta.requested,
                    data,
                });
            }
            miniheaps.push(MiniHeapImage {
                id: mh.id(),
                base: mh.base(),
                object_size: mh.object_size() as u32,
                created_at: mh.created_at(),
                slots,
            });
        }
        // Every capture — full or incremental — is the next diff baseline.
        arena.clear_dirty();
        Ok(Self::assemble(
            heap.clock(),
            heap.canary(),
            heap.fill_probability(),
            inner.config().multiplier,
            miniheaps,
        ))
    }

    fn assemble(
        clock: AllocTime,
        canary: u32,
        fill_probability: f64,
        multiplier: f64,
        miniheaps: Vec<MiniHeapImage>,
    ) -> Self {
        let mut index = HashMap::new();
        let mut by_base: Vec<(u64, usize)> = Vec::with_capacity(miniheaps.len());
        for (mh_idx, mh) in miniheaps.iter().enumerate() {
            by_base.push((mh.base.get(), mh_idx));
            for (slot_idx, slot) in mh.slots.iter().enumerate() {
                if !slot.ever_used {
                    continue;
                }
                let r = ObjectRef {
                    miniheap: mh_idx,
                    slot: slot_idx,
                };
                // An object id can label two slots after bad-object
                // isolation (the retired slot and the live replacement);
                // prefer the live one.
                match index.entry(slot.object_id) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(r);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let existing: ObjectRef = *e.get();
                        let existing_state =
                            miniheaps[existing.miniheap].slots[existing.slot].state;
                        if slot.state == SlotState::Live && existing_state != SlotState::Live {
                            e.insert(r);
                        }
                    }
                }
            }
        }
        by_base.sort_unstable();
        HeapImage {
            clock,
            canary,
            fill_probability,
            multiplier,
            miniheaps,
            index,
            by_base,
        }
    }

    /// Finds the slot currently associated with `id` (the live slot, if the
    /// object was ever re-placed by bad-object isolation).
    #[must_use]
    pub fn find_object(&self, id: ObjectId) -> Option<ObjectRef> {
        self.index.get(&id).copied()
    }

    /// The slot at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a slot of this image.
    #[must_use]
    pub fn slot(&self, r: ObjectRef) -> &SlotImage {
        &self.miniheaps[r.miniheap].slots[r.slot]
    }

    /// The miniheap containing `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a slot of this image.
    #[must_use]
    pub fn miniheap_of(&self, r: ObjectRef) -> &MiniHeapImage {
        &self.miniheaps[r.miniheap]
    }

    /// Base address of the slot at `r` in the source heap.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a slot of this image.
    #[must_use]
    pub fn slot_addr(&self, r: ObjectRef) -> Addr {
        self.miniheaps[r.miniheap].slot_addr(r.slot)
    }

    /// Resolves a raw address (e.g. a value found inside another object) to
    /// the slot containing it. This is the basis of the isolator's
    /// pointer-equivalence test: two values are "the same logical pointer"
    /// if they resolve to the same object id and offset in their respective
    /// images (§4.1).
    #[must_use]
    pub fn resolve_addr(&self, addr: Addr) -> Option<ResolvedAddr> {
        let raw = addr.get();
        let pos = self.by_base.partition_point(|&(base, _)| base <= raw);
        let (base, mh_idx) = *self.by_base.get(pos.checked_sub(1)?)?;
        let mh = &self.miniheaps[mh_idx];
        if addr >= mh.end() {
            return None;
        }
        let off = raw - base;
        let slot_idx = (off / u64::from(mh.object_size)) as usize;
        let slot = &mh.slots[slot_idx];
        Some(ResolvedAddr {
            slot: ObjectRef {
                miniheap: mh_idx,
                slot: slot_idx,
            },
            object_id: slot.object_id,
            offset: off % u64::from(mh.object_size),
            state: slot.state,
        })
    }

    /// Iterates over all live objects as `(ref, slot)` pairs.
    pub fn live_objects(&self) -> impl Iterator<Item = (ObjectRef, &SlotImage)> {
        self.slots().filter(|(_, s)| s.state == SlotState::Live)
    }

    /// Iterates over every slot of every miniheap.
    pub fn slots(&self) -> impl Iterator<Item = (ObjectRef, &SlotImage)> {
        self.miniheaps.iter().enumerate().flat_map(|(mi, mh)| {
            mh.slots.iter().enumerate().map(move |(si, s)| {
                (
                    ObjectRef {
                        miniheap: mi,
                        slot: si,
                    },
                    s,
                )
            })
        })
    }

    /// Total number of object slots on the heap (`H` in the theorems).
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.miniheaps.iter().map(|m| m.slots.len()).sum()
    }

    /// Scans every canaried slot for bytes that differ from the canary
    /// pattern — the corruption evidence both isolation families start
    /// from. Bad slots are included: they were retired *because* their
    /// canary was corrupt.
    #[must_use]
    pub fn scan_canary_corruptions(&self) -> Vec<CanaryCorruption> {
        let pattern = self.canary.to_le_bytes();
        let mut out = Vec::new();
        for (r, slot) in self.slots() {
            if !slot.canaried || slot.state == SlotState::Live {
                continue;
            }
            let mut first_bad = None;
            let mut end_bad = 0;
            let mut n_bad = 0;
            // Word-at-a-time: whole intact words (the common case) are
            // skipped with one comparison; only corrupt words get a
            // per-byte look.
            let whole = slot.data.len() - slot.data.len() % 4;
            for (w, chunk) in slot.data[..whole].chunks_exact(4).enumerate() {
                if chunk != &pattern[..] {
                    for (j, (&b, &p)) in chunk.iter().zip(&pattern).enumerate() {
                        if b != p {
                            let i = w * 4 + j;
                            first_bad.get_or_insert(i);
                            end_bad = i + 1;
                            n_bad += 1;
                        }
                    }
                }
            }
            for (j, &b) in slot.data[whole..].iter().enumerate() {
                if b != pattern[j] {
                    let i = whole + j;
                    first_bad.get_or_insert(i);
                    end_bad = i + 1;
                    n_bad += 1;
                }
            }
            if let Some(first_bad) = first_bad {
                out.push(CanaryCorruption {
                    slot: r,
                    addr: self.slot_addr(r),
                    object_id: slot.object_id,
                    first_bad,
                    end_bad,
                    n_bad,
                });
            }
        }
        out
    }

    /// Encodes the image into its binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(MAGIC);
        w.u32(VERSION);
        w.u64(self.clock.raw());
        w.u32(self.canary);
        w.f64(self.fill_probability);
        w.f64(self.multiplier);
        w.u32(self.miniheaps.len() as u32);
        for mh in &self.miniheaps {
            w.u32(mh.id.class);
            w.u32(mh.id.index);
            w.u64(mh.base.get());
            w.u32(mh.object_size);
            w.u64(mh.created_at.raw());
            w.u32(mh.slots.len() as u32);
            for s in &mh.slots {
                w.u8(match s.state {
                    SlotState::Free => 0,
                    SlotState::Live => 1,
                    SlotState::Bad => 2,
                });
                w.u8(u8::from(s.canaried));
                w.u8(u8::from(s.ever_used));
                w.u64(s.object_id.raw());
                w.u32(s.alloc_site.raw());
                w.u32(s.free_site.raw());
                w.u64(s.alloc_time.raw());
                w.u64(s.free_time.raw());
                w.u32(s.requested);
                w.bytes(&s.data);
            }
        }
        w.into_bytes()
    }

    /// Decodes an image from its binary format.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageDecodeError`] for truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ImageDecodeError> {
        let mut r = ByteReader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(ImageDecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ImageDecodeError::BadVersion { found: version });
        }
        let clock = AllocTime::from_raw(r.u64()?);
        let canary = r.u32()?;
        let fill_probability = r.f64()?;
        let multiplier = r.f64()?;
        let n_miniheaps = r.u32()? as usize;
        let mut miniheaps = Vec::with_capacity(n_miniheaps);
        for _ in 0..n_miniheaps {
            let class = r.u32()?;
            let index = r.u32()?;
            let base = Addr::new(r.u64()?);
            let object_size = r.u32()?;
            if object_size == 0 {
                return Err(ImageDecodeError::BadField {
                    field: "object_size",
                });
            }
            let created_at = AllocTime::from_raw(r.u64()?);
            let n_slots = r.u32()? as usize;
            let mut slots = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                let state = match r.u8()? {
                    0 => SlotState::Free,
                    1 => SlotState::Live,
                    2 => SlotState::Bad,
                    _ => return Err(ImageDecodeError::BadField { field: "state" }),
                };
                let canaried = r.u8()? != 0;
                let ever_used = r.u8()? != 0;
                let object_id = ObjectId::from_raw(r.u64()?);
                let alloc_site = SiteHash::from_raw(r.u32()?);
                let free_site = SiteHash::from_raw(r.u32()?);
                let alloc_time = AllocTime::from_raw(r.u64()?);
                let free_time = AllocTime::from_raw(r.u64()?);
                let requested = r.u32()?;
                let data: Arc<[u8]> = r.take(object_size as usize)?.into();
                slots.push(SlotImage {
                    state,
                    object_id,
                    alloc_site,
                    free_site,
                    alloc_time,
                    free_time,
                    canaried,
                    ever_used,
                    requested,
                    data,
                });
            }
            miniheaps.push(MiniHeapImage {
                id: MiniHeapId::new(class, index),
                base,
                object_size,
                created_at,
                slots,
            });
        }
        Ok(Self::assemble(
            clock,
            canary,
            fill_probability,
            multiplier,
            miniheaps,
        ))
    }

    /// Writes the image to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Reads an image previously written by [`HeapImage::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; decode failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_diefast::DieFastConfig;

    const SITE: SiteHash = SiteHash::from_raw(0x717E);

    fn heap_with_activity(seed: u64) -> DieFastHeap {
        let mut h = DieFastHeap::new(DieFastConfig::with_seed(seed));
        let mut live = Vec::new();
        for i in 0..40u64 {
            let p = h.malloc(16 + (i % 4) as usize * 24, SITE).unwrap();
            h.arena_mut().write_u64(p, i).unwrap();
            live.push(p);
        }
        for p in live.iter().step_by(3) {
            h.free(*p, SiteHash::from_raw(0xF2EE));
        }
        h
    }

    #[test]
    fn capture_indexes_all_objects() {
        let h = heap_with_activity(1);
        let img = HeapImage::capture(&h);
        for id in 1..=40u64 {
            let r = img.find_object(ObjectId::from_raw(id)).unwrap();
            assert_eq!(img.slot(r).object_id, ObjectId::from_raw(id));
        }
        assert_eq!(img.clock, AllocTime::from_raw(40));
        assert_eq!(img.canary, h.canary());
    }

    #[test]
    fn live_object_data_is_captured() {
        let h = heap_with_activity(2);
        let img = HeapImage::capture(&h);
        // Object #2 (index 1) was never freed: its first word is 1.
        let r = img.find_object(ObjectId::from_raw(2)).unwrap();
        assert_eq!(img.slot(r).state, SlotState::Live);
        assert_eq!(&img.slot(r).data[..8], &1u64.to_le_bytes());
    }

    #[test]
    fn freed_slots_record_canary_state() {
        let h = heap_with_activity(3);
        let img = HeapImage::capture(&h);
        // Object #1 was freed (step_by(3) starts at index 0) and p=1.0, so
        // its slot must be canaried and intact.
        let r = img.find_object(ObjectId::from_raw(1)).unwrap();
        let slot = img.slot(r);
        assert_eq!(slot.state, SlotState::Free);
        assert!(slot.canaried);
        assert!(img.scan_canary_corruptions().is_empty());
    }

    #[test]
    fn resolve_addr_finds_interior_pointers() {
        let h = heap_with_activity(4);
        let img = HeapImage::capture(&h);
        let r = img.find_object(ObjectId::from_raw(5)).unwrap();
        let base = img.slot_addr(r);
        let hit = img.resolve_addr(base + 7).unwrap();
        assert_eq!(hit.slot, r);
        assert_eq!(hit.offset, 7);
        assert_eq!(hit.object_id, ObjectId::from_raw(5));
        // An address in no miniheap resolves to none.
        assert_eq!(img.resolve_addr(Addr::new(0x10)), None);
    }

    #[test]
    fn resolve_addr_rejects_gap_past_miniheap() {
        let h = heap_with_activity(5);
        let img = HeapImage::capture(&h);
        for mh in &img.miniheaps {
            assert_eq!(img.resolve_addr(mh.end()), None);
            assert!(img.resolve_addr(mh.base).is_some());
        }
    }

    #[test]
    fn corruption_scan_reports_extent() {
        let mut h = heap_with_activity(6);
        // Corrupt 5 bytes of a canaried freed slot.
        let img0 = HeapImage::capture(&h);
        let r = img0.find_object(ObjectId::from_raw(1)).unwrap();
        let addr = img0.slot_addr(r);
        h.arena_mut().write_bytes(addr + 2, b"OOPS!").unwrap();
        let img = HeapImage::capture(&h);
        let corruptions = img.scan_canary_corruptions();
        assert_eq!(corruptions.len(), 1);
        let c = corruptions[0];
        assert_eq!(c.addr, addr);
        assert_eq!(c.first_bad, 2);
        assert_eq!(c.end_bad, 7);
        assert!(c.n_bad >= 4, "at least 4 of 5 bytes differ from canary");
        assert_eq!(c.object_id, ObjectId::from_raw(1));
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let h = heap_with_activity(7);
        let img = HeapImage::capture(&h);
        let decoded = HeapImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(decoded, img);
        assert_eq!(
            decoded.find_object(ObjectId::from_raw(9)),
            img.find_object(ObjectId::from_raw(9)),
            "index rebuilt identically"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            HeapImage::from_bytes(&[0; 8]).unwrap_err(),
            ImageDecodeError::BadMagic
        );
        let mut good = HeapImage::capture(&heap_with_activity(8)).to_bytes();
        good.truncate(good.len() / 2);
        assert!(matches!(
            HeapImage::from_bytes(&good).unwrap_err(),
            ImageDecodeError::UnexpectedEof { .. }
        ));
        // Corrupt the version field.
        let mut bad_version = HeapImage::capture(&heap_with_activity(9)).to_bytes();
        bad_version[4] = 0xFF;
        assert!(matches!(
            HeapImage::from_bytes(&bad_version).unwrap_err(),
            ImageDecodeError::BadVersion { .. }
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("xt_image_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.ximg");
        let img = HeapImage::capture(&heap_with_activity(10));
        img.save(&path).unwrap();
        assert_eq!(HeapImage::load(&path).unwrap(), img);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_capture_equals_full_and_shares_clean_slots() {
        let mut h = heap_with_activity(20);
        let base = HeapImage::capture(&h); // clears dirty bits
                                           // Touch exactly one live object's memory.
        let r = base.find_object(ObjectId::from_raw(2)).unwrap();
        let addr = base.slot_addr(r);
        h.arena_mut().write_u64(addr, 0xFEED).unwrap();
        let inc = HeapImage::capture_incremental(&base, &h);
        let full = HeapImage::capture(&h);
        assert_eq!(inc, full);
        // The touched slot was re-read...
        assert_eq!(&inc.slot(r).data[..8], &0xFEEDu64.to_le_bytes());
        // ...while a slot on an untouched page shares the base's buffer
        // (same allocation, not a copy).
        let shared = inc
            .slots()
            .zip(base.slots())
            .filter(|((ri, si), (rb, sb))| ri == rb && Arc::ptr_eq(&si.data, &sb.data))
            .count();
        assert!(
            shared > inc.total_slots() / 2,
            "sparse touch must splice most slots by reference ({shared} of {})",
            inc.total_slots()
        );
    }

    #[test]
    fn incremental_capture_resets_its_baseline() {
        let mut h = heap_with_activity(21);
        let base = HeapImage::capture(&h);
        let r = base.find_object(ObjectId::from_raw(3)).unwrap();
        let addr = base.slot_addr(r);
        h.arena_mut().write_u64(addr, 1).unwrap();
        let second = HeapImage::capture_incremental(&base, &h);
        // The second image is the new baseline: with no stores since, a
        // third incremental capture matches a full one and splices all.
        let third = HeapImage::capture_incremental(&second, &h);
        assert_eq!(third, HeapImage::capture(&h));
        assert_eq!(&third.slot(r).data[..8], &1u64.to_le_bytes());
    }

    #[test]
    fn incremental_capture_against_foreign_base_is_a_full_capture() {
        let mut h = heap_with_activity(22);
        // A base from a *different* heap shares no miniheap geometry.
        let foreign = HeapImage::capture(&heap_with_activity(23));
        let p = h.malloc(64, SITE).unwrap();
        h.arena_mut().write_u64(p, 42).unwrap();
        let inc = HeapImage::capture_incremental(&foreign, &h);
        assert_eq!(inc, HeapImage::capture(&h));
    }

    #[test]
    fn try_capture_reports_unmapped_miniheap() {
        let mut h = heap_with_activity(24);
        let victim = h.inner().miniheaps().next().unwrap();
        let (id, base) = (victim.id(), victim.base());
        h.arena_mut().unmap(base).unwrap();
        assert_eq!(
            HeapImage::try_capture(&h).unwrap_err(),
            CaptureError::UnmappedMiniHeap { id, base }
        );
        // The incremental path reports the same malformation.
        let empty_base = HeapImage::capture(&heap_with_activity(25));
        assert_eq!(
            HeapImage::try_capture_incremental(&empty_base, &h).unwrap_err(),
            CaptureError::UnmappedMiniHeap { id, base }
        );
    }

    #[test]
    fn try_capture_reports_truncated_region() {
        let mut h = DieFastHeap::new(DieFastConfig::with_seed(26));
        // A 1 KiB class miniheap spans multiple pages.
        let p = h.malloc(1000, SITE).unwrap();
        let _ = p;
        let mh = h
            .inner()
            .miniheaps()
            .find(|m| m.object_size() == 1024)
            .unwrap();
        let (id, base) = (mh.id(), mh.base());
        // Remap the miniheap's memory one page short of its slot area.
        h.arena_mut().unmap(base).unwrap();
        h.arena_mut().map_at(base, xt_arena::PAGE_SIZE).unwrap();
        let err = HeapImage::try_capture(&h).unwrap_err();
        match err {
            CaptureError::TruncatedRegion {
                id: got_id,
                base: got_base,
                region_len,
                ..
            } => {
                assert_eq!(got_id, id);
                assert_eq!(got_base, base);
                assert_eq!(region_len, xt_arena::PAGE_SIZE);
            }
            other => panic!("expected TruncatedRegion, got {other:?}"),
        }
        assert!(err.to_string().contains("bytes"));
    }

    #[test]
    fn total_slots_counts_capacity() {
        let h = heap_with_activity(11);
        let img = HeapImage::capture(&h);
        assert_eq!(img.total_slots(), h.inner().total_capacity());
        assert!(img.total_slots() >= 80, "M=2 over-provisioning");
    }
}
