//! Heap images (paper §3.4): the snapshot files Exterminator's error
//! isolator consumes.
//!
//! "If Exterminator discovers an error when executing a program, or if
//! DieFast signals an error, Exterminator forces the process to emit a heap
//! image file. This file is akin to a core dump, but contains less data
//! (e.g., no code), and is organized to simplify processing."
//!
//! A [`HeapImage`] captures, for every slot of every miniheap: its contents,
//! its life-cycle state, and the out-of-band metadata of Fig. 1 (object id,
//! allocation/deallocation sites, deallocation time, canary bit), plus the
//! global allocation clock and the execution's canary value. Images support:
//!
//! * object lookup by id — how the isolator matches "the same logical
//!   object" across independently randomized heaps;
//! * address resolution — how values stored in heap memory are classified
//!   as pointers to the same logical target across heaps;
//! * canary-corruption scanning — the first phase of both isolation
//!   algorithm families;
//! * a compact binary serialization (images replace core dumps, so they
//!   must be writable to disk and shippable).
//!
//! # Incremental capture
//!
//! Replicated execution captures a heap image per replica per input, which
//! makes capture the heaviest fixed cost the machinery pays. Against a
//! previous image of the *same* heap, [`HeapImage::capture_incremental`]
//! re-reads only slots on pages the arena's dirty-page bits say were
//! stored to since that base was taken, and splices every other slot's
//! bytes from the base by `Arc` reference — no copy, byte-identical result
//! (property-tested against full capture).
//!
//! The protocol between the two layers:
//!
//! * the **arena** sets a page's dirty bit on every successful store into
//!   it (bulk fills included) and on mapping it; `Arena::reset` and
//!   unmapping clear bits, so reused replica arenas never carry stale
//!   dirty state (see `xt-arena`'s crate docs for the full set/clear
//!   rules, TLB non-interaction, and spare-leaf recycling);
//! * **every capture** — [`HeapImage::capture`] and
//!   [`HeapImage::capture_incremental`] alike — clears the dirty bits on
//!   its way out, making the image it returns the baseline the next
//!   incremental capture diffs against;
//! * slot *metadata* is never spliced: allocator state can change without
//!   touching slot memory, so it is re-read from the allocator on every
//!   capture. Only the data bytes ride the dirty bits.
//!
//! Malformed heap state (metadata naming memory the arena does not back)
//! surfaces as a [`CaptureError`] through the `try_` variants instead of a
//! panic in the capture hot path.

mod format;
mod image;

pub use format::{ByteReader, ByteWriter, ImageDecodeError};
pub use image::{
    CanaryCorruption, CaptureError, HeapImage, MiniHeapImage, ObjectRef, ResolvedAddr, SlotImage,
};
