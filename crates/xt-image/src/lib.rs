//! Heap images (paper §3.4): the snapshot files Exterminator's error
//! isolator consumes.
//!
//! "If Exterminator discovers an error when executing a program, or if
//! DieFast signals an error, Exterminator forces the process to emit a heap
//! image file. This file is akin to a core dump, but contains less data
//! (e.g., no code), and is organized to simplify processing."
//!
//! A [`HeapImage`] captures, for every slot of every miniheap: its contents,
//! its life-cycle state, and the out-of-band metadata of Fig. 1 (object id,
//! allocation/deallocation sites, deallocation time, canary bit), plus the
//! global allocation clock and the execution's canary value. Images support:
//!
//! * object lookup by id — how the isolator matches "the same logical
//!   object" across independently randomized heaps;
//! * address resolution — how values stored in heap memory are classified
//!   as pointers to the same logical target across heaps;
//! * canary-corruption scanning — the first phase of both isolation
//!   algorithm families;
//! * a compact binary serialization (images replace core dumps, so they
//!   must be writable to disk and shippable).

mod format;
mod image;

pub use format::{ByteReader, ByteWriter, ImageDecodeError};
pub use image::{CanaryCorruption, HeapImage, MiniHeapImage, ObjectRef, ResolvedAddr, SlotImage};
