//! Property tests for heap images: capture fidelity and serialization.

use proptest::prelude::*;

use xt_alloc::{Heap, ObjectId, Rng, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_image::HeapImage;

/// Applies `steps` random malloc/free/store steps to `heap`.
fn churn(heap: &mut DieFastHeap, rng: &mut Rng, live: &mut Vec<xt_arena::Addr>, steps: usize) {
    for i in 0..steps {
        if !live.is_empty() && rng.chance(0.4) {
            let victim: xt_arena::Addr = live.swap_remove(rng.below_usize(live.len()));
            heap.free(victim, SiteHash::from_raw(0xF));
        } else {
            let size = 16 + rng.below_usize(200);
            let p = heap
                .malloc(size, SiteHash::from_raw(i as u32 % 13))
                .unwrap();
            heap.arena_mut().write_u64(p, i as u64).unwrap();
            live.push(p);
        }
    }
}

/// Builds a heap with a random (seed-driven) churn history.
fn churned_heap(seed: u64, steps: usize, fill_probability: f64) -> DieFastHeap {
    let mut heap =
        DieFastHeap::new(DieFastConfig::with_seed(seed).fill_probability(fill_probability));
    let mut rng = Rng::new(seed ^ 0x5EED);
    let mut live = Vec::new();
    churn(&mut heap, &mut rng, &mut live, steps);
    heap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary encoding round-trips arbitrary heap states exactly,
    /// including the rebuilt object index.
    #[test]
    fn binary_round_trip(seed in 0u64..5000, steps in 10usize..150, p in 0.0f64..=1.0) {
        let heap = churned_heap(seed, steps, p);
        let image = HeapImage::capture(&heap);
        let decoded = HeapImage::from_bytes(&image.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &image);
        for id in 1..=steps as u64 {
            prop_assert_eq!(decoded.find_object(ObjectId::from_raw(id)), image.find_object(ObjectId::from_raw(id)));
        }
    }

    /// Every *live* object is findable by id (freed ids may vanish when
    /// their slot is recycled), and the index is consistent for every slot
    /// that ever held an object.
    #[test]
    fn capture_indexes_every_live_object(seed in 0u64..5000, steps in 10usize..120) {
        let heap = churned_heap(seed, steps, 1.0);
        let image = HeapImage::capture(&heap);
        for (r, slot) in image.live_objects() {
            prop_assert_eq!(image.find_object(slot.object_id), Some(r));
        }
        for (_, slot) in image.slots() {
            if slot.ever_used {
                let found = image.find_object(slot.object_id).unwrap();
                prop_assert_eq!(image.slot(found).object_id, slot.object_id);
            }
        }
        prop_assert!(image.clock.raw() >= 1);
        let _ = ObjectId::from_raw(1);
    }

    /// Address resolution agrees with slot geometry for every slot.
    #[test]
    fn resolution_matches_geometry(seed in 0u64..5000, steps in 10usize..100) {
        let heap = churned_heap(seed, steps, 1.0);
        let image = HeapImage::capture(&heap);
        for (r, slot) in image.slots() {
            let base = image.slot_addr(r);
            let hit = image.resolve_addr(base).unwrap();
            prop_assert_eq!(hit.slot, r);
            prop_assert_eq!(hit.offset, 0);
            prop_assert_eq!(hit.object_id, slot.object_id);
        }
    }

    /// A clean heap never shows canary corruption, at any fill rate.
    #[test]
    fn clean_heaps_scan_clean(seed in 0u64..5000, steps in 10usize..150, p in 0.0f64..=1.0) {
        let heap = churned_heap(seed, steps, p);
        let image = HeapImage::capture(&heap);
        prop_assert!(image.scan_canary_corruptions().is_empty());
    }

    /// An incremental capture against any earlier image of the same heap is
    /// byte-identical to a full capture, no matter how much churn happened
    /// in between — the equality that makes dirty-page splicing safe to use
    /// anywhere a full capture was used.
    #[test]
    fn incremental_capture_is_byte_identical_to_full(
        seed in 0u64..5000,
        steps in 5usize..80,
        extra in 0usize..80,
        p in 0.0f64..=1.0,
    ) {
        let mut heap = DieFastHeap::new(DieFastConfig::with_seed(seed).fill_probability(p));
        let mut rng = Rng::new(seed ^ 0x5EED);
        let mut live = Vec::new();
        churn(&mut heap, &mut rng, &mut live, steps);
        let base = HeapImage::capture(&heap); // clears dirty bits → baseline
        churn(&mut heap, &mut rng, &mut live, extra);
        // Incremental before full: every capture clears the dirty bits it
        // consumed, so the full capture here must come second.
        let inc = HeapImage::capture_incremental(&base, &heap);
        let full = HeapImage::capture(&heap);
        prop_assert_eq!(&inc, &full);
        // Captures leave no dirty pages behind (they are the new baseline).
        prop_assert!(heap.arena().dirty_pages().is_empty());
        // Spliced (shared) slot buffers serialize by content like any other.
        prop_assert_eq!(&HeapImage::from_bytes(&inc.to_bytes()).unwrap(), &inc);
    }

    /// Any single corrupted byte in a canaried slot is found by the scan
    /// with its exact location.
    #[test]
    fn scan_finds_planted_corruption(seed in 0u64..5000, offset in 0usize..16, flip in 1u8..=255) {
        let mut heap = DieFastHeap::new(DieFastConfig::with_seed(seed));
        let p = heap.malloc(16, SiteHash::from_raw(1)).unwrap();
        heap.free(p, SiteHash::from_raw(2));
        let original = heap.arena().read_u8(p + offset as u64).unwrap();
        heap.arena_mut().write_u8(p + offset as u64, original ^ flip).unwrap();
        let image = HeapImage::capture(&heap);
        let corruptions = image.scan_canary_corruptions();
        prop_assert_eq!(corruptions.len(), 1);
        prop_assert_eq!(corruptions[0].first_bad, offset);
        prop_assert_eq!(corruptions[0].n_bad, 1);
    }
}
