//! Corruption fuzzing for the observability frame decoders — the same
//! regime `xt-fleet/tests/fuzz_decode.rs` applies to reports, frames,
//! and snapshots, here aimed at the two message decoders this crate
//! added on the trust boundary: [`Msg::Health`] and [`Msg::Metrics`].
//! Valid encodings are generated, truncated at every length, and
//! byte-mutated at seeded positions. Decoders must **never panic**, and
//! every rejection must carry a usable diagnostic: `BadMagic` by value,
//! or a byte offset within the buffer.

use proptest::prelude::*;

use xt_fleet::{Frame, WireError};
use xt_net::proto::{Msg, WireHealth};
use xt_obs::{HistogramSnapshot, RegistrySnapshot, HISTOGRAM_BUCKETS};

/// The offset a `WireError` points at, if the variant carries one.
fn error_offset(e: &WireError) -> Option<usize> {
    match e {
        WireError::BadMagic(_) | WireError::RateLimited { .. } => None,
        WireError::Truncated { at }
        | WireError::BadBool { at, .. }
        | WireError::BadProbability { at, .. }
        | WireError::Oversized { at, .. }
        | WireError::BadSiteCount { at, .. }
        | WireError::BadGrid { at, .. }
        | WireError::BadKind { at, .. }
        | WireError::BadUtf8 { at }
        | WireError::Trailing { at, .. } => Some(*at),
    }
}

fn assert_diagnosable(err: &WireError, len: usize) -> Result<(), TestCaseError> {
    if let Some(at) = error_offset(err) {
        prop_assert!(
            at <= len,
            "error offset {at} beyond the {len}-byte buffer: {err:?}"
        );
    }
    Ok(())
}

/// SplitMix64, for seeded corruption positions.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The full decode path a connection runs: frame layer, then message.
fn decode_msg(bytes: &[u8]) -> Result<Msg, WireError> {
    Msg::from_frame(&Frame::decode(bytes)?)
}

fn health_strategy() -> impl Strategy<Value = Msg> {
    (
        (any::<bool>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |((healthy, epoch, uptime_ms), (recoveries, durable, connections))| {
                Msg::Health(WireHealth {
                    healthy,
                    epoch,
                    uptime_ms,
                    recoveries,
                    durable,
                    connections,
                })
            },
        )
}

/// Instrument names in the registry's style: `layer/stage`, lowercase.
fn name_strategy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(0u8..27, 1..12),
        proptest::collection::vec(0u8..27, 0..8),
    )
        .prop_map(|(a, b)| {
            let part = |v: &[u8]| {
                v.iter()
                    .map(|&c| if c == 26 { '_' } else { (b'a' + c) as char })
                    .collect::<String>()
            };
            format!("{}/{}", part(&a), part(&b))
        })
}

fn histogram_strategy() -> impl Strategy<Value = HistogramSnapshot> {
    (
        proptest::collection::vec(any::<u64>(), HISTOGRAM_BUCKETS),
        any::<u64>(),
    )
        .prop_map(|(buckets, max)| HistogramSnapshot {
            buckets: buckets.try_into().expect("exact bucket count"),
            max,
        })
}

fn metrics_strategy() -> impl Strategy<Value = Msg> {
    (
        proptest::collection::vec((name_strategy(), any::<u64>()), 0..6),
        proptest::collection::vec((name_strategy(), any::<i64>()), 0..4),
        proptest::collection::vec((name_strategy(), histogram_strategy()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| {
            Msg::Metrics(RegistrySnapshot {
                counters,
                gauges,
                histograms,
            })
        })
}

fn observability_msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![health_strategy(), metrics_strategy()]
}

/// The server-pushed epoch frame: both the real shape (a valid epoch
/// rendering, which is what `EpochPush` always carries in practice) and
/// arbitrary text (the codec carries the payload opaquely; parsing it
/// is the client's separate, advisory concern).
fn epoch_push_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), 0u32..4096).prop_map(|(number, pad)| Msg::EpochPush {
            epoch: format!(
                "# epoch {number}\n# exterminator runtime patches v1\npad 512ddc49 {pad}\n"
            ),
        }),
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(|raw| Msg::EpochPush {
            epoch: String::from_utf8_lossy(&raw).into_owned(),
        }),
    ]
}

/// Truncation points: exhaustive for small buffers, seeded sampling for
/// large ones (a metrics frame with histograms runs to kilobytes).
fn truncation_points(len: usize, seed: u64) -> Vec<usize> {
    if len <= 256 {
        return (0..len).collect();
    }
    let mut points: Vec<usize> = (0..128).collect();
    let mut state = seed;
    points.extend((0..96).map(|_| 128 + (splitmix(&mut state) as usize) % (len - 128)));
    points.push(len - 1);
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn observability_messages_round_trip(msg in observability_msg_strategy()) {
        let bytes = msg.to_frame().encode();
        prop_assert_eq!(decode_msg(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_observability_frames_always_reject_with_offsets(
        msg in observability_msg_strategy(),
        seed in any::<u64>(),
    ) {
        let bytes = msg.to_frame().encode();
        for len in truncation_points(bytes.len(), seed) {
            let err = decode_msg(&bytes[..len])
                .expect_err("a strict prefix decoded as a whole message");
            assert_diagnosable(&err, len)?;
        }
    }

    /// Byte mutations: never panic, and rejections stay diagnosable.
    /// (Acceptance is legitimate — most positions hold counter/bucket
    /// values where any byte is a different valid value.)
    #[test]
    fn mutated_observability_frames_never_panic(
        msg in observability_msg_strategy(),
        seed in any::<u64>(),
    ) {
        let bytes = msg.to_frame().encode();
        let mut state = seed;
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let pos = (splitmix(&mut state) as usize) % corrupt.len();
            let delta = (splitmix(&mut state) % 255) as u8 + 1;
            corrupt[pos] ^= delta;
            if let Err(err) = decode_msg(&corrupt) {
                assert_diagnosable(&err, corrupt.len())?;
            }
        }
    }

    #[test]
    fn epoch_push_round_trips(msg in epoch_push_strategy()) {
        let bytes = msg.to_frame().encode();
        prop_assert_eq!(decode_msg(&bytes).unwrap(), msg);
    }

    /// Every strict prefix of an `EpochPush` frame rejects with a
    /// usable diagnostic — this is the frame an event-loop connection
    /// holds *partially buffered* between readiness events, so the
    /// incremental parser must classify prefixes exactly like the
    /// whole-buffer decoder: a prefix is `Ok(None)` (need more), never
    /// a panic, and the only errors are offset-bearing.
    #[test]
    fn truncated_epoch_push_rejects_with_offsets(
        msg in epoch_push_strategy(),
        seed in any::<u64>(),
    ) {
        let bytes = msg.to_frame().encode();
        for len in truncation_points(bytes.len(), seed) {
            let err = decode_msg(&bytes[..len])
                .expect_err("a strict prefix decoded as a whole message");
            assert_diagnosable(&err, len)?;
            // The incremental parser the server feeds partial reads
            // through must agree: a strict prefix is "need more bytes",
            // not an error and not a frame.
            prop_assert!(matches!(Frame::parse_prefix(&bytes[..len]), Ok(None)));
        }
        // And the full buffer yields the frame plus its exact length.
        let (frame, used) = Frame::parse_prefix(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(Msg::from_frame(&frame).unwrap(), msg);
    }

    /// Mutated `EpochPush` frames never panic either decoder; every
    /// rejection stays diagnosable. (UTF-8 payload corruption surfaces
    /// as `BadUtf8` with an offset; header corruption as magic/kind
    /// errors.)
    #[test]
    fn mutated_epoch_push_never_panics(
        msg in epoch_push_strategy(),
        seed in any::<u64>(),
    ) {
        let bytes = msg.to_frame().encode();
        let mut state = seed;
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let pos = (splitmix(&mut state) as usize) % corrupt.len();
            let delta = (splitmix(&mut state) % 255) as u8 + 1;
            corrupt[pos] ^= delta;
            if let Err(err) = decode_msg(&corrupt) {
                assert_diagnosable(&err, corrupt.len())?;
            }
            // The incremental parser sees the same hostile bytes off the
            // socket; it must never panic, and whatever frame it cuts
            // must match the whole-buffer decoder's on the same bytes.
            match Frame::parse_prefix(&corrupt) {
                Ok(Some((frame, used))) => {
                    prop_assert!(used <= corrupt.len());
                    prop_assert_eq!(
                        &frame,
                        &Frame::decode(&corrupt[..used]).expect("decoders agree")
                    );
                    if used < corrupt.len() {
                        // A shrunk length field cut a shorter frame; the
                        // whole-buffer decoder rejects the trailing bytes.
                        prop_assert!(Frame::decode(&corrupt).is_err());
                    }
                }
                Ok(None) => {
                    // A corrupted length field can claim more bytes than
                    // present; the blocking decoder calls that truncated.
                    prop_assert!(Frame::decode(&corrupt).is_err());
                }
                Err(err) => assert_diagnosable(&err, corrupt.len())?,
            }
        }
    }
}
