//! End-to-end pins for the network front door.
//!
//! The load-bearing claims, each tested over real localhost sockets:
//!
//! 1. **Determinism survives the wire.** The same input batch submitted
//!    (a) in-process through a serial [`ReplicaPool`] and (b) by several
//!    concurrent [`NetClient`]s yields byte-identical outcome digests
//!    once sorted by the front-end's global sequence — the socket layer,
//!    like the queue layer before it, decides only *arrival order*.
//! 2. **Streaming results stream.** A remote client receives the quorum
//!    verdict while a deliberately slowed replica is still executing.
//! 3. **The fleet loop closes over the socket.** A remote client's
//!    failure evidence (compact `XTR1` reports over the same connection)
//!    mints epochs that heal the server's own pools, and the client
//!    pulls those epochs back.
//! 4. **Hostile bytes are contained.** Malformed frames and hostile
//!    nested reports are rejected with offset-bearing errors, counted,
//!    and never take the server down.
//! 5. **The server is observable over its own wire.** A client pulls a
//!    health frame and the merged metrics snapshot — per-stage latency
//!    histograms with nonzero counts from every layer — and a flooding
//!    client is rate-limited at ingest admission while a well-behaved
//!    client on the same server is unaffected.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use exterminator::pool::{PoolConfig, ReplicaPool, Straggler};
use exterminator::summarized_run;
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_fleet::frame::{Frame, FRAME_MAGIC};
use xt_fleet::{wal, DurabilityConfig, FleetConfig, MemStorage, RunReport};
use xt_net::{NetClient, NetConfig, NetDurability, NetError, NetFrontend, RetryPolicy};
use xt_obs::TokenBucketConfig;
use xt_patch::PatchTable;
use xt_workloads::{multi_client_sessions, EspressoLike, SquidLike, Workload, WorkloadInput};

/// Pool shape shared by servers and serial references: determinism pins
/// must exclude auto-patching (patch visibility is completion-order
/// dependent for a single pool too — same exclusion as
/// `crates/core/tests/frontend.rs`).
fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 3,
        auto_patch: false,
        ..PoolConfig::default()
    }
}

fn net_config(pools: usize) -> NetConfig {
    NetConfig {
        frontend: exterminator::frontend::FrontendConfig {
            pools,
            pool: pool_config(),
            queue_capacity: 3,
            share_isolated: false,
            ..exterminator::frontend::FrontendConfig::default()
        },
        ..NetConfig::default()
    }
}

/// In-process serial reference: one pool, seed index = submission index —
/// exactly what the front-end's global sequence reproduces, local or
/// remote.
fn serial_digests(
    workload: &(dyn Workload + Sync),
    inputs: &[WorkloadInput],
    fault: Option<FaultSpec>,
) -> Vec<u128> {
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(scope, workload, pool_config(), PatchTable::new());
        let outcomes = pool.run_batch(inputs, fault);
        pool.shutdown();
        outcomes
            .iter()
            .map(exterminator::pool::PoolOutcome::deterministic_digest)
            .collect()
    })
}

/// The acceptance pin: 3 concurrent remote clients over real sockets,
/// byte-identical to the serial in-process run of the same inputs in
/// arrival order.
#[test]
fn concurrent_net_clients_match_in_process_serial_digests() {
    let workload = SquidLike::new();
    let sessions = multi_client_sessions(3, 4, 4, None);
    let server =
        NetFrontend::bind(SquidLike::new(), "127.0.0.1:0", net_config(2)).expect("bind localhost");
    let addr = server.local_addr();

    let collected: Mutex<Vec<(u64, WorkloadInput, u128)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for session in &sessions {
            let collected = &collected;
            scope.spawn(move || {
                let client = NetClient::connect(addr).expect("connect");
                for input in session {
                    let ticket = client.submit(input, None).expect("submit");
                    let seq = ticket.job();
                    let outcome = ticket.wait().expect("outcome");
                    assert_eq!(outcome.job, seq, "ticket/outcome sequence mismatch");
                    assert!(outcome.unanimous, "benign traffic diverged");
                    collected.lock().expect("collection lock").push((
                        seq,
                        input.clone(),
                        outcome.digest,
                    ));
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.connections, 3);
    assert_eq!(stats.jobs, 12);
    assert_eq!(stats.rejected, 0);
    server.shutdown();

    let mut collected = collected.into_inner().expect("collection lock");
    collected.sort_by_key(|(seq, _, _)| *seq);
    // Global sequence numbers are exactly 0..N: nothing lost, nothing
    // invented, whichever connection carried each input.
    for (i, (seq, _, _)) in collected.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers have gaps");
    }
    let arrival_inputs: Vec<WorkloadInput> = collected
        .iter()
        .map(|(_, input, _)| input.clone())
        .collect();
    let reference = serial_digests(&workload, &arrival_inputs, None);
    for ((seq, _, digest), expected) in collected.iter().zip(&reference) {
        assert_eq!(
            digest, expected,
            "job {seq} diverged from its in-process serial replay"
        );
    }
}

/// Fault-bearing traffic through the wire: voting, isolation, and patch
/// generation all happen server-side, and the digests still pin to the
/// serial reference (the wire outcome also carries the patch text, which
/// must parse back into a table containing the overflow's pad).
#[test]
fn remote_attack_batch_matches_serial_reference_and_carries_patches() {
    let workload = EspressoLike::new();
    let inputs: Vec<WorkloadInput> = (0..6).map(WorkloadInput::with_seed).collect();
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 8,
            fill: 0x44,
        },
        trigger: AllocTime::from_raw(90),
    };
    let reference = serial_digests(&workload, &inputs, Some(fault));

    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", net_config(2))
        .expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    // Pipelined: all tickets first, then collect (frames demultiplex by
    // job id).
    let tickets: Vec<_> = inputs
        .iter()
        .map(|input| client.submit(input, Some(fault)).expect("submit"))
        .collect();
    let mut saw_error = false;
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        let outcome = ticket.wait().expect("outcome");
        assert_eq!(&outcome.digest, expected, "job {} diverged", outcome.job);
        if outcome.error_observed {
            saw_error = true;
            assert!(outcome.isolated, "an observed error should isolate");
            let patches = PatchTable::from_text(&outcome.patches).expect("patch text parses");
            assert!(
                patches.pads().any(|(_, pad)| pad >= 8),
                "no pad covering the 8-byte overflow in {:?}",
                outcome.patches
            );
        }
    }
    assert!(saw_error, "the injected overflow never manifested");
    drop(client);
    server.shutdown();
}

/// The streaming claim: with one replica deliberately slowed, the remote
/// verdict arrives while that straggler is still executing (`outstanding
/// > 0`), and the finalized outcome follows.
#[test]
fn remote_verdict_streams_before_stragglers_finish() {
    let mut config = net_config(1);
    config.frontend.pool.straggler = Some(Straggler {
        replica: 2,
        delay: std::time::Duration::from_millis(40),
    });
    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");

    let ticket = client
        .submit(&WorkloadInput::with_seed(5), None)
        .expect("submit");
    let verdict = ticket
        .wait_verdict()
        .expect("verdict frame")
        .expect("clean replicas reach quorum");
    assert!(
        verdict.outstanding >= 1,
        "verdict arrived only after every replica finished"
    );
    assert!(!verdict.output.is_empty());
    let outcome = ticket.wait().expect("outcome");
    assert!(outcome.unanimous, "straggler diverged");
    drop(client);
    server.shutdown();
}

/// Shutdown liveness: a client that stays connected but idle must not
/// wedge `NetFrontend::shutdown` — the connection handler's read loop
/// wakes on its poll interval, notices the stop flag, and exits.
#[test]
fn shutdown_returns_while_a_client_stays_connected() {
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", net_config(1))
        .expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    // Prove the connection is live, then go idle without closing it.
    let outcome = client
        .submit(&WorkloadInput::with_seed(3), None)
        .expect("submit")
        .wait()
        .expect("outcome");
    assert!(outcome.unanimous);

    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "shutdown hung on an idle connection for {:?}",
        start.elapsed()
    );
    drop(client);
}

/// Drains until the client's push buffers empty, bounded by a deadline;
/// returns the final `buffered()` count. Jobs from one connection run
/// on independent server workers, so an abandoned job's final frame may
/// still be crossing the wire when a *later* job's outcome returns —
/// each health round trip here reads (and discards) whatever landed
/// ahead of its reply.
fn drained_buffers(client: &NetClient) -> usize {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let parked = client.buffered();
        if parked == 0 || std::time::Instant::now() >= deadline {
            return parked;
        }
        client.pull_health().expect("health round trip");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Buffer hygiene on a long-lived connection: dropped tickets' pushed
/// frames are discarded on arrival, never parked forever, so abandoning
/// outcomes cannot grow client memory without bound.
#[test]
fn dropped_tickets_do_not_leak_push_buffers() {
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", net_config(1))
        .expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");

    // Abandon a handful of jobs outright (fire-and-forget traffic).
    for seed in 0..4 {
        let ticket = client
            .submit(&WorkloadInput::with_seed(seed), None)
            .expect("submit");
        drop(ticket);
    }
    // A collected job after them: its wait() reads past (and discards)
    // every abandoned job's verdict and outcome frames, which the
    // server pushes in submission order on this connection.
    let outcome = client
        .submit(&WorkloadInput::with_seed(99), None)
        .expect("submit")
        .wait()
        .expect("outcome");
    assert!(outcome.unanimous);
    assert_eq!(
        drained_buffers(&client),
        0,
        "abandoned jobs left state parked in the client connection"
    );
    drop(client);
    server.shutdown();
}

/// Evidence aimed at a caller-chosen site: 16 of these (identical
/// dangling observations plus a deferral hint) reliably flag the site,
/// so each fresh site is worth exactly one new epoch at the next
/// publish boundary.
fn site_report(client: u64, seq: u32, site: u32) -> RunReport {
    RunReport {
        client,
        seq,
        failed: true,
        clock: 50 + u64::from(seq),
        n_sites: 100,
        dangling_obs: vec![(site, 0.5, true)],
        overflow_obs: Vec::new(),
        pad_hints: Vec::new(),
        defer_hints: vec![(site, 0xF, 30)],
    }
}

/// The push-inversion pin (§6.4 without polling): a client connected
/// *before* any epoch exists observes server-pushed epochs without ever
/// calling `pull_epoch` — the server fans each published epoch down
/// every live connection, and the client parks on its socket until one
/// lands.
#[test]
fn connected_client_observes_pushed_epochs_without_polling() {
    let mut config = net_config(1);
    config.fleet = FleetConfig {
        shards: 4,
        publish_every: 8,
        ..FleetConfig::default()
    };
    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");
    // Connected before the first publish; no epoch has been pushed yet.
    let observer = NetClient::connect(server.local_addr()).expect("connect observer");
    assert!(observer.pushed_epoch().is_none(), "phantom epoch in cache");

    // A second connection supplies the evidence that mints epochs.
    let producer = NetClient::connect(server.local_addr()).expect("connect producer");
    for seq in 0..16 {
        producer
            .ingest_report(&site_report(3, seq, 0xD00D))
            .expect("report ack");
    }

    // The observer never pulls: the epoch arrives because the server
    // pushed it down this otherwise-idle connection.
    let epoch = observer
        .wait_pushed_epoch(0, Duration::from_secs(10))
        .expect("wait for push")
        .expect("no epoch pushed within 10s");
    assert!(epoch.number >= 1, "pushed epoch 0");
    assert_eq!(
        observer.pushed_epoch().expect("cache filled").number,
        epoch.number,
        "cache read disagrees with the wait that filled it"
    );

    // Evidence for a *fresh* site mints a successor epoch, which reaches
    // the same connection; the cache is newest-wins, so waiting above
    // the first number yields the next.
    for seq in 16..32 {
        producer
            .ingest_report(&site_report(3, seq, 0xBEEF))
            .expect("report ack");
    }
    let newer = observer
        .wait_pushed_epoch(epoch.number, Duration::from_secs(10))
        .expect("wait for second push")
        .expect("second epoch never pushed");
    assert!(newer.number > epoch.number, "push went backwards");
    assert_eq!(observer.buffered(), 0, "pushes parked frames in buffers");
    drop(observer);
    drop(producer);
    server.shutdown();
}

/// Buffer hygiene under pushes: many published epochs plus abandoned
/// tickets on one connection leave *nothing* parked — pushed epochs
/// collapse into the one-slot newest-wins cache (never counted by
/// `buffered`), and dropped tickets' frames are discarded on arrival.
/// This extends the `buffered == 0` pin to the push-epoch path.
#[test]
fn epoch_pushes_and_dropped_tickets_leave_no_buffered_state() {
    let mut config = net_config(1);
    config.fleet = FleetConfig {
        shards: 4,
        publish_every: 8,
        ..FleetConfig::default()
    };
    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");

    // Abandon jobs outright, then mint a stream of epochs on the same
    // connection: evidence for each fresh site flags at a publish
    // boundary, and every publish is pushed down this wire.
    for seed in 0..4 {
        drop(
            client
                .submit(&WorkloadInput::with_seed(seed), None)
                .expect("submit"),
        );
    }
    for (round, site) in [0xD00D, 0xBEEF].into_iter().enumerate() {
        for step in 0..16 {
            let receipt = client
                .ingest_report(&site_report(5, (round * 16 + step) as u32, site))
                .expect("report ack");
            assert!(!receipt.duplicate);
        }
    }
    let latest = server.service().latest().number;
    assert!(latest >= 2, "publish cadence minted too few epochs");

    // A collected job reads past (and discards) the abandoned jobs'
    // frames and absorbs any interleaved pushes.
    let outcome = client
        .submit(&WorkloadInput::with_seed(99), None)
        .expect("submit")
        .wait()
        .expect("outcome");
    assert!(outcome.unanimous);

    // Park until the *newest* epoch lands: every pushed epoch for this
    // connection has then traversed the client and collapsed into the
    // single cache slot.
    let newest = client
        .wait_pushed_epoch(latest - 1, Duration::from_secs(10))
        .expect("wait for newest push")
        .expect("newest epoch never arrived");
    assert!(newest.number >= latest);
    assert_eq!(
        drained_buffers(&client),
        0,
        "pushed epochs or abandoned jobs left state parked in the client"
    );
    drop(client);
    server.shutdown();
}

/// §6.4 over a real socket: the server's front-end (self-patching
/// disabled) is healed purely by epochs minted from evidence a *remote*
/// client shipped over the same connection it submits jobs on.
#[test]
fn remote_reports_heal_the_server() {
    let workload = EspressoLike::new();
    let input = WorkloadInput::with_seed(21).intensity(3);
    // The screened cold-site overflow (see xt-fleet/tests/frontend_loop.rs
    // for why a deterministic-healing overflow, not a dangling fault, is
    // the right loop-closure demo).
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        trigger: AllocTime::from_raw(239),
    };
    let mut config = net_config(2);
    config.fleet = FleetConfig {
        shards: 4,
        publish_every: 8,
        ..FleetConfig::default()
    };
    let fill = config.fleet.isolator.fill_probability;
    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");

    let mut epoch = 0u64;
    let mut patches = PatchTable::new();
    let mut next_seq = 0u32;
    let mut failures_reported = 0u32;
    let mut healed = false;
    for _round in 0..40 {
        // Adopt the newest epoch before serving, like a deployed client.
        if let Some(newer) = client.pull_epoch(epoch).expect("epoch pull") {
            epoch = newer.number;
            patches.merge(&newer.patches);
        }
        let outcome = client
            .submit(&input, Some(fault))
            .expect("submit")
            .wait()
            .expect("outcome");
        if outcome.error_observed {
            // Local cumulative probes, shipped as ordinary wire reports —
            // the §5 "few kilobytes per execution" path, remote edition.
            for _probe in 0..8 {
                let run = summarized_run(
                    &workload,
                    &input,
                    Some(fault),
                    patches.clone(),
                    0xF1EE7 ^ (u64::from(next_seq) << 8),
                    fill,
                    2.0,
                );
                let report = RunReport::from_summary(77, next_seq, &run.summary);
                next_seq += 1;
                let receipt = client.ingest_report(&report).expect("report ack");
                assert!(!receipt.duplicate, "fresh probe deduplicated");
            }
            failures_reported += 1;
        } else if !patches.is_empty() {
            // Served cleanly under fleet-fed patches: healed.
            healed = true;
            break;
        }
    }
    assert!(failures_reported >= 1, "the fault never manifested");
    assert!(
        healed,
        "remote evidence never healed the server (epoch {epoch}, reports {})",
        server.stats().reports
    );
    assert!(epoch >= 1, "no epoch was ever pulled");
    assert!(
        patches.pads().any(|(_, pad)| pad >= 20),
        "correction must pad the 20-byte delta"
    );
    let stats = server.stats();
    assert!(stats.reports >= 8, "reports were not counted");
    drop(client);
    server.shutdown();
}

/// `connect_with_retry` rides out a server that starts *after* its
/// clients (orchestrated deployments bring processes up in arbitrary
/// order): the port refuses connections for a while, the backoff
/// schedule absorbs the refusals, and the first post-bind attempt lands.
#[test]
fn connect_with_retry_reaches_a_late_starting_server() {
    // Reserve a port, then free it: until the server binds it again,
    // connects are refused — the transient failure under test.
    let addr = TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr");
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        NetFrontend::bind(EspressoLike::new(), addr, net_config(1)).expect("late bind")
    });
    let client = NetClient::connect_with_retry(
        addr,
        &RetryPolicy {
            attempts: 50,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_seed: 0xD1A1,
        },
    )
    .expect("retry never reached the late server");
    let server = server_thread.join().expect("server thread");
    let outcome = client
        .submit(&WorkloadInput::with_seed(11), None)
        .expect("submit")
        .wait()
        .expect("outcome");
    assert!(outcome.unanimous, "retried connection served garbage");
    drop(client);
    server.shutdown();
}

/// The durable front door: remote evidence ingested into a
/// `NetDurability`-configured server survives a full server restart —
/// same storage, new process state — including the epoch, the evidence
/// digest, and the replay windows that make redelivery a duplicate.
#[test]
fn durable_server_state_survives_restart() {
    let report = |seq: u32| RunReport {
        client: 7,
        seq,
        failed: true,
        clock: 50 + u64::from(seq),
        n_sites: 100,
        dangling_obs: vec![(0xD00D, 0.5, true)],
        overflow_obs: Vec::new(),
        pad_hints: Vec::new(),
        defer_hints: vec![(0xD00D, 0xF, 30)],
    };
    let disk = MemStorage::new();
    let mut config = net_config(1);
    config.fleet = FleetConfig {
        shards: 4,
        publish_every: 8,
        ..FleetConfig::default()
    };
    // snapshot_every 0: only the graceful-shutdown snapshot compacts, so
    // this test also proves the final snapshot actually happens.
    config.durability = Some(NetDurability {
        storage: Arc::new(disk.clone()),
        config: DurabilityConfig { snapshot_every: 0 },
    });

    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config.clone())
        .expect("bind durable server");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    for seq in 0..20 {
        let receipt = client.ingest_report(&report(seq)).expect("report ack");
        assert!(!receipt.duplicate);
    }
    let epoch_before = server.service().latest().number;
    assert!(epoch_before >= 1, "publish cadence never fired");
    let digest_before = server.service().state_digest();
    let m = server.fleet_metrics();
    assert_eq!(m.wal_appends, 20);
    assert_eq!(m.recoveries, 0);
    drop(client);
    server.shutdown();
    assert!(
        disk.object_len(wal::SNAPSHOT_OBJECT) > 8,
        "graceful shutdown wrote no snapshot"
    );
    assert_eq!(
        disk.object_len(wal::WAL_OBJECT),
        0,
        "graceful shutdown left an uncompacted WAL"
    );

    // "Restart": a new server over the same storage.
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config)
        .expect("rebind durable server");
    let m = server.fleet_metrics();
    assert_eq!(m.recoveries, 1, "rebind did not recover");
    assert_eq!(m.reports, 20, "recovered report count diverged");
    assert_eq!(server.service().latest().number, epoch_before);
    assert_eq!(
        server.service().state_digest(),
        digest_before,
        "recovered evidence state diverged"
    );
    // Replay windows recovered too: redelivering over the wire is a
    // duplicate, not fresh evidence.
    let client = NetClient::connect(server.local_addr()).expect("reconnect");
    assert!(
        client.ingest_report(&report(0)).expect("ack").duplicate,
        "recovery forgot the delivery window"
    );
    drop(client);
    server.shutdown();
}

/// Hostile-bytes containment at the two trust boundaries: a malformed
/// frame kills only its own connection (with an offset-bearing error
/// frame first), and a well-framed but hostile nested report is rejected,
/// counted, and leaves the connection usable — the server survives both.
#[test]
fn malformed_frames_and_hostile_reports_are_contained() {
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", net_config(1))
        .expect("bind localhost");
    let addr = server.local_addr();

    // Raw garbage: bad magic.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // server closes on us
    drop(raw);

    // A frame with an unknown kind: the server answers with an Error
    // frame naming the kind byte, then closes.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    Frame::new(0xEE, vec![1, 2, 3])
        .write_to(&mut raw)
        .expect("write");
    raw.flush().expect("flush");
    let reply = Frame::read_from(&mut std::io::BufReader::new(
        raw.try_clone().expect("clone"),
    ))
    .expect("read reply")
    .expect("error frame before close");
    assert_eq!(reply.kind, xt_net::proto::kind::ERROR);
    drop(raw);

    // A truncated frame header (magic only), then close: dropped quietly.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&FRAME_MAGIC).expect("write");
    drop(raw);

    // A hostile nested report over the real client: rejected remotely
    // with the wire validator's message, counted, connection intact.
    let client = NetClient::connect(addr).expect("connect");
    let hostile = RunReport {
        client: 666,
        seq: 0,
        failed: true,
        clock: 1,
        n_sites: u32::MAX,
        overflow_obs: Vec::new(),
        dangling_obs: vec![(0xBAD, 0.5, true)],
        pad_hints: Vec::new(),
        defer_hints: Vec::new(),
    };
    let err = client
        .ingest_report(&hostile)
        .expect_err("hostile report accepted");
    match err {
        NetError::Remote(message) => {
            assert!(
                message.contains("site population"),
                "rejection lost the validator's diagnosis: {message}"
            );
        }
        other => panic!("expected a remote rejection, got {other:?}"),
    }
    assert_eq!(server.service().metrics().rejected_reports, 1);

    // The same connection — and the server as a whole — still serves.
    let outcome = client
        .submit(&WorkloadInput::with_seed(1), None)
        .expect("submit after rejection")
        .wait()
        .expect("outcome after rejection");
    assert!(outcome.unanimous);
    let stats = server.stats();
    assert!(
        stats.rejected >= 2,
        "rejections were not counted: {stats:?}"
    );
    drop(client);
    server.shutdown();
}

/// A well-formed report for the observability tests: minimal, but it
/// passes the wire validator and folds real evidence.
fn evidence_report(client: u64, seq: u32) -> RunReport {
    RunReport {
        client,
        seq,
        failed: true,
        clock: 50 + u64::from(seq),
        n_sites: 100,
        dangling_obs: vec![(0xD00D, 0.5, true)],
        overflow_obs: Vec::new(),
        pad_hints: Vec::new(),
        defer_hints: vec![(0xD00D, 0xF, 30)],
    }
}

/// The acceptance pin for the wire observability surface: after real
/// traffic (jobs and reports over TCP), a client pulls a health frame
/// and the full merged metrics snapshot, and every layer's per-stage
/// histograms carry nonzero counts.
#[test]
fn health_and_metrics_pull_over_live_tcp() {
    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", net_config(1))
        .expect("bind localhost");
    let client = NetClient::connect(server.local_addr()).expect("connect");

    for seed in 0..3 {
        let outcome = client
            .submit(&WorkloadInput::with_seed(seed), None)
            .expect("submit")
            .wait()
            .expect("outcome");
        assert!(outcome.unanimous);
    }
    for seq in 0..5 {
        let receipt = client
            .ingest_report(&evidence_report(7, seq))
            .expect("report ack");
        assert!(!receipt.duplicate);
    }

    let health = client.pull_health().expect("health frame");
    assert!(health.healthy);
    assert!(!health.durable, "plain backend reported durable");
    assert_eq!(health.recoveries, 0);
    assert!(
        health.connections >= 1,
        "the probing connection itself should be counted"
    );

    let snap = client.pull_metrics().expect("metrics frame");
    // Per-stage latency histograms from all three layers, each with the
    // counts the traffic above implies.
    for (name, expect) in [
        ("frontend/queue_wait", 3),
        ("frontend/exec", 3),
        ("frontend/verdict", 3),
        ("fleet/ingest", 5),
        ("fleet/fold", 5),
    ] {
        let hist = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing from pulled snapshot"));
        assert_eq!(hist.count(), expect, "{name} count");
        assert!(hist.p50() <= hist.p99(), "{name} quantiles disordered");
    }
    let rtt = snap.histogram("net/wire_rtt").expect("net/wire_rtt");
    // 3 Accepted + 5 ReportAcks + the health reply; the metrics reply
    // itself records only after the snapshot was taken.
    assert!(rtt.count() >= 9, "wire RTT count {}", rtt.count());
    assert_eq!(snap.counter("fleet/reports"), Some(5));
    assert!(snap.counter("net/frames_in").unwrap_or(0) >= 9);
    assert!(snap.counter("net/frames_out").unwrap_or(0) >= 9);

    // The server-side (connection-free) subset agrees on fleet counters.
    let local = server.metrics_snapshot();
    assert_eq!(local.counter("fleet/reports"), Some(5));
    assert!(local.histogram("fleet/ingest").is_some());

    drop(client);
    server.shutdown();
}

/// Health over a durable backend: after a restart-with-recovery the
/// probe reports durable mode and the recovery count.
#[test]
fn health_probe_reports_durability_and_recovery() {
    let mut config = net_config(1);
    // `config.clone()` shares this Arc, so the rebind below recovers
    // from the same storage.
    config.durability = Some(NetDurability {
        storage: Arc::new(MemStorage::new()),
        config: DurabilityConfig { snapshot_every: 0 },
    });

    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config.clone())
        .expect("bind durable server");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    client
        .ingest_report(&evidence_report(9, 0))
        .expect("report ack");
    let health = client.pull_health().expect("health frame");
    assert!(health.durable, "durable backend reported plain");
    assert_eq!(health.recoveries, 0, "fresh storage recovered something");
    drop(client);
    server.shutdown();

    let server = NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config)
        .expect("rebind durable server");
    let client = NetClient::connect(server.local_addr()).expect("reconnect");
    let health = client.pull_health().expect("health frame");
    assert!(health.durable);
    assert_eq!(health.recoveries, 1, "restart did not surface the recovery");
    let snap = client.pull_metrics().expect("metrics frame");
    assert_eq!(snap.counter("fleet/recoveries"), Some(1));
    drop(client);
    server.shutdown();
}

/// The admission-control pin: with per-client token buckets armed, a
/// flooding client's reports are refused with a named rate-limit error
/// — visible in the pulled metrics — while a well-behaved client on the
/// same server ingests untouched.
#[test]
fn flooding_client_is_rate_limited_while_quiet_client_is_not() {
    let mut config = net_config(1);
    config.fleet.rate_limit = Some(TokenBucketConfig {
        burst: 4,
        refill_num: 1,
        refill_den: 8,
    });
    let server =
        NetFrontend::bind(EspressoLike::new(), "127.0.0.1:0", config).expect("bind localhost");

    // The flood: one client hammers 64 reports without backing off.
    let flooder = NetClient::connect(server.local_addr()).expect("connect flooder");
    let mut refused = 0u64;
    for seq in 0..64 {
        match flooder.ingest_report(&evidence_report(1, seq)) {
            Ok(receipt) => assert!(!receipt.duplicate),
            Err(NetError::Remote(message)) => {
                assert!(
                    message.contains("rate-limited"),
                    "refusal lost its diagnosis: {message}"
                );
                refused += 1;
            }
            Err(other) => panic!("rate limiting broke the connection: {other:?}"),
        }
    }
    assert!(
        refused >= 40,
        "sustained flood mostly admitted ({refused}/64 refused)"
    );

    // The same server still admits a well-behaved client's burst whole.
    let quiet = NetClient::connect(server.local_addr()).expect("connect quiet");
    for seq in 0..4 {
        quiet
            .ingest_report(&evidence_report(2, seq))
            .expect("well-behaved client was throttled");
    }

    // The refusals are observable over the wire, attributed to the
    // fleet's admission counter, not the decode-rejection counter.
    let snap = quiet.pull_metrics().expect("metrics frame");
    assert_eq!(snap.counter("fleet/rate_limited"), Some(refused));
    assert_eq!(snap.counter("fleet/rejected_reports"), Some(0));
    assert_eq!(snap.counter("fleet/reports"), Some((64 - refused) + 4));
    drop(flooder);
    drop(quiet);
    server.shutdown();
}
