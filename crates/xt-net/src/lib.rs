//! The network front door: wire-protocol job submission for the
//! replicated runtime.
//!
//! The paper's deployment story (§5, §6.4) is distributed: many machines
//! run patched replicas and exchange a-few-kilobytes reports with an
//! aggregator. PR 4's [`PoolFrontend`](exterminator::frontend::
//! PoolFrontend) built the server side of that picture *in-process*;
//! this crate puts a real socket in front of it. Three message families
//! share one framed TCP connection (module [`proto`]):
//!
//! 1. **Job submission** — a [`WorkloadInput`](xt_workloads::
//!    WorkloadInput) (plus optional fault, for attack traffic in demos
//!    and tests) goes in; the front-end's global sequence number comes
//!    back. That number, not the connection or the read interleaving,
//!    seeds the replicas — so remote outcomes are byte-identical to the
//!    same inputs submitted in-process serially, pinned by digest in
//!    `tests/net.rs`.
//! 2. **Streaming results** — the server pushes the quorum verdict the
//!    moment the streaming voter declares (stragglers still running),
//!    then the finalized outcome. [`NetClient`] exposes both through the
//!    [`JobTicket`](exterminator::frontend::JobTicket)-shaped
//!    [`NetTicket`] (`wait_verdict` / `wait`).
//! 3. **The fleet path** — `XTR1` run reports ingest into the server's
//!    co-located [`FleetService`](xt_fleet::FleetService); a newly
//!    published epoch fans straight into the server's own pools
//!    ([`bridge::ingest_and_sync`](xt_fleet::bridge::ingest_and_sync)),
//!    so remote evidence heals the server, **and is pushed down every
//!    live connection** as an `EpochPush` frame the moment it
//!    publishes. [`NetClient`] absorbs pushes into a one-slot
//!    newest-wins cache ([`NetClient::pushed_epoch`] /
//!    [`NetClient::wait_pushed_epoch`]) — a patched fleet converges
//!    without a single client poll. Explicit `EpochPull` stays for
//!    late joiners and reconnects.
//!
//! # The event loop
//!
//! The server is a readiness-driven event loop, not thread-per-
//! connection — one server must hold thousands of mostly-idle clients
//! with bounded threads and memory. A single poller thread owns every
//! connection through [`xt_poll::Poller`] (epoll via a thin FFI shim on
//! Linux, portable `poll(2)` fallback elsewhere — the same
//! offline-stand-in pattern as `proptest`/`criterion`). Sockets are
//! non-blocking; reads accumulate into a per-connection buffer and
//! [`Frame::parse_prefix`](xt_fleet::frame::Frame::parse_prefix) cuts
//! complete frames out of it, so a frame arriving one byte at a time
//! costs buffered patience, not a blocked thread. Complete requests are
//! handed to a fixed worker pool; replies and pushes are *posted* to
//! bounded per-connection write queues that the poller drains when the
//! socket reports writable. Per connection the cost is one fd plus
//! those buffers (the 10k soak in `crates/bench/benches/soak.rs`
//! measures ~4.6 KB and zero threads per connection, and epoch
//! propagation to ~9.9k connections in ~134 ms on one CPU); per server
//! it is O(workers) threads, fixed at bind time.
//!
//! Everything on the wire rides the shared length-prefixed frame layer
//! ([`xt_fleet::frame`]) and validates **with byte offsets**: these
//! bytes cross a trust boundary, and a rejected frame that names "bad
//! boolean byte 0x3 at offset 4" pinpoints corruption, truncation, or
//! version skew where a bare "bad message" cannot — the same argument
//! `xt_fleet::wire` makes for report payloads, now applied to every
//! message family. Length prefixes are capped before allocation, so a
//! hostile frame cannot buy gigabytes with four bytes.
//!
//! Backpressure follows the PR 4 queue discipline end to end: accepts
//! stop past the connection budget, submissions block on the
//! front-end's bounded queues, write queues are bounded per connection
//! (a slow reader drops pushes for itself — counted in
//! `net/pushes_dropped` — rather than growing the server), and nothing
//! grows without bound: a burst degrades to waiting, never to OOM.
//!
//! # Observability
//!
//! A fourth message family serves operators. `HealthPull` → [`Msg::
//! Health`] answers a liveness probe with the server's newest epoch,
//! uptime, durability mode, and recovery count; `MetricsPull` →
//! [`Msg::Metrics`] ships the merged [`xt_obs::RegistrySnapshot`] of
//! every layer: `net/...` (frame counters, live-connection gauge, the
//! `net/wire_rtt` server-side request→reply histogram), `fleet/...`
//! (service counters plus ingest/fold/publish/WAL-append latency
//! histograms), and `frontend/...` (per-job queue-wait, verdict, and
//! execution histograms). Histogram buckets are powers of two in
//! nanoseconds ([`xt_obs::HISTOGRAM_BUCKETS`] of them); names are
//! pre-namespaced per layer so the server merges registries without
//! collisions. [`NetClient::pull_health`] and
//! [`NetClient::pull_metrics`] are the client ends.
//!
//! **Admission control**: arming
//! [`FleetConfig::rate_limit`](xt_fleet::FleetConfig) gives every
//! remote client a deterministic token bucket at report ingest
//! (attempt-driven refill — no wall clock). A refused report crosses
//! back as an `Error` frame ("client N rate-limited at ingest
//! admission") without dropping the connection; refusals count in
//! `fleet/rate_limited`, visible in the pulled snapshot. Submission
//! and pull traffic is never limited, and neither is in-process
//! ingestion. All of it is operational only — timing and admission
//! never touch an outcome byte or a deterministic digest.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetError, NetTicket, RetryPolicy};
pub use proto::{Msg, SubmitJob, WireHealth, WireOutcome, WireReceipt, WireReplica, WireVerdict};
pub use server::{NetConfig, NetDurability, NetFrontend, NetStats};
