//! The message families multiplexed over one framed connection.
//!
//! Every message is one [`Frame`]: the frame's `kind` byte names the
//! message, the payload is a fixed little-endian layout decoded through
//! the shared offset-tracking [`Reader`] — malformed bytes anywhere name
//! the exact offending offset, same argument as `xt_fleet::wire` (these
//! bytes cross a trust boundary; "bad message" is undebuggable).
//!
//! Three families share the stream:
//!
//! * **Job submission** — [`Msg::Submit`] carries a
//!   [`WorkloadInput`] plus an optional [`FaultSpec`]; the server answers
//!   [`Msg::Accepted`] with the front-end's global sequence number.
//! * **Streaming results** — the server *pushes* [`Msg::Verdict`] the
//!   moment the streaming voter declares for a job (stragglers still
//!   running), then [`Msg::Outcome`] once the job finalizes. Both carry
//!   the job's sequence number so clients with several jobs in flight can
//!   demultiplex.
//! * **Fleet path** — [`Msg::Report`] nests an `XTR1`-encoded
//!   [`RunReport`](xt_fleet::RunReport) (acknowledged by
//!   [`Msg::ReportAck`]), and [`Msg::EpochPull`]/[`Msg::Epoch`] poll the
//!   server's published patch epochs — the same ingest/pull loop
//!   `xt-fleet` runs in-process, now over the socket.
//! * **Observability** — [`Msg::HealthPull`]/[`Msg::Health`] answer a
//!   liveness probe with the server's epoch, uptime, and recovery
//!   status; [`Msg::MetricsPull`]/[`Msg::Metrics`] ship the merged
//!   [`RegistrySnapshot`] of every service layer (front-end, fleet,
//!   wire) to remote operators.
//!
//! Replies are request-response in connection order; pushed messages
//! (`Verdict`, `Outcome`) may interleave anywhere, which is why the
//! client buffers them by job id.

use xt_faults::{FaultKind, FaultSpec};
use xt_fleet::frame::{Frame, Reader, WireError};
use xt_obs::{HistogramSnapshot, RegistrySnapshot, HISTOGRAM_BUCKETS};
use xt_workloads::WorkloadInput;

use exterminator::pool::{EarlyVerdict, PoolOutcome};

/// Cap for every variable-length field (input payloads, output streams,
/// patch text, error strings) — far above anything the protocols carry,
/// far below an allocation a hostile length prefix could hurt with.
pub const MAX_BLOB: u32 = 1 << 20;

/// Cap for per-replica and agreeing/dissenting index lists.
const MAX_INDICES: u32 = 1 << 10;

/// Cap for instrument counts in a metrics snapshot (counters, gauges,
/// and histograms each) — a service carries dozens of instruments, not
/// thousands, and a hostile count prefix must not size an allocation.
const MAX_INSTRUMENTS: u32 = 1 << 12;

/// Frame kind bytes, one per message family member.
pub mod kind {
    /// Client → server: submit one job.
    pub const SUBMIT: u8 = 1;
    /// Server → client: submission accepted at this global sequence.
    pub const ACCEPTED: u8 = 2;
    /// Server → client (pushed): the streaming quorum verdict.
    pub const VERDICT: u8 = 3;
    /// Server → client (pushed): the finalized outcome.
    pub const OUTCOME: u8 = 4;
    /// Client → server: ingest a nested `XTR1` run report.
    pub const REPORT: u8 = 5;
    /// Server → client: report ingested.
    pub const REPORT_ACK: u8 = 6;
    /// Client → server: send the newest epoch if newer than `have`.
    pub const EPOCH_PULL: u8 = 7;
    /// Server → client: the epoch (or "nothing newer").
    pub const EPOCH: u8 = 8;
    /// Server → client: the request failed (message names why).
    pub const ERROR: u8 = 9;
    /// Client → server: liveness probe.
    pub const HEALTH_PULL: u8 = 10;
    /// Server → client: liveness + epoch + uptime + recovery status.
    pub const HEALTH: u8 = 11;
    /// Client → server: pull the full metrics registry snapshot.
    pub const METRICS_PULL: u8 = 12;
    /// Server → client: the merged registry snapshot.
    pub const METRICS: u8 = 13;
    /// Server → client (pushed, unsolicited): a newly published epoch,
    /// fanned down every live connection the moment it publishes.
    pub const EPOCH_PUSH: u8 = 14;
}

/// One job submission: the input plus an optional injected fault (the
/// latter is how tests and demos carry attack traffic; production
/// clients send `None`).
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitJob {
    /// The workload input to execute on every replica.
    pub input: WorkloadInput,
    /// Optional fault injection.
    pub fault: Option<FaultSpec>,
}

/// The streaming quorum verdict, as pushed to the submitting client —
/// the wire form of [`EarlyVerdict`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireVerdict {
    /// The agreed output digest.
    pub digest: u128,
    /// Replicas in the quorum.
    pub agreeing: Vec<u32>,
    /// Replicas still running when the quorum formed — nonzero means the
    /// verdict genuinely beat the stragglers.
    pub outstanding: u32,
    /// The agreed output bytes.
    pub output: Vec<u8>,
}

impl WireVerdict {
    /// Reduces an [`EarlyVerdict`] to its wire form.
    #[must_use]
    pub fn from_early(v: &EarlyVerdict) -> Self {
        WireVerdict {
            digest: v.digest,
            agreeing: v.agreeing.iter().map(|&i| i as u32).collect(),
            outstanding: v.outstanding as u32,
            output: v.output.clone(),
        }
    }
}

/// One replica's summary inside a [`WireOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireReplica {
    /// The replica's heap seed.
    pub seed: u64,
    /// Whether its run completed.
    pub completed: bool,
    /// Whether it failed.
    pub failed: bool,
    /// DieFast signals raised.
    pub signals: u32,
    /// Output stream length.
    pub output_len: u32,
    /// 128-bit output digest.
    pub output_digest: u128,
}

/// The finalized outcome, as pushed to the submitting client. Not the
/// whole [`PoolOutcome`] — heap-image-sized state stays server-side — but
/// the full deterministic *identity* is carried by `digest`
/// ([`PoolOutcome::deterministic_digest`]), so clients can pin remote
/// outcomes byte-identical to in-process runs without shipping outcomes
/// whole.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireOutcome {
    /// The front-end's global sequence number for this job.
    pub job: u64,
    /// [`PoolOutcome::deterministic_digest`] of the server-side outcome.
    pub digest: u128,
    /// Any replica failed or diverged.
    pub error_observed: bool,
    /// Every replica agreed.
    pub unanimous: bool,
    /// The vote's plurality output.
    pub winner: Vec<u8>,
    /// Replicas that produced the winner.
    pub agreeing: Vec<u32>,
    /// Replicas that diverged.
    pub dissenting: Vec<u32>,
    /// Per-replica summaries, in replica order.
    pub replicas: Vec<WireReplica>,
    /// The job's patch table in `xt-patch` text form (parse with
    /// [`xt_patch::PatchTable::from_text`]).
    pub patches: String,
    /// Whether isolation ran (an isolation report exists server-side).
    pub isolated: bool,
}

impl WireOutcome {
    /// Reduces a finalized [`PoolOutcome`] to its wire form.
    #[must_use]
    pub fn from_pool(out: &PoolOutcome) -> Self {
        WireOutcome {
            job: out.job,
            digest: out.deterministic_digest(),
            error_observed: out.outcome.error_observed(),
            unanimous: out.outcome.vote.unanimous(),
            winner: out.outcome.vote.winner.clone(),
            agreeing: out
                .outcome
                .vote
                .agreeing
                .iter()
                .map(|&i| i as u32)
                .collect(),
            dissenting: out
                .outcome
                .vote
                .dissenting
                .iter()
                .map(|&i| i as u32)
                .collect(),
            replicas: out
                .outcome
                .replicas
                .iter()
                .map(|r| WireReplica {
                    seed: r.seed,
                    completed: r.completed,
                    failed: r.failed,
                    signals: r.signals as u32,
                    output_len: r.output_len as u32,
                    output_digest: r.output_digest,
                })
                .collect(),
            patches: out.outcome.patches.to_text(),
            isolated: out.outcome.report.is_some(),
        }
    }
}

/// The wire form of an [`IngestReceipt`](xt_fleet::IngestReceipt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireReceipt {
    /// The report was a redelivery and was dropped.
    pub duplicate: bool,
    /// Shards the report touched.
    pub shards_touched: u32,
    /// Observations folded in.
    pub observations: u32,
    /// Latest published epoch number at the server.
    pub epoch: u64,
}

/// The server's answer to a liveness probe. Everything here is
/// operational status — none of it feeds deterministic digests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireHealth {
    /// The server accepted the probe and its backends are reachable.
    /// Always `true` in a reply — the signal of an unhealthy server is
    /// no reply at all — but carried explicitly so a degraded mode can
    /// be expressed without a protocol change.
    pub healthy: bool,
    /// Newest published patch epoch at the fleet backend.
    pub epoch: u64,
    /// Milliseconds since the server started listening.
    pub uptime_ms: u64,
    /// Durability recoveries the backend has performed (0 for an
    /// in-memory backend or a durable one that started fresh).
    pub recoveries: u64,
    /// Whether the fleet backend persists through a WAL.
    pub durable: bool,
    /// Connections currently open at the server (including the one
    /// carrying this reply).
    pub connections: u64,
}

/// One protocol message (a decoded frame).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Submit a job.
    Submit(SubmitJob),
    /// Submission accepted at this global sequence number.
    Accepted {
        /// The front-end's global sequence number.
        job: u64,
    },
    /// The job's streaming vote resolved: `Some` quorum, or `None` when
    /// the job completed with every replica disagreeing.
    Verdict {
        /// The job this verdict belongs to.
        job: u64,
        /// The quorum, if one formed.
        verdict: Option<WireVerdict>,
    },
    /// The job finalized.
    Outcome(WireOutcome),
    /// Ingest a nested `XTR1`-encoded run report.
    Report(Vec<u8>),
    /// Report ingested.
    ReportAck(WireReceipt),
    /// Send the newest epoch if newer than `have`.
    EpochPull {
        /// The highest epoch number the client already holds.
        have: u64,
    },
    /// The epoch in `xt-patch` text form, or `None` when nothing newer
    /// than the client's `have` exists.
    Epoch {
        /// `PatchEpoch::to_text` output, if newer.
        epoch: Option<String>,
    },
    /// The request failed.
    Error {
        /// Human-readable reason (e.g. a `WireError` rendering).
        message: String,
    },
    /// Liveness probe.
    HealthPull,
    /// The probe's answer.
    Health(WireHealth),
    /// Pull the merged metrics registry snapshot.
    MetricsPull,
    /// The snapshot: every layer's counters, gauges, and per-stage
    /// latency histograms, merged server-side and name-sorted.
    Metrics(RegistrySnapshot),
    /// Server → client, unsolicited: a `PatchEpoch` just published.
    /// Unlike [`Msg::Epoch`] the text is always present — the server
    /// only pushes when there is something new to push.
    EpochPush {
        /// `PatchEpoch::to_text` output.
        epoch: String,
    },
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    assert!(
        bytes.len() <= MAX_BLOB as usize,
        "blob of {} bytes exceeds the wire cap (encoder bug)",
        bytes.len()
    );
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_indices(out: &mut Vec<u8>, indices: &[u32]) {
    assert!(
        indices.len() <= MAX_INDICES as usize,
        "index list of {} exceeds the wire cap (encoder bug)",
        indices.len()
    );
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for &i in indices {
        out.extend_from_slice(&i.to_le_bytes());
    }
}

fn read_blob(r: &mut Reader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.count(MAX_BLOB)?;
    Ok(r.bytes(len as usize)?.to_vec())
}

fn read_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let at = r.pos();
    let bytes = read_blob(r)?;
    String::from_utf8(bytes).map_err(|e| {
        // The offset of the first bad byte inside the blob (4 bytes of
        // length prefix, then the data).
        WireError::BadUtf8 {
            at: at + 4 + e.utf8_error().valid_up_to(),
        }
    })
}

fn read_indices(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let n = r.count(MAX_INDICES)?;
    (0..n).map(|_| r.u32()).collect()
}

fn encode_verdict(out: &mut Vec<u8>, verdict: &Option<WireVerdict>) {
    match verdict {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.digest.to_le_bytes());
            put_indices(out, &v.agreeing);
            out.extend_from_slice(&v.outstanding.to_le_bytes());
            put_bytes(out, &v.output);
        }
    }
}

fn decode_verdict(r: &mut Reader<'_>) -> Result<Option<WireVerdict>, WireError> {
    if !r.bool()? {
        return Ok(None);
    }
    Ok(Some(WireVerdict {
        digest: r.u128()?,
        agreeing: read_indices(r)?,
        outstanding: r.u32()?,
        output: read_blob(r)?,
    }))
}

/// Layout: three sections (counters, gauges, histograms), each a
/// `u32` count followed by `name-blob ∥ value` entries. Histogram
/// values are the exact `max` then all [`HISTOGRAM_BUCKETS`] bucket
/// counts — the bucket array is fixed-size by protocol (the bucket
/// scheme is a compile-time constant, so a length prefix could only
/// disagree with it).
// xt-analyze: allow(obs-in-det) -- this IS the metrics wire encoder: it serializes a snapshot for transport and feeds no outcome digest
fn encode_registry(out: &mut Vec<u8>, snap: &RegistrySnapshot) {
    let sections = [
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
    ];
    assert!(
        sections.iter().all(|&n| n <= MAX_INSTRUMENTS as usize),
        "instrument count {sections:?} exceeds the wire cap (encoder bug)"
    );
    out.extend_from_slice(&(snap.counters.len() as u32).to_le_bytes());
    for (name, value) in &snap.counters {
        put_bytes(out, name.as_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(snap.gauges.len() as u32).to_le_bytes());
    for (name, value) in &snap.gauges {
        put_bytes(out, name.as_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(snap.histograms.len() as u32).to_le_bytes());
    for (name, hist) in &snap.histograms {
        put_bytes(out, name.as_bytes());
        out.extend_from_slice(&hist.max.to_le_bytes());
        for bucket in &hist.buckets {
            out.extend_from_slice(&bucket.to_le_bytes());
        }
    }
}

fn decode_registry(r: &mut Reader<'_>) -> Result<RegistrySnapshot, WireError> {
    let n_counters = r.count(MAX_INSTRUMENTS)?;
    let counters = (0..n_counters)
        .map(|_| Ok((read_string(r)?, r.u64()?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    let n_gauges = r.count(MAX_INSTRUMENTS)?;
    // Gauges are signed; the wire carries their two's-complement bits.
    let gauges = (0..n_gauges)
        .map(|_| Ok((read_string(r)?, r.u64()? as i64)))
        .collect::<Result<Vec<_>, WireError>>()?;
    let n_histograms = r.count(MAX_INSTRUMENTS)?;
    let histograms = (0..n_histograms)
        .map(|_| {
            let name = read_string(r)?;
            let max = r.u64()?;
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for bucket in &mut buckets {
                *bucket = r.u64()?;
            }
            Ok((name, HistogramSnapshot { buckets, max }))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(RegistrySnapshot {
        counters,
        gauges,
        histograms,
    })
}

impl Msg {
    /// Serializes the message into its frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut out = Vec::new();
        let kind = match self {
            Msg::Submit(job) => {
                out.extend_from_slice(&job.input.seed.to_le_bytes());
                out.extend_from_slice(&job.input.intensity.to_le_bytes());
                put_bytes(&mut out, &job.input.payload);
                match job.fault {
                    None => out.push(0),
                    Some(FaultSpec { kind, trigger }) => {
                        match kind {
                            FaultKind::BufferOverflow { delta, fill } => {
                                out.push(1);
                                out.extend_from_slice(&delta.to_le_bytes());
                                out.push(fill);
                            }
                            FaultKind::DanglingFree { lag } => {
                                out.push(2);
                                out.extend_from_slice(&lag.to_le_bytes());
                            }
                        }
                        out.extend_from_slice(&trigger.raw().to_le_bytes());
                    }
                }
                kind::SUBMIT
            }
            Msg::Accepted { job } => {
                out.extend_from_slice(&job.to_le_bytes());
                kind::ACCEPTED
            }
            Msg::Verdict { job, verdict } => {
                out.extend_from_slice(&job.to_le_bytes());
                encode_verdict(&mut out, verdict);
                kind::VERDICT
            }
            Msg::Outcome(o) => {
                out.extend_from_slice(&o.job.to_le_bytes());
                out.extend_from_slice(&o.digest.to_le_bytes());
                out.push(u8::from(o.error_observed));
                out.push(u8::from(o.unanimous));
                put_bytes(&mut out, &o.winner);
                put_indices(&mut out, &o.agreeing);
                put_indices(&mut out, &o.dissenting);
                assert!(
                    o.replicas.len() <= MAX_INDICES as usize,
                    "replica list exceeds the wire cap (encoder bug)"
                );
                out.extend_from_slice(&(o.replicas.len() as u32).to_le_bytes());
                for r in &o.replicas {
                    out.extend_from_slice(&r.seed.to_le_bytes());
                    out.push(u8::from(r.completed));
                    out.push(u8::from(r.failed));
                    out.extend_from_slice(&r.signals.to_le_bytes());
                    out.extend_from_slice(&r.output_len.to_le_bytes());
                    out.extend_from_slice(&r.output_digest.to_le_bytes());
                }
                put_bytes(&mut out, o.patches.as_bytes());
                out.push(u8::from(o.isolated));
                kind::OUTCOME
            }
            Msg::Report(bytes) => {
                put_bytes(&mut out, bytes);
                kind::REPORT
            }
            Msg::ReportAck(a) => {
                out.push(u8::from(a.duplicate));
                out.extend_from_slice(&a.shards_touched.to_le_bytes());
                out.extend_from_slice(&a.observations.to_le_bytes());
                out.extend_from_slice(&a.epoch.to_le_bytes());
                kind::REPORT_ACK
            }
            Msg::EpochPull { have } => {
                out.extend_from_slice(&have.to_le_bytes());
                kind::EPOCH_PULL
            }
            Msg::Epoch { epoch } => {
                match epoch {
                    None => out.push(0),
                    Some(text) => {
                        out.push(1);
                        put_bytes(&mut out, text.as_bytes());
                    }
                }
                kind::EPOCH
            }
            Msg::Error { message } => {
                put_bytes(&mut out, message.as_bytes());
                kind::ERROR
            }
            Msg::HealthPull => kind::HEALTH_PULL,
            Msg::Health(h) => {
                out.push(u8::from(h.healthy));
                out.extend_from_slice(&h.epoch.to_le_bytes());
                out.extend_from_slice(&h.uptime_ms.to_le_bytes());
                out.extend_from_slice(&h.recoveries.to_le_bytes());
                out.push(u8::from(h.durable));
                out.extend_from_slice(&h.connections.to_le_bytes());
                kind::HEALTH
            }
            Msg::MetricsPull => kind::METRICS_PULL,
            Msg::Metrics(snap) => {
                encode_registry(&mut out, snap);
                kind::METRICS
            }
            Msg::EpochPush { epoch } => {
                put_bytes(&mut out, epoch.as_bytes());
                kind::EPOCH_PUSH
            }
        };
        Frame::new(kind, out)
    }

    /// Parses a frame's payload by its kind byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadKind`] for an unknown kind (offset 4, the kind
    /// byte's position in the encoded frame); otherwise the payload
    /// decoder's error, offsets relative to the payload start.
    pub fn from_frame(frame: &Frame) -> Result<Msg, WireError> {
        let mut r = Reader::new(&frame.payload);
        let msg = match frame.kind {
            kind::SUBMIT => {
                let seed = r.u64()?;
                let intensity = r.u32()?;
                let payload = read_blob(&mut r)?;
                let fault_at = r.pos();
                let fault = match r.array::<1>()?[0] {
                    0 => None,
                    1 => {
                        let delta = r.u32()?;
                        let fill = r.array::<1>()?[0];
                        Some(FaultKind::BufferOverflow { delta, fill })
                    }
                    2 => Some(FaultKind::DanglingFree { lag: r.u64()? }),
                    kind => {
                        return Err(WireError::BadKind { at: fault_at, kind });
                    }
                }
                .map(|kind| -> Result<FaultSpec, WireError> {
                    Ok(FaultSpec {
                        kind,
                        trigger: xt_alloc::AllocTime::from_raw(r.u64()?),
                    })
                })
                .transpose()?;
                Msg::Submit(SubmitJob {
                    input: WorkloadInput {
                        seed,
                        payload,
                        intensity,
                    },
                    fault,
                })
            }
            kind::ACCEPTED => Msg::Accepted { job: r.u64()? },
            kind::VERDICT => Msg::Verdict {
                job: r.u64()?,
                verdict: decode_verdict(&mut r)?,
            },
            kind::OUTCOME => {
                let job = r.u64()?;
                let digest = r.u128()?;
                let error_observed = r.bool()?;
                let unanimous = r.bool()?;
                let winner = read_blob(&mut r)?;
                let agreeing = read_indices(&mut r)?;
                let dissenting = read_indices(&mut r)?;
                let n_replicas = r.count(MAX_INDICES)?;
                let replicas = (0..n_replicas)
                    .map(|_| {
                        Ok(WireReplica {
                            seed: r.u64()?,
                            completed: r.bool()?,
                            failed: r.bool()?,
                            signals: r.u32()?,
                            output_len: r.u32()?,
                            output_digest: r.u128()?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                let patches = read_string(&mut r)?;
                let isolated = r.bool()?;
                Msg::Outcome(WireOutcome {
                    job,
                    digest,
                    error_observed,
                    unanimous,
                    winner,
                    agreeing,
                    dissenting,
                    replicas,
                    patches,
                    isolated,
                })
            }
            kind::REPORT => Msg::Report(read_blob(&mut r)?),
            kind::REPORT_ACK => Msg::ReportAck(WireReceipt {
                duplicate: r.bool()?,
                shards_touched: r.u32()?,
                observations: r.u32()?,
                epoch: r.u64()?,
            }),
            kind::EPOCH_PULL => Msg::EpochPull { have: r.u64()? },
            kind::EPOCH => Msg::Epoch {
                epoch: if r.bool()? {
                    Some(read_string(&mut r)?)
                } else {
                    None
                },
            },
            kind::ERROR => Msg::Error {
                message: read_string(&mut r)?,
            },
            kind::HEALTH_PULL => Msg::HealthPull,
            kind::HEALTH => Msg::Health(WireHealth {
                healthy: r.bool()?,
                epoch: r.u64()?,
                uptime_ms: r.u64()?,
                recoveries: r.u64()?,
                durable: r.bool()?,
                connections: r.u64()?,
            }),
            kind::METRICS_PULL => Msg::MetricsPull,
            kind::METRICS => Msg::Metrics(decode_registry(&mut r)?),
            kind::EPOCH_PUSH => Msg::EpochPush {
                epoch: read_string(&mut r)?,
            },
            kind => return Err(WireError::BadKind { at: 4, kind }),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::AllocTime;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Submit(SubmitJob {
                input: WorkloadInput::with_seed(7)
                    .payload(b"GET /cache".to_vec())
                    .intensity(3),
                fault: None,
            }),
            Msg::Submit(SubmitJob {
                input: WorkloadInput::with_seed(9),
                fault: Some(FaultSpec {
                    kind: FaultKind::BufferOverflow {
                        delta: 20,
                        fill: 0xEE,
                    },
                    trigger: AllocTime::from_raw(239),
                }),
            }),
            Msg::Submit(SubmitJob {
                input: WorkloadInput::with_seed(0),
                fault: Some(FaultSpec {
                    kind: FaultKind::DanglingFree { lag: 17 },
                    trigger: AllocTime::from_raw(90),
                }),
            }),
            Msg::Accepted { job: 42 },
            Msg::Verdict {
                job: 42,
                verdict: None,
            },
            Msg::Verdict {
                job: 43,
                verdict: Some(WireVerdict {
                    digest: 0xDEAD_BEEF_DEAD_BEEF_u128,
                    agreeing: vec![0, 2],
                    outstanding: 1,
                    output: b"agreed output".to_vec(),
                }),
            },
            Msg::Outcome(WireOutcome {
                job: 43,
                digest: 0x00D1_6E57,
                error_observed: true,
                unanimous: false,
                winner: b"winning".to_vec(),
                agreeing: vec![0, 1],
                dissenting: vec![2],
                replicas: vec![WireReplica {
                    seed: 5,
                    completed: true,
                    failed: false,
                    signals: 2,
                    output_len: 7,
                    output_digest: 0xAB,
                }],
                patches: "# exterminator runtime patches v1\npad 0000f00d 8\n".into(),
                isolated: true,
            }),
            Msg::Report(vec![1, 2, 3]),
            Msg::ReportAck(WireReceipt {
                duplicate: false,
                shards_touched: 2,
                observations: 5,
                epoch: 3,
            }),
            Msg::EpochPull { have: 2 },
            Msg::Epoch { epoch: None },
            Msg::Epoch {
                epoch: Some("# exterminator patch epoch v1\n".into()),
            },
            Msg::Error {
                message: "bad report".into(),
            },
            Msg::HealthPull,
            Msg::Health(WireHealth {
                healthy: true,
                epoch: 4,
                uptime_ms: 125_000,
                recoveries: 1,
                durable: true,
                connections: 3,
            }),
            Msg::EpochPush {
                epoch: "# exterminator patch epoch v1\n".into(),
            },
            Msg::MetricsPull,
            Msg::Metrics(RegistrySnapshot::default()),
            Msg::Metrics(RegistrySnapshot {
                counters: vec![("fleet/reports".into(), 12), ("net/frames_in".into(), 99)],
                gauges: vec![("net/connections".into(), -1)],
                histograms: vec![("frontend/exec".into(), {
                    let mut hist = HistogramSnapshot::default();
                    hist.buckets[9] = 4;
                    hist.buckets[12] = 1;
                    hist.max = 3_600;
                    hist
                })],
            }),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let frame = msg.to_frame();
            // Through bytes too, not just the in-memory frame.
            let decoded = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(Msg::from_frame(&decoded).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn rejects_unknown_kinds() {
        let frame = Frame::new(0xEE, Vec::new());
        assert!(matches!(
            Msg::from_frame(&frame),
            Err(WireError::BadKind { kind: 0xEE, .. })
        ));
        // Unknown fault tag inside a submit payload.
        let mut frame = Msg::Submit(SubmitJob {
            input: WorkloadInput::with_seed(1),
            fault: None,
        })
        .to_frame();
        let last = frame.payload.len() - 1;
        frame.payload[last] = 9;
        assert!(matches!(
            Msg::from_frame(&frame),
            Err(WireError::BadKind { kind: 9, .. })
        ));
    }

    /// Truncation fuzz over every message payload: every prefix must fail
    /// loudly with an offset-bearing error, never panic, never succeed.
    #[test]
    fn rejects_truncation_at_every_payload_length() {
        for msg in samples() {
            let frame = msg.to_frame();
            for len in 0..frame.payload.len() {
                let trunc = Frame::new(frame.kind, frame.payload[..len].to_vec());
                assert!(
                    Msg::from_frame(&trunc).is_err(),
                    "{msg:?}: payload prefix of {len} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_payload_garbage() {
        for msg in samples() {
            let mut frame = msg.to_frame();
            frame.payload.push(0);
            assert!(
                matches!(Msg::from_frame(&frame), Err(WireError::Trailing { .. })),
                "{msg:?} accepted a trailing byte"
            );
        }
    }
}
