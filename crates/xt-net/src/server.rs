//! The network front door: a readiness-driven TCP server wrapping a
//! [`PoolFrontend`].
//!
//! One [`NetFrontend`] owns one [`PoolFrontend`] (K replica pools behind
//! bounded queues) plus one [`FleetService`], and serves both over
//! framed TCP connections. Since the event-loop rewrite the server is
//! **not** thread-per-connection: one poller thread owns every socket
//! and multiplexes them through [`xt_poll::Poller`] (epoll on Linux, a
//! portable level-triggered fallback elsewhere), so tens of thousands
//! of mostly-idle connections cost file descriptors and per-connection
//! state — not threads.
//!
//! * **Per-connection state machines.** Every socket is non-blocking.
//!   Incoming bytes accumulate in a per-connection read buffer and are
//!   cut into frames by [`Frame::parse_prefix`] (the incremental
//!   sibling of the blocking codec); outgoing frames queue in a
//!   per-connection write queue that drains on writability. Partial
//!   reads and partial writes are ordinary states, not errors.
//! * **Bounded everything (backpressure discipline preserved).** The
//!   accept path stops pulling from the kernel backlog at
//!   `max_connections` (the listener is deregistered until a slot
//!   frees — the event-loop analogue of the old blocking accept
//!   budget). Per connection, at most [`MAX_CONN_INFLIGHT`] worker
//!   jobs run concurrently and at most [`WRITE_QUEUE_SOFT`] reply
//!   bytes may be queued before the server simply *stops reading* that
//!   connection — TCP backpressure does the rest, exactly the
//!   burst-degrades-to-waiting discipline of the front-end's bounded
//!   queues. Epoch pushes to a client more than [`WRITE_QUEUE_HARD`]
//!   behind are dropped (counted in `net/pushes_dropped`); such a
//!   client still converges via [`Msg::EpochPull`].
//! * **A worker pool, so the poller never blocks.** Frame parsing and
//!   cheap pulls (epoch/health/metrics) are answered on the poller
//!   thread; [`Msg::Submit`] and [`Msg::Report`] — which block on
//!   bounded pool queues, replica execution, and WAL appends — are
//!   dispatched to a fixed pool of `workers` threads. A worker carries
//!   a submission end-to-end (accept → streamed verdict → finalized
//!   outcome), so each job's frames stay in order; completions return
//!   to the poller through a notify queue.
//! * **Determinism survives the wire.** Every submission goes through
//!   [`PoolFrontend::submit`], which assigns the global sequence number
//!   that seeds the replicas — so *which connection* carried an input,
//!   and how readiness events interleaved, decides only arrival order
//!   (nondeterminism a local concurrent submitter has too), never an
//!   outcome byte. `xt-net/tests/net.rs` pins remote outcomes
//!   byte-identical to in-process serial runs.
//! * **Server-pushed epochs.** An epoch watcher thread parks in
//!   [`FleetService::wait_epoch_newer`]; the moment a `PatchEpoch`
//!   publishes it loads the epoch into the server's own pools and fans
//!   a [`Msg::EpochPush`] frame down every live connection (per-push
//!   propagation latency lands in the `net/epoch_push` histogram).
//!   Remote reports still flow through the fleet service
//!   ([`Msg::Report`] → ingest → receipt), but the old
//!   per-report `latest()` poll in the bridge path is retired: the
//!   worker re-syncs the front-end only when a receipt proves the
//!   epoch number advanced, and clients get the new epoch pushed
//!   instead of polling for it.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exterminator::frontend::{FrontendConfig, PoolFrontend};
use xt_fleet::frame::Frame;
use xt_fleet::{
    bridge, DurabilityConfig, DurabilityError, DurableFleet, FleetConfig, FleetMetrics,
    FleetService, IngestReceipt, Storage,
};
use xt_obs::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use xt_patch::PatchTable;
use xt_poll::{Interest, Poller};
use xt_workloads::Workload;

use crate::proto::{Msg, SubmitJob, WireHealth, WireOutcome, WireReceipt, WireVerdict};

/// Upper bound on the poller's sleep: shutdown latency and the epoch
/// watcher's stop-flag recheck cadence are bounded by this.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// The poll token reserved for the listener; connections get tokens
/// from a monotone counter starting at 1 (never reused, so a late
/// worker completion can never reach a *different* connection).
const LISTENER_TOKEN: usize = 0;

/// Worker jobs in flight per connection before the poller stops
/// reading it (the event-loop analogue of the old one-reader-thread
/// natural limit; a pipelining client beyond this waits in TCP).
const MAX_CONN_INFLIGHT: usize = 64;

/// Queued write bytes per connection above which the poller stops
/// reading that connection (replies outstanding ≈ requests admitted).
const WRITE_QUEUE_SOFT: usize = 1 << 20;

/// Queued write bytes per connection above which unsolicited pushes
/// (epoch broadcasts) are dropped rather than queued. Replies are
/// never dropped — the soft cap stops producing them first.
const WRITE_QUEUE_HARD: usize = 4 << 20;

/// Bytes per non-blocking read pass.
const READ_CHUNK: usize = 16 * 1024;

/// Durable-mode configuration for a [`NetFrontend`]: where the fleet's
/// evidence WAL and snapshots live, and how often they compact.
#[derive(Clone)]
pub struct NetDurability {
    /// The storage the WAL and snapshots are written to (e.g.
    /// [`DirStorage`](xt_fleet::DirStorage) over a data directory).
    /// Binding *recovers* from whatever this storage holds before the
    /// first connection is accepted.
    pub storage: Arc<dyn Storage>,
    /// Snapshot cadence and WAL policy.
    pub config: DurabilityConfig,
}

impl std::fmt::Debug for NetDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDurability")
            .field("storage", &"<dyn Storage>")
            .field("config", &self.config)
            .finish()
    }
}

/// Configuration for a [`NetFrontend`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The wrapped pool front-end (pools, replicas, queues, routing).
    pub frontend: FrontendConfig,
    /// The co-located fleet service reports are ingested into.
    pub fleet: FleetConfig,
    /// Connection budget: sockets served concurrently. Beyond it the
    /// listener is parked (backpressure into the kernel backlog), it
    /// does not spawn or grow anything.
    pub max_connections: usize,
    /// Blocking-work threads: submissions and report ingests run here
    /// so the poller thread never blocks on pool queues, replica
    /// execution, or WAL appends. Fixed size — the thread count does
    /// not scale with connections.
    pub workers: usize,
    /// Initial patch table the pools start from.
    pub patches: PatchTable,
    /// When set, the fleet service is wrapped in a
    /// [`DurableFleet`]: binding recovers the evidence state from
    /// storage, every remote report is WAL-logged before it folds, and a
    /// graceful shutdown writes a final compacted snapshot.
    pub durability: Option<NetDurability>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            frontend: FrontendConfig::default(),
            fleet: FleetConfig::default(),
            max_connections: 32,
            workers: 4,
            patches: PatchTable::new(),
            durability: None,
        }
    }
}

/// The server's fleet: either a bare in-memory service or the durable
/// wrapper. Reads go to the same [`FleetService`] either way; the split
/// exists so the ingest path can route through the WAL.
enum FleetBackend {
    Plain(Arc<FleetService>),
    Durable(DurableFleet<Arc<dyn Storage>>),
}

impl FleetBackend {
    fn service(&self) -> &FleetService {
        match self {
            FleetBackend::Plain(service) => service,
            FleetBackend::Durable(fleet) => fleet.service(),
        }
    }

    fn service_handle(&self) -> Arc<FleetService> {
        match self {
            FleetBackend::Plain(service) => Arc::clone(service),
            FleetBackend::Durable(fleet) => fleet.service_handle(),
        }
    }

    fn ingest(&self, bytes: &[u8]) -> Result<IngestReceipt, DurabilityError> {
        match self {
            FleetBackend::Plain(service) => Ok(service.ingest(bytes)?),
            FleetBackend::Durable(fleet) => fleet.ingest(bytes),
        }
    }

    fn metrics(&self) -> FleetMetrics {
        match self {
            FleetBackend::Plain(service) => service.metrics(),
            FleetBackend::Durable(fleet) => fleet.metrics(),
        }
    }
}

/// Aggregate server counters (monotone; read via [`NetFrontend::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs submitted over the wire.
    pub jobs: u64,
    /// Run reports accepted into the fleet service.
    pub reports: u64,
    /// Frames or nested reports rejected as malformed or out of
    /// protocol.
    pub rejected: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    jobs: AtomicU64,
    reports: AtomicU64,
    rejected: AtomicU64,
}

/// The wire layer's own observability: frame traffic, server-side
/// request round-trip latency, live connections, write-queue depth,
/// epoch-push propagation, and the server's start instant (for
/// health-probe uptime). Purely operational — like every other
/// instrument, none of it feeds deterministic digests.
struct NetObs {
    registry: Arc<Registry>,
    /// Server-side request→reply latency (`net/wire_rtt`), recorded
    /// per dispatched request frame (at reply hand-off).
    wire_rtt: Arc<Histogram>,
    /// Epoch publication → push frame handed to a connection's socket
    /// layer (`net/epoch_push`), recorded once per live connection per
    /// published epoch.
    epoch_push: Arc<Histogram>,
    /// Frames decoded off connections (`net/frames_in`).
    frames_in: Arc<Counter>,
    /// Frames queued toward connections (`net/frames_out`), replies
    /// and pushes alike.
    frames_out: Arc<Counter>,
    /// Epoch pushes dropped at a connection over its hard write cap
    /// (`net/pushes_dropped`).
    pushes_dropped: Arc<Counter>,
    /// Live connections (`net/connections`).
    connections: Arc<Gauge>,
    /// Bytes sitting in per-connection write queues, summed
    /// (`net/write_queue_bytes`).
    write_queue: Arc<Gauge>,
    /// Worker jobs dispatched and not yet completed
    /// (`net/inflight_jobs`).
    inflight: Arc<Gauge>,
    started: Instant,
}

impl NetObs {
    fn new() -> Self {
        let registry = Registry::new();
        NetObs {
            wire_rtt: registry.histogram("net/wire_rtt"),
            epoch_push: registry.histogram("net/epoch_push"),
            frames_in: registry.counter("net/frames_in"),
            frames_out: registry.counter("net/frames_out"),
            pushes_dropped: registry.counter("net/pushes_dropped"),
            connections: registry.gauge("net/connections"),
            write_queue: registry.gauge("net/write_queue_bytes"),
            inflight: registry.gauge("net/inflight_jobs"),
            started: Instant::now(),
            registry,
        }
    }
}

/// Blocking work dispatched off the poller thread.
enum Work {
    Submit {
        conn: usize,
        job: Box<SubmitJob>,
        at: Instant,
    },
    Report {
        conn: usize,
        bytes: Vec<u8>,
        at: Instant,
    },
}

/// What flows back from workers (and the epoch watcher) to the poller.
enum Notice {
    /// Encoded frames for one connection. `done` marks the completion
    /// of one dispatched [`Work`] item (releases its inflight slot).
    Frames {
        conn: usize,
        frames: Vec<Vec<u8>>,
        done: bool,
    },
    /// One encoded frame for *every* live connection (epoch push).
    Broadcast { bytes: Vec<u8>, published: Instant },
}

/// The worker↔poller mailbox plus the poller handle that wakes it.
struct Mailbox {
    notices: Mutex<Vec<Notice>>,
    poller: Arc<Poller>,
}

impl Mailbox {
    fn locked(&self) -> MutexGuard<'_, Vec<Notice>> {
        // Poison recovery: a panicking worker mid-push leaves at worst
        // a missing notice (its work item is lost with it); the vec
        // itself is push-only and structurally sound.
        self.notices.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn post(&self, notice: Notice) {
        self.locked().push(notice);
        let _ = self.poller.notify();
    }

    fn post_frames(&self, conn: usize, frames: Vec<Vec<u8>>, done: bool) {
        self.post(Notice::Frames { conn, frames, done });
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Accumulated unparsed inbound bytes (at most one partial frame
    /// plus one read chunk, since complete frames are cut out eagerly).
    read_buf: Vec<u8>,
    /// Encoded frames awaiting the socket; the front frame may be
    /// partially written (`write_pos` bytes already gone).
    queue: VecDeque<Vec<u8>>,
    write_pos: usize,
    queued_bytes: usize,
    /// Worker jobs dispatched for this connection, not yet completed.
    inflight: usize,
    /// The interest set currently registered with the poller.
    interest: Interest,
    /// Flush the queue, then close (protocol-error goodbyes).
    closing: bool,
    /// Close now; reaped at the end of the poll iteration.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            queue: VecDeque::new(),
            write_pos: 0,
            queued_bytes: 0,
            inflight: 0,
            interest: Interest::READABLE,
            closing: false,
            dead: false,
        }
    }

    /// The interest this connection's state wants: readable unless it
    /// is saying goodbye or over an inflight/write cap (read-gating is
    /// the backpressure), writable only while the queue is non-empty.
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing
                && self.inflight < MAX_CONN_INFLIGHT
                && self.queued_bytes < WRITE_QUEUE_SOFT,
            writable: !self.queue.is_empty(),
        }
    }
}

/// The running server. Binding spawns a poller thread that owns the
/// listener, every connection, and the worker pool; dropping the handle
/// (or calling [`NetFrontend::shutdown`]) stops the loop, closes every
/// socket, and joins everything.
pub struct NetFrontend {
    addr: SocketAddr,
    service: Arc<FleetService>,
    backend: Arc<FleetBackend>,
    counters: Arc<Counters>,
    obs: Arc<NetObs>,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    handle: Option<JoinHandle<()>>,
}

impl NetFrontend {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `workload` behind a fresh [`PoolFrontend`].
    ///
    /// # Errors
    ///
    /// Propagates listener binding or poller creation failures; in
    /// durable mode, also storage or recovery failures (a corrupt
    /// snapshot, an incompatible grid) — a durable server refuses to
    /// start blind rather than silently forgetting the fleet's
    /// evidence.
    pub fn bind<W>(workload: W, addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Self>
    where
        W: Workload + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        let backend = Arc::new(match config.durability.clone() {
            Some(d) => FleetBackend::Durable(
                DurableFleet::open(d.storage, config.fleet, d.config).map_err(io::Error::other)?,
            ),
            None => FleetBackend::Plain(Arc::new(FleetService::new(config.fleet))),
        });
        let service = backend.service_handle();
        let counters = Arc::new(Counters::default());
        let obs = Arc::new(NetObs::new());
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let backend = Arc::clone(&backend);
            let counters = Arc::clone(&counters);
            let obs = Arc::clone(&obs);
            let stop = Arc::clone(&stop);
            let poller = Arc::clone(&poller);
            std::thread::spawn(move || {
                serve(
                    &workload, &listener, &config, &backend, &counters, &obs, &stop, poller,
                );
            })
        };
        Ok(NetFrontend {
            addr,
            service,
            backend,
            counters,
            obs,
            stop,
            poller,
            handle: Some(handle),
        })
    }

    /// The bound address remote clients connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The co-located fleet service (epoch inspection, direct ingest).
    #[must_use]
    pub fn service(&self) -> &Arc<FleetService> {
        &self.service
    }

    /// Fleet-layer metrics. In durable mode the durability counters
    /// (`wal_appends`, `snapshots_written`, `recoveries`,
    /// `torn_tail_truncated`) are live; in plain mode they read 0.
    #[must_use]
    pub fn fleet_metrics(&self) -> FleetMetrics {
        self.backend.metrics()
    }

    /// The wire layer's metrics registry (`net/wire_rtt`,
    /// `net/epoch_push`, `net/frames_in`, `net/frames_out`,
    /// `net/connections`, `net/write_queue_bytes`, `net/inflight_jobs`,
    /// `net/pushes_dropped`). The *merged* cross-layer snapshot — this
    /// plus the front-end's per-job histograms and the fleet's — is
    /// what [`Msg::MetricsPull`] returns over the wire; see
    /// [`NetFrontend::metrics_snapshot`] for the server-side subset.
    #[must_use]
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Fleet + wire layers' merged snapshot, available without a
    /// connection. The front-end's per-job histograms
    /// (`frontend/...`) live inside the server thread's scope and are
    /// only reachable through a wire [`Msg::MetricsPull`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.service.observability().snapshot();
        snap.merge(self.backend.metrics().counters_snapshot());
        snap.merge(self.obs.registry.snapshot());
        snap
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            reports: self.counters.reports.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    /// Stops the event loop, closes every connection, waits for
    /// in-flight jobs and the pools to shut down, and joins the server
    /// thread. Equivalent to dropping the handle; this form marks the
    /// teardown explicitly.
    ///
    /// # Panics
    ///
    /// Re-raises a server-side panic (e.g. a replica worker crash
    /// propagated through the worker pool).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the poller directly; the throwaway connect is a second
        // belt-and-braces wake that also covers a poller wedged before
        // its first wait.
        let _ = self.poller.notify();
        let _ = TcpStream::connect(self.addr);
        if let Err(payload) = handle.join() {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for NetFrontend {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The server thread body: owns the front-end for its whole life, runs
/// the poll loop with a worker pool and epoch watcher beside it, and
/// tears the pools down once the loop exits.
#[allow(clippy::too_many_arguments)]
fn serve<W: Workload + Sync>(
    workload: &W,
    listener: &TcpListener,
    config: &NetConfig,
    backend: &FleetBackend,
    counters: &Counters,
    obs: &NetObs,
    stop: &AtomicBool,
    poller: Arc<Poller>,
) {
    let mailbox = Mailbox {
        notices: Mutex::new(Vec::new()),
        poller,
    };
    // The highest epoch number already loaded into the front-end's
    // pools; lets the report path skip the old per-report epoch poll.
    let synced_epoch = AtomicU64::new(0);
    std::thread::scope(|outer| {
        let frontend = PoolFrontend::scoped(
            outer,
            workload,
            config.frontend.clone(),
            config.patches.clone(),
        );
        let (work_tx, work_rx) = mpsc::channel::<Work>();
        let work_rx = Mutex::new(work_rx);
        std::thread::scope(|inner| {
            for _ in 0..config.workers.max(1) {
                inner.spawn(|| {
                    worker_loop(
                        &work_rx,
                        &frontend,
                        backend,
                        counters,
                        obs,
                        &mailbox,
                        &synced_epoch,
                    );
                });
            }
            inner.spawn(|| {
                epoch_watcher(backend.service(), &frontend, &mailbox, stop, &synced_epoch);
            });
            // Runs on this thread; consumes `work_tx`, so the workers'
            // channel closes (and they drain and exit) when it returns.
            poll_loop(
                listener, config, backend, counters, obs, stop, &mailbox, &frontend, work_tx,
            );
        });
        frontend.shutdown();
    });
    // Graceful exit: compact what the WAL holds so the next start
    // replays nothing. Best-effort — a failure here only costs the next
    // open a longer replay, never correctness.
    if let FleetBackend::Durable(fleet) = backend {
        let _ = fleet.snapshot();
    }
}

/// A worker: pulls blocking work items and runs each end-to-end,
/// posting reply frames back to the poller as they become available.
fn worker_loop(
    work_rx: &Mutex<mpsc::Receiver<Work>>,
    frontend: &PoolFrontend<'_>,
    backend: &FleetBackend,
    counters: &Counters,
    obs: &NetObs,
    mailbox: &Mailbox,
    synced_epoch: &AtomicU64,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let work = {
            let rx = work_rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(work) = work else {
            return; // channel closed: the poll loop exited
        };
        match work {
            Work::Submit { conn, job, at } => {
                let ticket = frontend.submit(&job.input, job.fault);
                counters.jobs.fetch_add(1, Ordering::Relaxed);
                let seq = ticket.job();
                // Record before posting: once the reply is visible to
                // the poller the client may already be pulling metrics,
                // and the sample must be in the histogram it reads.
                obs.wire_rtt.record_duration(at.elapsed());
                mailbox.post_frames(
                    conn,
                    vec![Msg::Accepted { job: seq }.to_frame().encode()],
                    false,
                );
                // Streamed verdict: pushed the moment the voter
                // declares, while stragglers still run.
                let verdict = ticket.wait_verdict();
                mailbox.post_frames(
                    conn,
                    vec![Msg::Verdict {
                        job: seq,
                        verdict: verdict.as_ref().map(WireVerdict::from_early),
                    }
                    .to_frame()
                    .encode()],
                    false,
                );
                let result = ticket.wait();
                mailbox.post_frames(
                    conn,
                    vec![Msg::Outcome(WireOutcome::from_pool(&result))
                        .to_frame()
                        .encode()],
                    true,
                );
            }
            Work::Report { conn, bytes, at } => {
                // The durable backend WAL-logs before folding.
                let reply = match backend.ingest(&bytes) {
                    Ok(receipt) => {
                        counters.reports.fetch_add(1, Ordering::Relaxed);
                        // Heal the server's own pools — but only when
                        // the receipt proves the epoch advanced past
                        // what the front-end already runs. The old
                        // unconditional per-report `latest()` poll is
                        // retired; the epoch watcher covers pushes.
                        if receipt.epoch > synced_epoch.load(Ordering::Acquire) {
                            bridge::sync_frontend(backend.service(), frontend);
                            synced_epoch.fetch_max(receipt.epoch, Ordering::AcqRel);
                        }
                        Msg::ReportAck(WireReceipt {
                            duplicate: receipt.duplicate,
                            shards_touched: receipt.shards_touched as u32,
                            observations: receipt.observations as u32,
                            epoch: receipt.epoch,
                        })
                    }
                    Err(e) => {
                        // Rate-limited reports land here too: the
                        // admission refusal crosses back as an `Error`
                        // frame without dropping the connection, so a
                        // throttled client can back off and retry.
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        Msg::Error {
                            message: e.to_string(),
                        }
                    }
                };
                // Same record-before-post discipline as the submit arm.
                obs.wire_rtt.record_duration(at.elapsed());
                mailbox.post_frames(conn, vec![reply.to_frame().encode()], true);
            }
        }
    }
}

/// The epoch watcher: parks on the service's epoch signal and, per
/// fresh epoch, syncs the server's own pools and broadcasts the push
/// frame. The park is bounded by [`POLL_INTERVAL`] so the stop flag is
/// honored promptly.
fn epoch_watcher(
    service: &FleetService,
    frontend: &PoolFrontend<'_>,
    mailbox: &Mailbox,
    stop: &AtomicBool,
    synced_epoch: &AtomicU64,
) {
    // A durable server may recover mid-history: treat the recovered
    // epoch as already-known (it is loaded into the pools at bind via
    // the config's patch table only if the caller did so; sync here to
    // be safe) and only broadcast genuinely new publications.
    let mut have = service.latest().number;
    if have > 0 {
        bridge::sync_frontend(service, frontend);
        synced_epoch.fetch_max(have, Ordering::AcqRel);
    }
    while !stop.load(Ordering::Acquire) {
        let Some(epoch) = service.wait_epoch_newer(have, POLL_INTERVAL) else {
            continue;
        };
        have = epoch.number;
        frontend.load_epoch(&epoch);
        synced_epoch.fetch_max(have, Ordering::AcqRel);
        let bytes = Msg::EpochPush {
            epoch: epoch.to_text(),
        }
        .to_frame()
        .encode();
        mailbox.post(Notice::Broadcast {
            bytes,
            published: Instant::now(),
        });
    }
}

/// Everything a poll-loop helper needs a view of.
struct Ctx<'a, 'scope> {
    backend: &'a FleetBackend,
    counters: &'a Counters,
    obs: &'a NetObs,
    frontend: &'a PoolFrontend<'scope>,
    work_tx: &'a mpsc::Sender<Work>,
}

/// The poller thread's main loop: readiness in, frames parsed and
/// dispatched, completions and broadcasts out.
#[allow(clippy::too_many_arguments)]
fn poll_loop(
    listener: &TcpListener,
    config: &NetConfig,
    backend: &FleetBackend,
    counters: &Counters,
    obs: &NetObs,
    stop: &AtomicBool,
    mailbox: &Mailbox,
    frontend: &PoolFrontend<'_>,
    work_tx: mpsc::Sender<Work>,
) {
    let poller = &*mailbox.poller;
    if poller
        .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)
        .is_err()
    {
        return;
    }
    let max_connections = config.max_connections.max(1);
    let ctx = Ctx {
        backend,
        counters,
        obs,
        frontend,
        work_tx: &work_tx,
    };
    let mut conns: BTreeMap<usize, Conn> = BTreeMap::new();
    let mut next_token = LISTENER_TOKEN + 1;
    let mut listener_armed = true;
    let mut events = Vec::new();
    // Tokens an event or notice reached this cycle: the only
    // connections whose death or interest can have changed, so the
    // end-of-cycle bookkeeping walks this list, not the population —
    // with 10k mostly-idle connections the difference decides how fast
    // the busy few (and the accept ramp) are served.
    let mut touched: Vec<usize> = Vec::new();
    loop {
        let _ = poller.wait(&mut events, Some(POLL_INTERVAL));
        if stop.load(Ordering::Acquire) {
            break;
        }

        // Worker completions and epoch broadcasts first: they free
        // inflight slots, which can re-open read gates below.
        let notices = std::mem::take(&mut *mailbox.locked());
        for notice in notices {
            match notice {
                Notice::Frames { conn, frames, done } => {
                    if done {
                        obs.inflight.add(-1);
                    }
                    if let Some(c) = conns.get_mut(&conn) {
                        if done {
                            c.inflight = c.inflight.saturating_sub(1);
                        }
                        for bytes in frames {
                            enqueue(c, bytes, obs);
                        }
                        drain_writes(c, obs);
                        touched.push(conn);
                    }
                }
                Notice::Broadcast { bytes, published } => {
                    for (&token, c) in conns.iter_mut() {
                        if c.closing || c.dead {
                            continue;
                        }
                        if c.queued_bytes + bytes.len() > WRITE_QUEUE_HARD {
                            obs.pushes_dropped.incr();
                            continue;
                        }
                        enqueue(c, bytes.clone(), obs);
                        drain_writes(c, obs);
                        obs.epoch_push.record_duration(published.elapsed());
                        touched.push(token);
                    }
                }
            }
        }

        // Readiness events.
        for &ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready(
                    listener,
                    poller,
                    &mut conns,
                    &mut next_token,
                    max_connections,
                    &mut listener_armed,
                    counters,
                    obs,
                    stop,
                );
            } else if let Some(c) = conns.get_mut(&ev.token) {
                if ev.writable {
                    drain_writes(c, obs);
                }
                if ev.readable && !c.dead {
                    read_ready(c, ev.token, &ctx);
                }
                if ev.error && c.queue.is_empty() {
                    c.dead = true;
                }
                touched.push(ev.token);
            }
        }

        // Reap the dead, update interests, re-arm the listener — over
        // the touched set only. Every path that marks a connection dead
        // or shifts its interest (reads, writes, worker completions,
        // broadcasts) runs above and records the token, so nothing
        // outside `touched` can need attention.
        touched.sort_unstable();
        touched.dedup();
        for token in touched.drain(..) {
            if conns.get(&token).is_some_and(|c| c.dead) {
                let c = conns.remove(&token).expect("present above");
                let _ = poller.deregister(c.stream.as_raw_fd());
                obs.connections.add(-1);
                obs.write_queue.add(-(c.queued_bytes as i64));
                // The socket closes on drop; inflight work for this
                // token finishes server-side and its notices fall on
                // the floor.
                continue;
            }
            if let Some(c) = conns.get_mut(&token) {
                let desired = c.desired_interest();
                if desired != c.interest
                    && poller
                        .reregister(c.stream.as_raw_fd(), token, desired)
                        .is_ok()
                {
                    c.interest = desired;
                }
            }
        }
        if !listener_armed && conns.len() < max_connections {
            listener_armed = poller
                .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)
                .is_ok();
        }
    }
    // Teardown: every socket closes (clients observe a disconnect);
    // in-flight jobs complete against the still-running pools.
    for (_, c) in conns {
        let _ = poller.deregister(c.stream.as_raw_fd());
        obs.connections.add(-1);
        obs.write_queue.add(-(c.queued_bytes as i64));
    }
    let _ = poller.deregister(listener.as_raw_fd());
}

/// Accepts until the kernel backlog is drained or the connection budget
/// is reached (then the listener is parked — backpressure, not drops).
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut BTreeMap<usize, Conn>,
    next_token: &mut usize,
    max_connections: usize,
    listener_armed: &mut bool,
    counters: &Counters,
    obs: &NetObs,
    stop: &AtomicBool,
) {
    loop {
        if conns.len() >= max_connections {
            if *listener_armed && poller.deregister(listener.as_raw_fd()).is_ok() {
                *listener_armed = false;
            }
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        // The shutdown path's wake connect must not count or register.
        if stop.load(Ordering::Acquire) {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        // Frames are small request/reply and push units; leaving Nagle
        // on serializes every round trip behind delayed ACKs (~100x on
        // localhost). Writes are whole frames, so there is nothing for
        // the kernel to usefully batch.
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        if poller
            .register(stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            continue;
        }
        counters.connections.fetch_add(1, Ordering::Relaxed);
        obs.connections.add(1);
        conns.insert(token, Conn::new(stream));
    }
}

/// Drains the socket into the read buffer and cuts/dispatches complete
/// frames. EOF after a frame boundary (or mid-partial-frame) is a quiet
/// close; bytes that fail frame framing close quietly too (matching
/// the blocking server: framing garbage is not a counted rejection).
fn read_ready(c: &mut Conn, token: usize, ctx: &Ctx<'_, '_>) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match c.stream.read(&mut chunk) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => {
                c.read_buf.extend_from_slice(&chunk[..n]);
                parse_ready(c, token, ctx);
                if c.dead || c.closing {
                    return;
                }
                // Gate: over an inflight or write cap, leave the rest
                // in the kernel buffer (interest update parks reads).
                if c.inflight >= MAX_CONN_INFLIGHT || c.queued_bytes >= WRITE_QUEUE_SOFT {
                    return;
                }
                if n < chunk.len() {
                    return; // drained (level-triggered: more re-fires)
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
}

/// Cuts every complete frame out of the read buffer and dispatches it.
fn parse_ready(c: &mut Conn, token: usize, ctx: &Ctx<'_, '_>) {
    while !c.dead && !c.closing {
        match Frame::parse_prefix(&c.read_buf) {
            Ok(Some((frame, used))) => {
                c.read_buf.drain(..used);
                dispatch_frame(c, token, &frame, ctx);
            }
            Ok(None) => return,
            Err(_) => {
                // Framing garbage (bad magic, oversized claim): the
                // stream is unsynchronizable — close quietly, exactly
                // like the blocking reader's torn-frame path.
                c.dead = true;
                return;
            }
        }
    }
}

/// One decoded frame: cheap pulls answered inline, blocking work handed
/// to the worker pool, protocol violations answered and flushed before
/// the connection closes.
fn dispatch_frame(c: &mut Conn, token: usize, frame: &Frame, ctx: &Ctx<'_, '_>) {
    ctx.obs.frames_in.incr();
    // Server-side round trip: frame decoded → reply handed off.
    let at = Instant::now();
    match Msg::from_frame(frame) {
        Ok(Msg::Submit(job)) => {
            c.inflight += 1;
            ctx.obs.inflight.add(1);
            let _ = ctx.work_tx.send(Work::Submit {
                conn: token,
                job: Box::new(job),
                at,
            });
        }
        Ok(Msg::Report(bytes)) => {
            c.inflight += 1;
            ctx.obs.inflight.add(1);
            let _ = ctx.work_tx.send(Work::Report {
                conn: token,
                bytes,
                at,
            });
        }
        Ok(Msg::EpochPull { have }) => {
            let latest = ctx.backend.service().latest();
            let epoch = (latest.number > have).then(|| latest.to_text());
            reply(c, &Msg::Epoch { epoch }, ctx.obs);
            ctx.obs.wire_rtt.record_duration(at.elapsed());
        }
        Ok(Msg::HealthPull) => {
            let m = ctx.backend.metrics();
            reply(
                c,
                &Msg::Health(WireHealth {
                    healthy: true,
                    epoch: m.epoch,
                    uptime_ms: ctx.obs.started.elapsed().as_millis() as u64,
                    recoveries: m.recoveries,
                    durable: matches!(ctx.backend, FleetBackend::Durable(_)),
                    connections: ctx.obs.connections.get().max(0) as u64,
                }),
                ctx.obs,
            );
            ctx.obs.wire_rtt.record_duration(at.elapsed());
        }
        Ok(Msg::MetricsPull) => {
            // Every layer's registry, merged. Names are pre-namespaced
            // (`frontend/`, `fleet/`, `net/`), so a plain merge never
            // collides.
            let mut snap = ctx.frontend.observability().snapshot();
            snap.merge(ctx.backend.service().observability().snapshot());
            snap.merge(ctx.backend.metrics().counters_snapshot());
            snap.merge(ctx.obs.registry.snapshot());
            reply(c, &Msg::Metrics(snap), ctx.obs);
            ctx.obs.wire_rtt.record_duration(at.elapsed());
        }
        Ok(other) => {
            // A server-to-client message arriving at the server is a
            // protocol violation; name it, flush, and close.
            ctx.counters.rejected.fetch_add(1, Ordering::Relaxed);
            reply(
                c,
                &Msg::Error {
                    message: format!("unexpected client message: {other:?}"),
                },
                ctx.obs,
            );
            c.closing = true;
        }
        Err(e) => {
            ctx.counters.rejected.fetch_add(1, Ordering::Relaxed);
            reply(
                c,
                &Msg::Error {
                    message: e.to_string(),
                },
                ctx.obs,
            );
            c.closing = true;
        }
    }
}

/// Queues an inline reply and drains what the socket will take now.
fn reply(c: &mut Conn, msg: &Msg, obs: &NetObs) {
    enqueue(c, msg.to_frame().encode(), obs);
    drain_writes(c, obs);
}

/// Appends one encoded frame to the connection's write queue.
fn enqueue(c: &mut Conn, bytes: Vec<u8>, obs: &NetObs) {
    obs.frames_out.incr();
    obs.write_queue.add(bytes.len() as i64);
    c.queued_bytes += bytes.len();
    c.queue.push_back(bytes);
}

/// Writes queued frames until the socket would block or the queue is
/// empty; a closing connection whose queue drains dies here.
fn drain_writes(c: &mut Conn, obs: &NetObs) {
    while let Some(front) = c.queue.front() {
        match c.stream.write(&front[c.write_pos..]) {
            Ok(n) => {
                c.write_pos += n;
                if c.write_pos == front.len() {
                    let len = front.len();
                    c.queue.pop_front();
                    c.write_pos = 0;
                    c.queued_bytes -= len;
                    obs.write_queue.add(-(len as i64));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    if c.closing && c.queue.is_empty() {
        c.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A poisoned mailbox lock (a worker panicking mid-post) must not
    /// wedge the poller or the surviving workers: every lock site
    /// recovers via `PoisonError::into_inner`.
    #[test]
    fn mailbox_recovers_from_poisoned_lock() {
        let mailbox = Arc::new(Mailbox {
            notices: Mutex::new(Vec::new()),
            poller: Arc::new(Poller::new_fallback()),
        });
        let poisoner = Arc::clone(&mailbox);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.notices.lock().unwrap();
            panic!("poison the mailbox lock");
        })
        .join();
        assert!(mailbox.notices.lock().is_err(), "lock should be poisoned");
        mailbox.post_frames(3, vec![vec![1, 2, 3]], true);
        let drained = std::mem::take(&mut *mailbox.locked());
        assert_eq!(drained.len(), 1);
        assert!(matches!(
            drained[0],
            Notice::Frames {
                conn: 3,
                done: true,
                ..
            }
        ));
    }

    /// The read gate closes (stops reading) under inflight or write
    /// pressure and re-opens when both drain — the backpressure pin.
    #[test]
    fn interest_gates_reads_under_pressure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut c = Conn::new(stream);
        assert!(c.desired_interest().readable);
        assert!(!c.desired_interest().writable);
        c.inflight = MAX_CONN_INFLIGHT;
        assert!(!c.desired_interest().readable, "inflight cap gates reads");
        c.inflight = 0;
        c.queued_bytes = WRITE_QUEUE_SOFT;
        c.queue.push_back(vec![0]);
        let want = c.desired_interest();
        assert!(!want.readable, "write backlog gates reads");
        assert!(want.writable, "queued frames want writability");
        c.queued_bytes = 0;
        c.queue.clear();
        assert!(c.desired_interest().readable, "gates re-open when drained");
    }
}
