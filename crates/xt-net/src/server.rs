//! The network front door: a TCP server wrapping a [`PoolFrontend`].
//!
//! One [`NetFrontend`] owns one [`PoolFrontend`] (K replica pools behind
//! bounded queues) plus one [`FleetService`], and serves both over
//! framed TCP connections:
//!
//! * **Thread per connection, bounded accept budget.** At most
//!   `max_connections` handlers run at once; when the budget is
//!   exhausted the accept loop *blocks* until a connection finishes —
//!   the same discipline as the front-end's bounded queues: burst
//!   traffic degrades to waiting, never to unbounded memory. Queued TCP
//!   connections sit in the kernel backlog meanwhile.
//! * **Determinism survives the wire.** Every submission goes through
//!   [`PoolFrontend::submit`], which assigns the global sequence number
//!   that seeds the replicas — so *which connection* carried an input,
//!   and how connection reads interleaved, decides only arrival order
//!   (nondeterminism a local concurrent submitter has too), never an
//!   outcome byte. `xt-net/tests/net.rs` pins remote outcomes
//!   byte-identical to in-process serial runs.
//! * **Streaming results.** Each connection runs a reader thread (frame
//!   dispatch) and a responder thread that pushes every job's
//!   [`Msg::Verdict`] the moment the streaming voter declares — while
//!   stragglers are still executing — and its [`Msg::Outcome`] after
//!   finalization. Frames within one connection are job-FIFO.
//! * **The fleet loop, over the socket.** [`Msg::Report`] frames flow
//!   through [`bridge::ingest_and_sync`]: evidence from remote clients
//!   feeds the same sharded service the in-process loop uses, and any
//!   newly published epoch immediately fans back into the server's own
//!   pools — remote failures heal the server, exactly the §6.4
//!   collaboration, with only compact reports crossing the network.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exterminator::frontend::{FrontendConfig, PoolFrontend};
use exterminator::pool::EarlyVerdict;
use xt_fleet::frame::Frame;
use xt_fleet::{
    bridge, DurabilityConfig, DurabilityError, DurableFleet, FleetConfig, FleetMetrics,
    FleetService, IngestReceipt, Storage,
};
use xt_obs::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use xt_patch::PatchTable;
use xt_workloads::Workload;

use crate::proto::{Msg, WireHealth, WireOutcome, WireReceipt, WireVerdict};

/// How often blocked server loops (idle connection reads, a full accept
/// budget) wake to recheck the shutdown flag. Shutdown latency is
/// bounded by this; steady-state cost is one spurious wakeup per idle
/// connection per interval.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Durable-mode configuration for a [`NetFrontend`]: where the fleet's
/// evidence WAL and snapshots live, and how often they compact.
#[derive(Clone)]
pub struct NetDurability {
    /// The storage the WAL and snapshots are written to (e.g.
    /// [`DirStorage`](xt_fleet::DirStorage) over a data directory).
    /// Binding *recovers* from whatever this storage holds before the
    /// first connection is accepted.
    pub storage: Arc<dyn Storage>,
    /// Snapshot cadence and WAL policy.
    pub config: DurabilityConfig,
}

impl std::fmt::Debug for NetDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDurability")
            .field("storage", &"<dyn Storage>")
            .field("config", &self.config)
            .finish()
    }
}

/// Configuration for a [`NetFrontend`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The wrapped pool front-end (pools, replicas, queues, routing).
    pub frontend: FrontendConfig,
    /// The co-located fleet service reports are ingested into.
    pub fleet: FleetConfig,
    /// Accept budget: connections served concurrently. Beyond it the
    /// accept loop blocks (backpressure), it does not spawn.
    pub max_connections: usize,
    /// Initial patch table the pools start from.
    pub patches: PatchTable,
    /// When set, the fleet service is wrapped in a
    /// [`DurableFleet`]: binding recovers the evidence state from
    /// storage, every remote report is WAL-logged before it folds, and a
    /// graceful shutdown writes a final compacted snapshot.
    pub durability: Option<NetDurability>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            frontend: FrontendConfig::default(),
            fleet: FleetConfig::default(),
            max_connections: 32,
            patches: PatchTable::new(),
            durability: None,
        }
    }
}

/// The server's fleet: either a bare in-memory service or the durable
/// wrapper. Reads go to the same [`FleetService`] either way; the split
/// exists so the ingest path can route through the WAL.
enum FleetBackend {
    Plain(Arc<FleetService>),
    Durable(DurableFleet<Arc<dyn Storage>>),
}

impl FleetBackend {
    fn service(&self) -> &FleetService {
        match self {
            FleetBackend::Plain(service) => service,
            FleetBackend::Durable(fleet) => fleet.service(),
        }
    }

    fn service_handle(&self) -> Arc<FleetService> {
        match self {
            FleetBackend::Plain(service) => Arc::clone(service),
            FleetBackend::Durable(fleet) => fleet.service_handle(),
        }
    }

    fn ingest(&self, bytes: &[u8]) -> Result<IngestReceipt, DurabilityError> {
        match self {
            FleetBackend::Plain(service) => Ok(service.ingest(bytes)?),
            FleetBackend::Durable(fleet) => fleet.ingest(bytes),
        }
    }

    fn metrics(&self) -> FleetMetrics {
        match self {
            FleetBackend::Plain(service) => service.metrics(),
            FleetBackend::Durable(fleet) => fleet.metrics(),
        }
    }
}

/// Aggregate server counters (monotone; read via [`NetFrontend::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs submitted over the wire.
    pub jobs: u64,
    /// Run reports accepted into the fleet service.
    pub reports: u64,
    /// Frames or nested reports rejected as malformed or out of
    /// protocol.
    pub rejected: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    jobs: AtomicU64,
    reports: AtomicU64,
    rejected: AtomicU64,
}

/// The wire layer's own observability: frame traffic, server-side
/// request round-trip latency, live connections, and the server's
/// start instant (for health-probe uptime). Purely operational — like
/// every other instrument, none of it feeds deterministic digests.
struct NetObs {
    registry: Arc<Registry>,
    /// Server-side request→reply latency (`net/wire_rtt`), recorded
    /// per dispatched request frame.
    wire_rtt: Arc<Histogram>,
    /// Frames decoded off connections (`net/frames_in`).
    frames_in: Arc<Counter>,
    /// Frames written to connections (`net/frames_out`), replies and
    /// pushes alike.
    frames_out: Arc<Counter>,
    /// Live connection handlers (`net/connections`).
    connections: Arc<Gauge>,
    started: Instant,
}

impl NetObs {
    fn new() -> Self {
        let registry = Registry::new();
        NetObs {
            wire_rtt: registry.histogram("net/wire_rtt"),
            frames_in: registry.counter("net/frames_in"),
            frames_out: registry.counter("net/frames_out"),
            connections: registry.gauge("net/connections"),
            started: Instant::now(),
            registry,
        }
    }
}

/// The connection budget: a counting semaphore whose empty state blocks
/// the accept loop.
struct Budget {
    state: Mutex<usize>,
    freed: Condvar,
    max: usize,
}

impl Budget {
    fn new(max: usize) -> Self {
        Budget {
            state: Mutex::new(0),
            freed: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Blocks until a connection slot is free or shutdown begins.
    /// Returns `false` on shutdown. The wait is timed (not a bare
    /// condvar sleep) so a shutdown that begins while the budget is
    /// exhausted is noticed without needing a slot to free first.
    fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut active = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while *active >= self.max {
            if stop.load(Ordering::Acquire) {
                return false;
            }
            (active, _) = self
                .freed
                .wait_timeout(active, POLL_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *active += 1;
        true
    }

    fn release(&self) {
        let mut active = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *active -= 1;
        self.freed.notify_one();
    }
}

/// Releases the budget slot when a connection handler exits, however it
/// exits.
struct SlotGuard<'a>(&'a Budget);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The running server. Binding spawns a server thread that owns the
/// listener, the pool front-end, and every connection handler; dropping
/// the handle (or calling [`NetFrontend::shutdown`]) stops accepting,
/// drains open connections, and joins everything.
pub struct NetFrontend {
    addr: SocketAddr,
    service: Arc<FleetService>,
    backend: Arc<FleetBackend>,
    counters: Arc<Counters>,
    obs: Arc<NetObs>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl NetFrontend {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `workload` behind a fresh [`PoolFrontend`].
    ///
    /// # Errors
    ///
    /// Propagates listener binding failures; in durable mode, also
    /// storage or recovery failures (a corrupt snapshot, an incompatible
    /// grid) — a durable server refuses to start blind rather than
    /// silently forgetting the fleet's evidence.
    pub fn bind<W>(workload: W, addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Self>
    where
        W: Workload + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let backend = Arc::new(match config.durability.clone() {
            Some(d) => FleetBackend::Durable(
                DurableFleet::open(d.storage, config.fleet, d.config).map_err(io::Error::other)?,
            ),
            None => FleetBackend::Plain(Arc::new(FleetService::new(config.fleet))),
        });
        let service = backend.service_handle();
        let counters = Arc::new(Counters::default());
        let obs = Arc::new(NetObs::new());
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let backend = Arc::clone(&backend);
            let counters = Arc::clone(&counters);
            let obs = Arc::clone(&obs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                serve(
                    &workload, &listener, &config, &backend, &counters, &obs, &stop,
                );
            })
        };
        Ok(NetFrontend {
            addr,
            service,
            backend,
            counters,
            obs,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address remote clients connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The co-located fleet service (epoch inspection, direct ingest).
    #[must_use]
    pub fn service(&self) -> &Arc<FleetService> {
        &self.service
    }

    /// Fleet-layer metrics. In durable mode the durability counters
    /// (`wal_appends`, `snapshots_written`, `recoveries`,
    /// `torn_tail_truncated`) are live; in plain mode they read 0.
    #[must_use]
    pub fn fleet_metrics(&self) -> FleetMetrics {
        self.backend.metrics()
    }

    /// The wire layer's metrics registry (`net/wire_rtt`,
    /// `net/frames_in`, `net/frames_out`, `net/connections`). The
    /// *merged* cross-layer snapshot — this plus the front-end's
    /// per-job histograms and the fleet's — is what
    /// [`Msg::MetricsPull`] returns over the wire; see
    /// [`NetFrontend::metrics_snapshot`] for the server-side subset.
    #[must_use]
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Fleet + wire layers' merged snapshot, available without a
    /// connection. The front-end's per-job histograms
    /// (`frontend/...`) live inside the server thread's scope and are
    /// only reachable through a wire [`Msg::MetricsPull`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.service.observability().snapshot();
        snap.merge(self.backend.metrics().counters_snapshot());
        snap.merge(self.obs.registry.snapshot());
        snap
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            reports: self.counters.reports.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, waits for open connections to drain and the
    /// pools to shut down, and joins the server thread. Equivalent to
    /// dropping the handle; this form marks the teardown explicitly.
    ///
    /// # Panics
    ///
    /// Re-raises a server-side panic (e.g. a replica worker crash
    /// propagated through a connection handler).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake an accept() blocked with no clients: a throwaway
        // connection that immediately closes.
        let _ = TcpStream::connect(self.addr);
        if let Err(payload) = handle.join() {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for NetFrontend {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The server thread body: owns the front-end for its whole life, serves
/// connections in an inner scope (so handlers may borrow the front-end),
/// and tears the pools down once the last connection drains.
fn serve<W: Workload + Sync>(
    workload: &W,
    listener: &TcpListener,
    config: &NetConfig,
    backend: &FleetBackend,
    counters: &Counters,
    obs: &NetObs,
    stop: &AtomicBool,
) {
    let budget = Budget::new(config.max_connections);
    std::thread::scope(|outer| {
        let frontend = PoolFrontend::scoped(
            outer,
            workload,
            config.frontend.clone(),
            config.patches.clone(),
        );
        std::thread::scope(|conns| {
            loop {
                if !budget.acquire(stop) {
                    break;
                }
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        budget.release();
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    }
                };
                if stop.load(Ordering::Acquire) {
                    budget.release();
                    break;
                }
                // Frames are small request/reply and push units; leaving
                // Nagle on serializes every round trip behind delayed
                // ACKs (~100x on localhost). Flushes are whole frames,
                // so there is nothing for the kernel to usefully batch.
                let _ = stream.set_nodelay(true);
                // A read timeout so idle connections periodically
                // surface at a frame boundary and notice shutdown —
                // otherwise one parked client would block the handler
                // (and so the server's teardown) forever.
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let frontend = &frontend;
                let budget = &budget;
                conns.spawn(move || {
                    let _slot = SlotGuard(budget);
                    obs.connections.add(1);
                    handle_connection(frontend, backend, counters, obs, stop, stream);
                    obs.connections.add(-1);
                });
            }
        });
        frontend.shutdown();
    });
    // Graceful exit: compact what the WAL holds so the next start
    // replays nothing. Best-effort — a failure here only costs the next
    // open a longer replay, never correctness.
    if let FleetBackend::Durable(fleet) = backend {
        let _ = fleet.snapshot();
    }
}

/// Writes one frame under the connection's write lock (whole frames only,
/// so pushed verdicts/outcomes and request replies never interleave
/// bytes). Write errors mean the client is gone; the caller's read side
/// will notice, so they are swallowed here. Every write — reply or push
/// — counts toward `net/frames_out`.
fn send(writer: &Mutex<TcpStream>, frames_out: &Counter, msg: &Msg) {
    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = msg.to_frame().write_to(&mut *stream);
    let _ = stream.flush();
    frames_out.incr();
}

/// One connection: the current thread reads and dispatches frames; a
/// responder thread pushes each submitted job's verdict and outcome in
/// submission order.
fn handle_connection(
    frontend: &PoolFrontend<'_>,
    backend: &FleetBackend,
    counters: &Counters,
    obs: &NetObs,
    stop: &AtomicBool,
    stream: TcpStream,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Mutex::new(stream);
    let (tx, rx) = mpsc::channel::<(u64, exterminator::frontend::JobTicket)>();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Responder: per-job FIFO. The verdict is pushed the moment
            // the streaming voter declares (the front-end posts it to
            // the ticket while stragglers run); the outcome follows once
            // the job finalizes.
            for (job, ticket) in rx {
                let verdict: Option<EarlyVerdict> = ticket.wait_verdict();
                send(
                    &writer,
                    &obs.frames_out,
                    &Msg::Verdict {
                        job,
                        verdict: verdict.as_ref().map(WireVerdict::from_early),
                    },
                );
                let outcome = ticket.wait();
                send(
                    &writer,
                    &obs.frames_out,
                    &Msg::Outcome(WireOutcome::from_pool(&outcome)),
                );
            }
        });
        // The read loop ends on clean close, torn frame, transport
        // error, or server shutdown. The stream's read timeout fires at
        // frame boundaries (read_from absorbs it mid-frame), so an idle
        // client parks this handler for at most one poll interval
        // before the stop flag is rechecked.
        loop {
            let frame = match Frame::read_from(&mut reader) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(xt_fleet::FrameError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            obs.frames_in.incr();
            // Server-side round trip: frame decoded → reply written.
            let dispatched = Instant::now();
            match Msg::from_frame(&frame) {
                Ok(Msg::Submit(job)) => {
                    let ticket = frontend.submit(&job.input, job.fault);
                    counters.jobs.fetch_add(1, Ordering::Relaxed);
                    let seq = ticket.job();
                    send(&writer, &obs.frames_out, &Msg::Accepted { job: seq });
                    obs.wire_rtt.record_duration(dispatched.elapsed());
                    if tx.send((seq, ticket)).is_err() {
                        break;
                    }
                }
                Ok(Msg::Report(bytes)) => {
                    // The durable backend WAL-logs before folding; either
                    // way a fresh epoch fans straight back into the
                    // server's own pools (the `bridge` loop).
                    let result = backend.ingest(&bytes).inspect(|_| {
                        bridge::sync_frontend(backend.service(), frontend);
                    });
                    match result {
                        Ok(receipt) => {
                            counters.reports.fetch_add(1, Ordering::Relaxed);
                            send(
                                &writer,
                                &obs.frames_out,
                                &Msg::ReportAck(WireReceipt {
                                    duplicate: receipt.duplicate,
                                    shards_touched: receipt.shards_touched as u32,
                                    observations: receipt.observations as u32,
                                    epoch: receipt.epoch,
                                }),
                            );
                        }
                        Err(e) => {
                            // Rate-limited reports land here too: the
                            // admission refusal crosses back as an
                            // `Error` frame without dropping the
                            // connection, so a throttled client can back
                            // off and retry.
                            counters.rejected.fetch_add(1, Ordering::Relaxed);
                            send(
                                &writer,
                                &obs.frames_out,
                                &Msg::Error {
                                    message: e.to_string(),
                                },
                            );
                        }
                    }
                    obs.wire_rtt.record_duration(dispatched.elapsed());
                }
                Ok(Msg::EpochPull { have }) => {
                    let latest = backend.service().latest();
                    let epoch = (latest.number > have).then(|| latest.to_text());
                    send(&writer, &obs.frames_out, &Msg::Epoch { epoch });
                    obs.wire_rtt.record_duration(dispatched.elapsed());
                }
                Ok(Msg::HealthPull) => {
                    let m = backend.metrics();
                    send(
                        &writer,
                        &obs.frames_out,
                        &Msg::Health(WireHealth {
                            healthy: true,
                            epoch: m.epoch,
                            uptime_ms: obs.started.elapsed().as_millis() as u64,
                            recoveries: m.recoveries,
                            durable: matches!(backend, FleetBackend::Durable(_)),
                            connections: obs.connections.get().max(0) as u64,
                        }),
                    );
                    obs.wire_rtt.record_duration(dispatched.elapsed());
                }
                Ok(Msg::MetricsPull) => {
                    // Every layer's registry, merged. Names are
                    // pre-namespaced (`frontend/`, `fleet/`, `net/`), so
                    // a plain merge never collides.
                    let mut snap = frontend.observability().snapshot();
                    snap.merge(backend.service().observability().snapshot());
                    snap.merge(backend.metrics().counters_snapshot());
                    snap.merge(obs.registry.snapshot());
                    send(&writer, &obs.frames_out, &Msg::Metrics(snap));
                    obs.wire_rtt.record_duration(dispatched.elapsed());
                }
                Ok(other) => {
                    // A server-to-client message arriving at the server
                    // is a protocol violation; name it and drop the
                    // connection.
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    send(
                        &writer,
                        &obs.frames_out,
                        &Msg::Error {
                            message: format!("unexpected client message: {other:?}"),
                        },
                    );
                    break;
                }
                Err(e) => {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    send(
                        &writer,
                        &obs.frames_out,
                        &Msg::Error {
                            message: e.to_string(),
                        },
                    );
                    break;
                }
            }
        }
        // Reader done: close the channel so the responder drains the
        // remaining tickets (their outcomes still complete server-side)
        // and exits.
        drop(tx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_recovers_from_poisoned_lock() {
        let budget = Arc::new(Budget::new(2));
        let poisoner = Arc::clone(&budget);
        let _ = std::thread::spawn(move || {
            let _active = poisoner.state.lock().unwrap();
            panic!("poison the budget lock");
        })
        .join();
        assert!(budget.state.lock().is_err(), "lock should be poisoned");
        // Slot accounting recovers: a poisoned budget must not wedge the
        // accept loop or leak connection slots.
        let stop = AtomicBool::new(false);
        assert!(budget.acquire(&stop));
        assert!(budget.acquire(&stop));
        budget.release();
        assert!(budget.acquire(&stop));
        budget.release();
        budget.release();
    }
}
