//! The remote caller's view: a [`NetClient`] connection with the
//! [`JobTicket`](exterminator::frontend::JobTicket)-shaped API.
//!
//! [`NetClient::submit`] returns a [`NetTicket`]; the remote caller
//! overlaps its own work with the server's replicas and collects via
//! [`NetTicket::wait_verdict`] (the streaming quorum verdict, typically
//! arriving while stragglers still run) and [`NetTicket::wait`] (the
//! finalized [`WireOutcome`]). Because the server pushes verdict and
//! outcome frames per job while the client may be mid-request, the
//! connection state buffers pushed frames by job id: whichever method
//! reads a frame that belongs to another job parks it for that job's
//! ticket.
//!
//! The same connection multiplexes the fleet path:
//! [`NetClient::ingest_report`] ships a compact `XTR1` run report (the §5
//! "few kilobytes per execution" unit) and [`NetClient::pull_epoch`]
//! fetches the server's newest patch epoch — so a remote client can
//! detect locally, report remotely, and adopt the fleet's corrections,
//! all over one socket.
//!
//! Since the event-loop server, epochs also arrive *unsolicited*: the
//! server fans a [`Msg::EpochPush`] frame down every live connection the
//! moment a new epoch publishes. The connection absorbs pushes into a
//! newest-wins cache of exactly one epoch (O(1) regardless of how many
//! publish, or whether anyone ever looks), readable via
//! [`NetClient::pushed_epoch`] and awaitable via
//! [`NetClient::wait_pushed_epoch`] — so a steady-state client adopts
//! fleet corrections without ever polling [`NetClient::pull_epoch`].

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use xt_faults::FaultSpec;
use xt_fleet::frame::{Frame, FrameError, WireError};
use xt_fleet::RunReport;
use xt_obs::RegistrySnapshot;
use xt_patch::PatchEpoch;
use xt_workloads::WorkloadInput;

use crate::proto::{Msg, SubmitJob, WireHealth, WireOutcome, WireReceipt, WireVerdict};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Malformed(WireError),
    /// The server closed the connection.
    Disconnected,
    /// The server answered a request with [`Msg::Error`].
    Remote(String),
    /// The server sent a well-formed message that violates the
    /// request/reply protocol (e.g. a reply of the wrong kind).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Malformed(e) => write!(f, "malformed server message: {e}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
            NetError::Remote(m) => write!(f, "server rejected the request: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Malformed(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => NetError::Io(e),
            FrameError::Malformed(e) => NetError::Malformed(e),
        }
    }
}

/// Backoff schedule for [`NetClient::connect_with_retry`]: bounded
/// attempts, exponential delay, deterministic jitter.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts, including the first (clamped to ≥ 1).
    pub attempts: u32,
    /// Delay before the second attempt; doubles after each failure.
    pub base: Duration,
    /// Ceiling the exponential delay saturates at.
    pub cap: Duration,
    /// Seed for the jitter. Jitter keeps a fleet of clients from
    /// reconnecting in lockstep after the same server restart; seeding
    /// it keeps any single client's schedule reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            jitter_seed: 0x0BAD_5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `n` (0-based): `full = min(cap, base·2ⁿ)`,
    /// jittered into `[full/2, full]` by a SplitMix64 draw on
    /// `(jitter_seed, n)`.
    fn delay(&self, retry: u32) -> Duration {
        let full = self
            .base
            .saturating_mul(1u32 << retry.min(31))
            .min(self.cap);
        let half = full / 2;
        let span = (full - half).as_nanos() as u64;
        if span == 0 {
            return full;
        }
        let mut z = self.jitter_seed.wrapping_add(
            u64::from(retry)
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        half + Duration::from_nanos(z % (span + 1))
    }
}

/// Is this connect failure worth retrying? Transient conditions only —
/// a refused or reset connection (the server is not up *yet*), an
/// interrupted or timed-out attempt. Anything else (unreachable host,
/// permission denied, bad address) fails fast.
fn transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::Interrupted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Locks the connection, recovering from poison. Every critical section
/// leaves `ClientConn` structurally consistent (frames are written and
/// parsed whole, buffers mutated entry-at-a-time), so a panic on one
/// thread holding the lock must not permanently brick every clone of the
/// client. The worst a recovered connection can carry is a transport
/// left mid-conversation, and the next read surfaces that as an ordinary
/// decode or protocol error — recoverable by reconnecting, where a
/// propagated poison panic is not.
fn lock_conn(conn: &Mutex<ClientConn>) -> MutexGuard<'_, ClientConn> {
    conn.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Both halves of the connection viewing one socket — and one file
/// descriptor. All reads and writes are serialized by the connection
/// lock, so nothing is gained by `try_clone`-duplicating the
/// descriptor, and a process holding thousands of idle connections
/// (the soak harness) pays one fd per connection instead of two.
struct Shared(Arc<TcpStream>);

impl io::Read for Shared {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self.0).read(buf)
    }
}

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self.0).flush()
    }
}

/// Connection state: the socket plus push buffers. All client and ticket
/// methods serialize on one lock, so exactly one thread reads the socket
/// at a time and every pushed frame ends up in the right buffer.
struct ClientConn {
    writer: Shared,
    reader: BufReader<Shared>,
    /// Verdicts pushed for jobs nobody has waited on yet.
    verdicts: HashMap<u64, Option<WireVerdict>>,
    /// Outcomes pushed for jobs nobody has waited on yet.
    outcomes: HashMap<u64, WireOutcome>,
    /// Jobs whose ticket was dropped before collecting the outcome:
    /// their remaining pushed frames are discarded on arrival instead of
    /// parked, so abandoning tickets on a long-lived connection cannot
    /// grow the buffers without bound. An entry lives until the job's
    /// outcome (its final frame) arrives.
    abandoned: HashSet<u64>,
    /// Newest server-pushed epoch, already parsed. Newer pushes replace
    /// older ones in place, so a client that never looks still holds at
    /// most one epoch no matter how many the server publishes.
    pushed: Option<PatchEpoch>,
}

impl ClientConn {
    fn send(&mut self, msg: &Msg) -> Result<(), NetError> {
        msg.to_frame().write_to(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_msg(&mut self) -> Result<Msg, NetError> {
        match Frame::read_from(&mut self.reader) {
            Ok(Some(frame)) => Ok(Msg::from_frame(&frame)?),
            Ok(None) => Err(NetError::Disconnected),
            Err(e) => Err(e.into()),
        }
    }

    /// Parks a pushed frame in its job buffer (or discards it for an
    /// abandoned job); returns non-push messages.
    fn buffer_or_return(&mut self, msg: Msg) -> Option<Msg> {
        match msg {
            Msg::Verdict { job, verdict } => {
                if !self.abandoned.contains(&job) {
                    self.verdicts.insert(job, verdict);
                }
                None
            }
            Msg::Outcome(outcome) => {
                // The outcome is a job's final frame: an abandoned
                // job's bookkeeping ends here.
                if !self.abandoned.remove(&outcome.job) {
                    self.outcomes.insert(outcome.job, outcome);
                }
                None
            }
            Msg::EpochPush { epoch } => {
                // Advisory channel: a push that fails to parse is
                // dropped silently (the pull path still works and
                // surfaces such corruption as a hard error). Epoch
                // numbers are monotone server-side, but absorb
                // defensively: newest wins, ties and regressions lose.
                if let Ok(epoch) = PatchEpoch::from_text(&epoch) {
                    if self.pushed.as_ref().is_none_or(|p| epoch.number > p.number) {
                        self.pushed = Some(epoch);
                    }
                }
                None
            }
            other => Some(other),
        }
    }

    /// Reads until a request reply arrives, parking pushed frames.
    fn read_reply(&mut self) -> Result<Msg, NetError> {
        loop {
            let msg = self.read_msg()?;
            if let Some(reply) = self.buffer_or_return(msg) {
                return Ok(reply);
            }
        }
    }
}

/// A connection to a [`NetFrontend`](crate::server::NetFrontend).
/// Cheap to clone (both halves share the connection); methods take
/// `&self` and serialize internally, so one client may be shared across
/// threads — though separate clients get separate connections and more
/// parallelism.
#[derive(Clone)]
pub struct NetClient {
    conn: Arc<Mutex<ClientConn>>,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = Arc::new(TcpStream::connect(addr)?);
        // Whole frames are written and flushed as units; Nagle would
        // only add delayed-ACK stalls to every request round trip.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(Shared(Arc::clone(&stream)));
        Ok(NetClient {
            conn: Arc::new(Mutex::new(ClientConn {
                writer: Shared(stream),
                reader,
                verdicts: HashMap::new(),
                outcomes: HashMap::new(),
                abandoned: HashSet::new(),
                pushed: None,
            })),
        })
    }

    /// Connects to a server that may not be up yet: retries transient
    /// connect failures (refused, reset, interrupted, timed out) with
    /// bounded exponential backoff per `policy`. A server restarting —
    /// or starting *after* its clients, as in orchestrated deployments —
    /// is reached as soon as it binds; a genuinely wrong address still
    /// fails fast, because non-transient errors are not retried.
    ///
    /// # Errors
    ///
    /// The last transient error once attempts are exhausted, or the
    /// first non-transient error immediately.
    pub fn connect_with_retry(addr: impl ToSocketAddrs, policy: &RetryPolicy) -> io::Result<Self> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            match Self::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) if transient(e.kind()) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("attempts >= 1, so at least one connect ran"))
    }

    /// Frames and abandonment records currently parked in this
    /// connection's push buffers (diagnostic; a long-lived client that
    /// collects or drops every ticket should see this return to 0
    /// between batches). The pushed-epoch cache is *not* counted: it is
    /// one slot by construction, not a buffer that can grow.
    #[must_use]
    pub fn buffered(&self) -> usize {
        let conn = self.lock();
        conn.verdicts.len() + conn.outcomes.len() + conn.abandoned.len()
    }

    /// The newest epoch the server has pushed down this connection, if
    /// any. Purely a cache read — never touches the socket, so it only
    /// observes pushes some *other* read (a request round trip, a
    /// ticket wait, or [`NetClient::wait_pushed_epoch`]) already pulled
    /// off the wire.
    #[must_use]
    pub fn pushed_epoch(&self) -> Option<PatchEpoch> {
        self.lock().pushed.clone()
    }

    /// Blocks until the server pushes an epoch numbered above
    /// `newer_than` (returning it), or `timeout` elapses (returning
    /// `None`). This is the push-path replacement for polling
    /// [`NetClient::pull_epoch`] in a loop: the client parks on the
    /// socket and the server's broadcast wakes it.
    ///
    /// Holds the connection lock for the whole wait — clones of this
    /// client sharing the connection will block behind it, so dedicate
    /// a connection to epoch watching if requests must overlap.
    ///
    /// # Errors
    ///
    /// Transport or decode failure, or a request reply arriving with no
    /// request outstanding.
    pub fn wait_pushed_epoch(
        &self,
        newer_than: u64,
        timeout: Duration,
    ) -> Result<Option<PatchEpoch>, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut conn = self.lock();
        let out = Self::wait_pushed_locked(&mut conn, newer_than, deadline);
        // Always restore blocking mode, error or not: request/reply
        // methods on this connection assume reads never time out.
        let _ = conn.reader.get_ref().0.set_read_timeout(None);
        out
    }

    fn wait_pushed_locked(
        conn: &mut ClientConn,
        newer_than: u64,
        deadline: std::time::Instant,
    ) -> Result<Option<PatchEpoch>, NetError> {
        loop {
            if let Some(epoch) = conn.pushed.as_ref() {
                if epoch.number > newer_than {
                    return Ok(Some(epoch.clone()));
                }
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Ok(None);
            };
            conn.reader.get_ref().0.set_read_timeout(Some(left))?;
            match conn.read_msg() {
                Ok(msg) => {
                    if let Some(reply) = conn.buffer_or_return(msg) {
                        return Err(NetError::Protocol(format!(
                            "unsolicited request reply while waiting for a push: {reply:?}"
                        )));
                    }
                }
                // The timeout elapsing mid-wait surfaces as WouldBlock
                // or TimedOut depending on platform; both just mean "no
                // frame yet" — loop to the deadline check.
                Err(NetError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, ClientConn> {
        lock_conn(&self.conn)
    }

    /// Submits one job and returns its ticket. The server replies with
    /// the front-end's global sequence number, which fully determines
    /// the outcome (see the determinism pin in `tests/net.rs`).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection.
    pub fn submit(
        &self,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
    ) -> Result<NetTicket, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::Submit(SubmitJob {
            input: input.clone(),
            fault,
        }))?;
        match conn.read_reply()? {
            Msg::Accepted { job } => Ok(NetTicket {
                job,
                conn: Some(Arc::clone(&self.conn)),
            }),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected Accepted, got {other:?}"
            ))),
        }
    }

    /// Ships one run report into the server's fleet service.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection (e.g. the report
    /// failed the server's wire validation).
    pub fn ingest_report(&self, report: &RunReport) -> Result<WireReceipt, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::Report(report.encode()))?;
        match conn.read_reply()? {
            Msg::ReportAck(receipt) => Ok(receipt),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected ReportAck, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's newest patch epoch if it is newer than
    /// `have`; `None` means the client is already current.
    ///
    /// # Errors
    ///
    /// Transport, decode, or an epoch payload that fails to parse.
    pub fn pull_epoch(&self, have: u64) -> Result<Option<PatchEpoch>, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::EpochPull { have })?;
        match conn.read_reply()? {
            Msg::Epoch { epoch: None } => Ok(None),
            Msg::Epoch { epoch: Some(text) } => PatchEpoch::from_text(&text)
                .map(Some)
                .map_err(|e| NetError::Protocol(format!("unparseable epoch payload: {e}"))),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!("expected Epoch, got {other:?}"))),
        }
    }

    /// Probes the server's liveness. A reply in hand *is* the liveness
    /// signal; the payload carries the server's newest epoch, uptime,
    /// durability mode, and recovery count.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection.
    pub fn pull_health(&self) -> Result<WireHealth, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::HealthPull)?;
        match conn.read_reply()? {
            Msg::Health(health) => Ok(health),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected Health, got {other:?}"
            ))),
        }
    }

    /// Pulls the server's merged metrics snapshot: wire-layer counters
    /// (`net/...`), fleet service counters and per-stage latency
    /// histograms (`fleet/...`), and the pool front-end's per-job
    /// histograms (`frontend/...`), name-sorted.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection.
    pub fn pull_metrics(&self) -> Result<RegistrySnapshot, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::MetricsPull)?;
        match conn.read_reply()? {
            Msg::Metrics(snap) => Ok(snap),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected Metrics, got {other:?}"
            ))),
        }
    }
}

/// A per-job completion handle for a remote submission — the wire
/// counterpart of [`JobTicket`](exterminator::frontend::JobTicket).
/// Dropping a ticket abandons the outcome: the job still runs to
/// completion server-side, and the connection discards its remaining
/// pushed frames on arrival instead of buffering them, so dropped
/// tickets cost no memory on a long-lived connection.
pub struct NetTicket {
    job: u64,
    /// `Some` while the outcome is still collectible; taken by
    /// [`NetTicket::wait`] so the drop glue knows consumed tickets from
    /// abandoned ones.
    conn: Option<Arc<Mutex<ClientConn>>>,
}

impl NetTicket {
    /// The front-end's global sequence number for this submission (also
    /// the seed index its replicas derive heap seeds from).
    #[must_use]
    pub fn job(&self) -> u64 {
        self.job
    }

    fn conn(&self) -> &Arc<Mutex<ClientConn>> {
        self.conn.as_ref().expect("ticket not yet consumed")
    }

    /// Blocks until this job's streaming quorum verdict arrives: the
    /// output the paper's voter would release while stragglers are still
    /// executing, or `None` if the job completed with every replica
    /// disagreeing.
    ///
    /// # Errors
    ///
    /// Transport or decode failure, or an out-of-protocol frame.
    pub fn wait_verdict(&self) -> Result<Option<WireVerdict>, NetError> {
        let mut conn = lock_conn(self.conn());
        loop {
            if let Some(verdict) = conn.verdicts.get(&self.job) {
                return Ok(verdict.clone());
            }
            let msg = conn.read_msg()?;
            if let Some(reply) = conn.buffer_or_return(msg) {
                return Err(NetError::Protocol(format!(
                    "unexpected reply while waiting for a verdict: {reply:?}"
                )));
            }
        }
    }

    /// Blocks until this job's finalized outcome arrives.
    ///
    /// # Errors
    ///
    /// Transport or decode failure, or an out-of-protocol frame.
    pub fn wait(mut self) -> Result<WireOutcome, NetError> {
        let arc = self.conn.take().expect("ticket not yet consumed");
        let mut conn = lock_conn(&arc);
        loop {
            if let Some(outcome) = conn.outcomes.remove(&self.job) {
                // The verdict buffer entry (if any) is dead weight once
                // the outcome is consumed.
                conn.verdicts.remove(&self.job);
                return Ok(outcome);
            }
            let msg = conn.read_msg()?;
            if let Some(reply) = conn.buffer_or_return(msg) {
                return Err(NetError::Protocol(format!(
                    "unexpected reply while waiting for an outcome: {reply:?}"
                )));
            }
        }
    }
}

impl Drop for NetTicket {
    fn drop(&mut self) {
        // Only an unconsumed ticket (wait() never called) marks its job
        // abandoned; wait() takes the connection out first.
        let Some(arc) = self.conn.take() else {
            return;
        };
        // `lock_conn` never panics on poison (it recovers), so the drop
        // glue cannot double-panic while unwinding — and abandonment
        // bookkeeping keeps working on a connection other clones of the
        // client recovered.
        let mut conn = lock_conn(&arc);
        conn.verdicts.remove(&self.job);
        if conn.outcomes.remove(&self.job).is_none() {
            // Outcome not yet arrived: remember to discard it (and any
            // verdict) when it does.
            conn.abandoned.insert(self.job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A poisoned connection lock (a panic on one thread holding it)
    /// must not brick every other clone of the client: lock sites
    /// recover via `PoisonError::into_inner` instead of propagating.
    #[test]
    fn poisoned_connection_lock_recovers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A minimal server: answer one EpochPull with an empty epoch.
        let responder = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let frame = Frame::read_from(&mut reader).unwrap().unwrap();
            assert!(matches!(
                Msg::from_frame(&frame).unwrap(),
                Msg::EpochPull { .. }
            ));
            Msg::Epoch { epoch: None }
                .to_frame()
                .write_to(&mut writer)
                .unwrap();
            writer.flush().unwrap();
        });
        let client = NetClient::connect(addr).unwrap();
        let conn = Arc::clone(&client.conn);
        let panicked = std::thread::spawn(move || {
            let _guard = conn.lock().unwrap();
            panic!("poison the client connection lock");
        })
        .join();
        assert!(panicked.is_err());
        assert!(client.conn.is_poisoned(), "the lock should be poisoned");
        // Every lock site still works: a pure-buffer read and a full
        // request/reply round trip over the recovered connection.
        assert_eq!(client.buffered(), 0);
        assert!(client.pull_epoch(0).unwrap().is_none());
        responder.join().unwrap();
    }

    /// The backoff schedule is deterministic for a given seed and stays
    /// inside the documented `[full/2, full]` envelope under the cap.
    #[test]
    fn retry_delays_are_bounded_and_deterministic() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            jitter_seed: 42,
        };
        let first: Vec<Duration> = (0..7).map(|n| policy.delay(n)).collect();
        let again: Vec<Duration> = (0..7).map(|n| policy.delay(n)).collect();
        assert_eq!(
            first, again,
            "jitter must be a pure function of (seed, retry)"
        );
        for (n, d) in first.iter().enumerate() {
            let full = (policy.base * 2u32.pow(n as u32)).min(policy.cap);
            assert!(
                *d >= full / 2 && *d <= full,
                "retry {n}: {d:?} outside [{:?}, {full:?}]",
                full / 2
            );
        }
        // Different seeds decorrelate.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(
            (0..7).map(|n| policy.delay(n)).collect::<Vec<_>>(),
            (0..7).map(|n| other.delay(n)).collect::<Vec<_>>(),
        );
    }

    /// Non-transient connect errors must fail fast, not burn the whole
    /// backoff schedule. `AddrNotAvailable`-class failures (here: an
    /// unroutable-port connect on a bound-then-dropped listener is
    /// *refused*, i.e. transient — so use an empty address list, which
    /// yields `InvalidInput`).
    #[test]
    fn connect_with_retry_fails_fast_on_non_transient_errors() {
        let start = std::time::Instant::now();
        let Err(err) = NetClient::connect_with_retry(
            &[][..] as &[std::net::SocketAddr],
            &RetryPolicy {
                attempts: 100,
                base: Duration::from_secs(10),
                ..RetryPolicy::default()
            },
        ) else {
            panic!("an empty address list connected");
        };
        assert!(
            !transient(err.kind()),
            "expected a non-transient error, got {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a non-transient error slept through the backoff schedule"
        );
    }

    /// Exhausting the schedule surfaces the last transient error.
    #[test]
    fn connect_with_retry_reports_the_last_refusal() {
        // Bind then drop: the port is (very likely) refusing connects.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let Err(err) = NetClient::connect_with_retry(
            addr,
            &RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                jitter_seed: 7,
            },
        ) else {
            panic!("a dropped listener's port accepted a connection");
        };
        assert!(
            transient(err.kind()),
            "expected a transient refusal, got {err}"
        );
    }
}
