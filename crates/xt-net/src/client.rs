//! The remote caller's view: a [`NetClient`] connection with the
//! [`JobTicket`](exterminator::frontend::JobTicket)-shaped API.
//!
//! [`NetClient::submit`] returns a [`NetTicket`]; the remote caller
//! overlaps its own work with the server's replicas and collects via
//! [`NetTicket::wait_verdict`] (the streaming quorum verdict, typically
//! arriving while stragglers still run) and [`NetTicket::wait`] (the
//! finalized [`WireOutcome`]). Because the server pushes verdict and
//! outcome frames per job while the client may be mid-request, the
//! connection state buffers pushed frames by job id: whichever method
//! reads a frame that belongs to another job parks it for that job's
//! ticket.
//!
//! The same connection multiplexes the fleet path:
//! [`NetClient::ingest_report`] ships a compact `XTR1` run report (the §5
//! "few kilobytes per execution" unit) and [`NetClient::pull_epoch`]
//! fetches the server's newest patch epoch — so a remote client can
//! detect locally, report remotely, and adopt the fleet's corrections,
//! all over one socket.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use xt_faults::FaultSpec;
use xt_fleet::frame::{Frame, FrameError, WireError};
use xt_fleet::RunReport;
use xt_patch::PatchEpoch;
use xt_workloads::WorkloadInput;

use crate::proto::{Msg, SubmitJob, WireOutcome, WireReceipt, WireVerdict};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Malformed(WireError),
    /// The server closed the connection.
    Disconnected,
    /// The server answered a request with [`Msg::Error`].
    Remote(String),
    /// The server sent a well-formed message that violates the
    /// request/reply protocol (e.g. a reply of the wrong kind).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Malformed(e) => write!(f, "malformed server message: {e}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
            NetError::Remote(m) => write!(f, "server rejected the request: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Malformed(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => NetError::Io(e),
            FrameError::Malformed(e) => NetError::Malformed(e),
        }
    }
}

/// Connection state: the socket plus push buffers. All client and ticket
/// methods serialize on one lock, so exactly one thread reads the socket
/// at a time and every pushed frame ends up in the right buffer.
struct ClientConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Verdicts pushed for jobs nobody has waited on yet.
    verdicts: HashMap<u64, Option<WireVerdict>>,
    /// Outcomes pushed for jobs nobody has waited on yet.
    outcomes: HashMap<u64, WireOutcome>,
    /// Jobs whose ticket was dropped before collecting the outcome:
    /// their remaining pushed frames are discarded on arrival instead of
    /// parked, so abandoning tickets on a long-lived connection cannot
    /// grow the buffers without bound. An entry lives until the job's
    /// outcome (its final frame) arrives.
    abandoned: HashSet<u64>,
}

impl ClientConn {
    fn send(&mut self, msg: &Msg) -> Result<(), NetError> {
        msg.to_frame().write_to(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_msg(&mut self) -> Result<Msg, NetError> {
        match Frame::read_from(&mut self.reader) {
            Ok(Some(frame)) => Ok(Msg::from_frame(&frame)?),
            Ok(None) => Err(NetError::Disconnected),
            Err(e) => Err(e.into()),
        }
    }

    /// Parks a pushed frame in its job buffer (or discards it for an
    /// abandoned job); returns non-push messages.
    fn buffer_or_return(&mut self, msg: Msg) -> Option<Msg> {
        match msg {
            Msg::Verdict { job, verdict } => {
                if !self.abandoned.contains(&job) {
                    self.verdicts.insert(job, verdict);
                }
                None
            }
            Msg::Outcome(outcome) => {
                // The outcome is a job's final frame: an abandoned
                // job's bookkeeping ends here.
                if !self.abandoned.remove(&outcome.job) {
                    self.outcomes.insert(outcome.job, outcome);
                }
                None
            }
            other => Some(other),
        }
    }

    /// Reads until a request reply arrives, parking pushed frames.
    fn read_reply(&mut self) -> Result<Msg, NetError> {
        loop {
            let msg = self.read_msg()?;
            if let Some(reply) = self.buffer_or_return(msg) {
                return Ok(reply);
            }
        }
    }
}

/// A connection to a [`NetFrontend`](crate::server::NetFrontend).
/// Cheap to clone (both halves share the connection); methods take
/// `&self` and serialize internally, so one client may be shared across
/// threads — though separate clients get separate connections and more
/// parallelism.
#[derive(Clone)]
pub struct NetClient {
    conn: Arc<Mutex<ClientConn>>,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // Whole frames are written and flushed as units; Nagle would
        // only add delayed-ACK stalls to every request round trip.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(NetClient {
            conn: Arc::new(Mutex::new(ClientConn {
                writer,
                reader,
                verdicts: HashMap::new(),
                outcomes: HashMap::new(),
                abandoned: HashSet::new(),
            })),
        })
    }

    /// Frames and abandonment records currently parked in this
    /// connection's push buffers (diagnostic; a long-lived client that
    /// collects or drops every ticket should see this return to 0
    /// between batches).
    #[must_use]
    pub fn buffered(&self) -> usize {
        let conn = self.lock();
        conn.verdicts.len() + conn.outcomes.len() + conn.abandoned.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClientConn> {
        self.conn.lock().expect("client connection lock poisoned")
    }

    /// Submits one job and returns its ticket. The server replies with
    /// the front-end's global sequence number, which fully determines
    /// the outcome (see the determinism pin in `tests/net.rs`).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection.
    pub fn submit(
        &self,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
    ) -> Result<NetTicket, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::Submit(SubmitJob {
            input: input.clone(),
            fault,
        }))?;
        match conn.read_reply()? {
            Msg::Accepted { job } => Ok(NetTicket {
                job,
                conn: Some(Arc::clone(&self.conn)),
            }),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected Accepted, got {other:?}"
            ))),
        }
    }

    /// Ships one run report into the server's fleet service.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-side rejection (e.g. the report
    /// failed the server's wire validation).
    pub fn ingest_report(&self, report: &RunReport) -> Result<WireReceipt, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::Report(report.encode()))?;
        match conn.read_reply()? {
            Msg::ReportAck(receipt) => Ok(receipt),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!(
                "expected ReportAck, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's newest patch epoch if it is newer than
    /// `have`; `None` means the client is already current.
    ///
    /// # Errors
    ///
    /// Transport, decode, or an epoch payload that fails to parse.
    pub fn pull_epoch(&self, have: u64) -> Result<Option<PatchEpoch>, NetError> {
        let mut conn = self.lock();
        conn.send(&Msg::EpochPull { have })?;
        match conn.read_reply()? {
            Msg::Epoch { epoch: None } => Ok(None),
            Msg::Epoch { epoch: Some(text) } => PatchEpoch::from_text(&text)
                .map(Some)
                .map_err(|e| NetError::Protocol(format!("unparseable epoch payload: {e}"))),
            Msg::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Protocol(format!("expected Epoch, got {other:?}"))),
        }
    }
}

/// A per-job completion handle for a remote submission — the wire
/// counterpart of [`JobTicket`](exterminator::frontend::JobTicket).
/// Dropping a ticket abandons the outcome: the job still runs to
/// completion server-side, and the connection discards its remaining
/// pushed frames on arrival instead of buffering them, so dropped
/// tickets cost no memory on a long-lived connection.
pub struct NetTicket {
    job: u64,
    /// `Some` while the outcome is still collectible; taken by
    /// [`NetTicket::wait`] so the drop glue knows consumed tickets from
    /// abandoned ones.
    conn: Option<Arc<Mutex<ClientConn>>>,
}

impl NetTicket {
    /// The front-end's global sequence number for this submission (also
    /// the seed index its replicas derive heap seeds from).
    #[must_use]
    pub fn job(&self) -> u64 {
        self.job
    }

    fn conn(&self) -> &Arc<Mutex<ClientConn>> {
        self.conn.as_ref().expect("ticket not yet consumed")
    }

    /// Blocks until this job's streaming quorum verdict arrives: the
    /// output the paper's voter would release while stragglers are still
    /// executing, or `None` if the job completed with every replica
    /// disagreeing.
    ///
    /// # Errors
    ///
    /// Transport or decode failure, or an out-of-protocol frame.
    pub fn wait_verdict(&self) -> Result<Option<WireVerdict>, NetError> {
        let mut conn = self.conn().lock().expect("client connection lock poisoned");
        loop {
            if let Some(verdict) = conn.verdicts.get(&self.job) {
                return Ok(verdict.clone());
            }
            let msg = conn.read_msg()?;
            if let Some(reply) = conn.buffer_or_return(msg) {
                return Err(NetError::Protocol(format!(
                    "unexpected reply while waiting for a verdict: {reply:?}"
                )));
            }
        }
    }

    /// Blocks until this job's finalized outcome arrives.
    ///
    /// # Errors
    ///
    /// Transport or decode failure, or an out-of-protocol frame.
    pub fn wait(mut self) -> Result<WireOutcome, NetError> {
        let arc = self.conn.take().expect("ticket not yet consumed");
        let mut conn = arc.lock().expect("client connection lock poisoned");
        loop {
            if let Some(outcome) = conn.outcomes.remove(&self.job) {
                // The verdict buffer entry (if any) is dead weight once
                // the outcome is consumed.
                conn.verdicts.remove(&self.job);
                return Ok(outcome);
            }
            let msg = conn.read_msg()?;
            if let Some(reply) = conn.buffer_or_return(msg) {
                return Err(NetError::Protocol(format!(
                    "unexpected reply while waiting for an outcome: {reply:?}"
                )));
            }
        }
    }
}

impl Drop for NetTicket {
    fn drop(&mut self) {
        // Only an unconsumed ticket (wait() never called) marks its job
        // abandoned; wait() takes the connection out first.
        let Some(arc) = self.conn.take() else {
            return;
        };
        // No `expect` here: drop glue must not double-panic while
        // unwinding past a poisoned connection.
        let Ok(mut conn) = arc.lock() else {
            return;
        };
        conn.verdicts.remove(&self.job);
        if conn.outcomes.remove(&self.job).is_none() {
            // Outcome not yet arrived: remember to discard it (and any
            // verdict) when it does.
            conn.abandoned.insert(self.job);
        }
    }
}
