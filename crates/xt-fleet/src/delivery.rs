//! Bounded delivery dedup: per-client high-water mark plus a sliding
//! out-of-order window (the IPsec/DTLS anti-replay shape).
//!
//! The service's original dedup kept every `(client, seq)` pair it ever
//! accepted in a `HashSet` — memory grew one entry per report for the
//! life of the service, which an always-on aggregation endpoint (months of
//! uptime, millions of clients, unbounded reports per client) cannot
//! afford. A [`ReplayWindow`] stores a fixed 20 bytes per client no matter
//! how many reports that client ever sends: the highest sequence number
//! observed plus one bit for each of the [`ReplayWindow::WIDTH`] most
//! recent sequence numbers below it.
//!
//! The price is a semantic corner: a sequence number more than `WIDTH`
//! below the client's high-water mark is indistinguishable from a
//! duplicate and is dropped ([`Delivery::Stale`]). That is the safe
//! direction for an at-least-once transport — dropping a stale report
//! loses at most one run's worth of evidence (cumulative-mode evidence is
//! redundant by design; §5 needs *populations* of reports), while
//! *accepting* a redelivered one would double-count evidence and break
//! service-level idempotence. Real transports reorder by queue depths,
//! not by hundreds of messages, so a 128-wide window makes the corner
//! unobservable in practice.

/// What observing one sequence number means for the report carrying it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// First sight of this sequence number: process the report.
    Fresh,
    /// Already accepted (inside the window): drop the redelivery.
    Duplicate,
    /// Below the window floor — indistinguishable from a duplicate, so
    /// dropped (see the module docs for why this is the safe direction).
    Stale,
}

impl Delivery {
    /// `true` for anything that must not be processed again.
    #[must_use]
    pub fn is_drop(self) -> bool {
        self != Delivery::Fresh
    }
}

/// Anti-replay state for one client: high-water mark + 128-bit window.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayWindow {
    /// Bit `d` is set iff sequence number `high - d` was accepted.
    bits: u128,
    /// Highest sequence number observed (meaningful once `bits != 0`).
    high: u32,
}

impl ReplayWindow {
    /// Sequence numbers the window distinguishes below the high-water
    /// mark.
    pub const WIDTH: u32 = 128;

    /// A window that has observed nothing.
    #[must_use]
    pub fn new() -> Self {
        ReplayWindow::default()
    }

    /// Classifies `seq` and, if fresh, records it.
    pub fn observe(&mut self, seq: u32) -> Delivery {
        if self.bits == 0 {
            // Nothing observed yet (bit 0 of a non-empty window is always
            // set, so `bits == 0` is an unambiguous emptiness flag).
            self.high = seq;
            self.bits = 1;
            return Delivery::Fresh;
        }
        if seq > self.high {
            let advance = seq - self.high;
            self.bits = if advance >= Self::WIDTH {
                0
            } else {
                self.bits << advance
            };
            self.bits |= 1;
            self.high = seq;
            return Delivery::Fresh;
        }
        let distance = self.high - seq;
        if distance >= Self::WIDTH {
            return Delivery::Stale;
        }
        let mask = 1u128 << distance;
        if self.bits & mask != 0 {
            Delivery::Duplicate
        } else {
            self.bits |= mask;
            Delivery::Fresh
        }
    }

    /// The highest sequence number accepted so far, if any.
    #[must_use]
    pub fn high_water(&self) -> Option<u32> {
        (self.bits != 0).then_some(self.high)
    }

    /// The raw `(bits, high)` state for snapshot serialization. Together
    /// with [`ReplayWindow::from_parts`] this is the durability hook: a
    /// restored window classifies every future sequence number exactly as
    /// the original would, which is what makes WAL re-ingest after a
    /// crash idempotent.
    #[must_use]
    pub fn to_parts(&self) -> (u128, u32) {
        (self.bits, self.high)
    }

    /// Rebuilds a window from [`ReplayWindow::to_parts`] state. `bits ==
    /// 0` reproduces the never-observed window regardless of `high`, the
    /// same emptiness convention `observe` relies on.
    #[must_use]
    pub fn from_parts(bits: u128, high: u32) -> Self {
        ReplayWindow { bits, high }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_is_all_fresh_then_all_duplicate() {
        let mut w = ReplayWindow::new();
        for seq in 0..200 {
            assert_eq!(w.observe(seq), Delivery::Fresh, "seq {seq}");
        }
        // Recent redeliveries are recognized...
        for seq in 100..200 {
            assert_eq!(w.observe(seq), Delivery::Duplicate, "seq {seq}");
        }
        // ...and ancient ones are dropped as stale, never reprocessed.
        assert_eq!(w.observe(10), Delivery::Stale);
        assert_eq!(w.high_water(), Some(199));
    }

    #[test]
    fn out_of_order_within_window_is_accepted_once() {
        let mut w = ReplayWindow::new();
        assert_eq!(w.observe(50), Delivery::Fresh);
        assert_eq!(w.observe(10), Delivery::Fresh, "39 behind: in window");
        assert_eq!(w.observe(10), Delivery::Duplicate);
        assert_eq!(w.observe(49), Delivery::Fresh);
        assert_eq!(w.observe(50), Delivery::Duplicate);
        // A jump forward slides the window; 10 falls off the floor but
        // 49/50 (now 100-101 behind) are still remembered as accepted.
        assert_eq!(w.observe(150), Delivery::Fresh);
        assert_eq!(w.observe(10), Delivery::Stale);
        assert_eq!(w.observe(50), Delivery::Duplicate);
        assert_eq!(w.observe(49), Delivery::Duplicate);
        // Distance WIDTH - 1 is the last distinguishable slot; 23 was
        // never sent, so it is still fresh there.
        assert_eq!(w.observe(150 - (ReplayWindow::WIDTH - 1)), Delivery::Fresh);
        // Distance WIDTH is below the floor.
        assert_eq!(w.observe(150 - ReplayWindow::WIDTH), Delivery::Stale);
    }

    #[test]
    fn giant_jumps_clear_the_window() {
        let mut w = ReplayWindow::new();
        assert_eq!(w.observe(0), Delivery::Fresh);
        assert_eq!(w.observe(u32::MAX), Delivery::Fresh);
        assert_eq!(w.observe(u32::MAX), Delivery::Duplicate);
        assert_eq!(w.observe(u32::MAX - 1), Delivery::Fresh);
        assert_eq!(w.observe(0), Delivery::Stale);
    }

    #[test]
    fn zero_seq_first_contact_works() {
        let mut w = ReplayWindow::new();
        assert_eq!(w.observe(0), Delivery::Fresh);
        assert_eq!(w.observe(0), Delivery::Duplicate);
        assert_eq!(w.observe(1), Delivery::Fresh);
        assert_eq!(w.observe(0), Delivery::Duplicate);
    }

    /// Snapshot/restore round trip: the restored window must classify an
    /// adversarial probe sequence identically to the original.
    #[test]
    fn parts_round_trip_preserves_classification() {
        let mut w = ReplayWindow::new();
        for seq in [5u32, 3, 9, 9, 200, 150, 80] {
            w.observe(seq);
        }
        let (bits, high) = w.to_parts();
        let mut restored = ReplayWindow::from_parts(bits, high);
        for probe in [0u32, 3, 5, 80, 81, 150, 199, 200, 201, 500] {
            assert_eq!(
                w.observe(probe),
                restored.observe(probe),
                "restored window diverged at probe {probe}"
            );
        }
        // An empty window round trips to an empty window.
        let (bits, high) = ReplayWindow::new().to_parts();
        let mut fresh = ReplayWindow::from_parts(bits, high);
        assert_eq!(fresh.high_water(), None);
        assert_eq!(fresh.observe(0), Delivery::Fresh);
    }

    /// The whole point of the type: constant size, regardless of traffic.
    #[test]
    fn window_is_constant_size() {
        assert!(
            std::mem::size_of::<ReplayWindow>() <= 32,
            "ReplayWindow grew: {} bytes",
            std::mem::size_of::<ReplayWindow>()
        );
    }
}
