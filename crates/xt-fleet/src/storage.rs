//! Injectable durable storage: the I/O seam the WAL and snapshots go
//! through.
//!
//! Every byte [`wal::DurableFleet`](crate::wal::DurableFleet) persists
//! flows through a [`Storage`] implementation, never `std::fs` directly.
//! That indirection is what makes crash recovery *property-testable*
//! instead of hoped-for: [`FaultyStorage`] wraps any implementation and
//! deterministically kills the Nth mutating operation — cleanly, as a
//! torn partial write, or after the bytes landed but before the caller
//! heard back — so a test can sweep a seeded "crash" across **every**
//! storage operation a workload performs and assert recovery converges to
//! the uncrashed state each time (`xt-fleet/tests/durability.rs`).
//!
//! The object model is deliberately tiny — named byte objects with whole-
//! object atomic replace, append, and truncate — because that is all a
//! WAL-plus-snapshot design needs, and every operation has an obvious
//! faithful in-memory model ([`MemStorage`]) for deterministic tests and
//! an obvious filesystem mapping ([`DirStorage`]) for real deployments.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Named-object durable storage. All methods take `&self`: one storage
/// may be shared across threads, and implementations synchronize
/// internally.
///
/// Semantics the durability layer depends on:
///
/// * [`Storage::put`] replaces the whole object **atomically** — after a
///   crash the object holds either the old bytes or the new bytes, never
///   a mixture. (Filesystems provide this via write-to-temp + rename.)
/// * [`Storage::append`] may tear on crash: a *prefix* of the appended
///   bytes may land. The WAL's per-record checksums exist exactly to
///   detect and truncate such tails.
/// * [`Storage::truncate`] cuts an object to a length (creating it empty
///   if absent).
pub trait Storage: Send + Sync {
    /// The object's full contents, or `None` if it was never written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Appends `bytes` to the object, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Atomically replaces the object's contents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Truncates the object to `len` bytes (no-op if already shorter;
    /// creates the object empty if absent).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
}

impl<S: Storage + ?Sized> Storage for &S {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        (**self).read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).append(name, bytes)
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).put(name, bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        (**self).truncate(name, len)
    }
}

impl<S: Storage + ?Sized> Storage for Arc<S> {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        (**self).read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).append(name, bytes)
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).put(name, bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        (**self).truncate(name, len)
    }
}

impl<S: Storage + ?Sized> Storage for Box<S> {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        (**self).read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).append(name, bytes)
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).put(name, bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        (**self).truncate(name, len)
    }
}

/// In-memory storage: a mutex-guarded object map behind an `Arc`, so a
/// clone is a second handle onto the *same* disk — which is exactly what
/// a crash test needs: the "process" (a [`DurableFleet`]
/// (crate::wal::DurableFleet)) dies, the "disk" (this map) survives, and
/// recovery reopens it.
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    objects: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    #[must_use]
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Current size of the named object in bytes (0 if absent) —
    /// test/bench introspection.
    #[must_use]
    pub fn object_len(&self, name: &str) -> usize {
        self.objects
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map_or(0, Vec::len)
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .objects
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.objects
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.objects
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut objects = self.objects.lock().unwrap_or_else(PoisonError::into_inner);
        let object = objects.entry(name.to_string()).or_default();
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if object.len() > len {
            object.truncate(len);
        }
        Ok(())
    }
}

/// Filesystem storage: each object is a file under one root directory.
/// [`DirStorage::put`] writes `name.tmp` then renames over `name`, the
/// standard atomic-replace idiom, so a crash mid-snapshot leaves the old
/// snapshot intact.
#[derive(Clone, Debug)]
pub struct DirStorage {
    root: PathBuf,
}

impl DirStorage {
    /// Opens (creating if needed) a storage rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DirStorage { root })
    }

    /// The backing directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        std::fs::write(&tmp, bytes)?;
        // Durability before visibility: the rename must not land before
        // the temp file's contents do.
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, self.path(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.path(name))?;
        if file.metadata()?.len() > len {
            file.set_len(len)?;
            file.sync_data()?;
        }
        Ok(())
    }
}

/// How an injected fault manifests at the doomed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails without touching storage (power lost before
    /// any byte landed).
    Fail,
    /// An append lands only its first `keep` bytes before failing — the
    /// torn-write case the WAL checksums must catch. Non-append
    /// operations treat this as [`FaultMode::Fail`] (`put` is atomic by
    /// contract, truncate has no partial state worth modeling).
    Tear {
        /// Bytes of the append that survive.
        keep: usize,
    },
    /// The operation fully lands, then the failure is reported — the
    /// at-least-once case: the caller thinks it failed, retries after
    /// recovery, and the retry must deduplicate.
    ApplyThenFail,
}

/// Deterministic crash injection around any [`Storage`]: mutating
/// operations (`append`/`put`/`truncate`) are numbered from 0, and the
/// operation numbered `fail_at` suffers `mode`. Reads never fault — the
/// model is a process killed mid-write, not a corrupt medium (corrupt
/// *contents* are what [`FaultMode::Tear`] plus the WAL checksums cover).
///
/// [`FaultyStorage::with_seed`] derives the mode (and tear point) from a
/// seed, so a sweep over `fail_at` × seeds explores the full crash
/// surface reproducibly.
pub struct FaultyStorage<S> {
    inner: S,
    fail_at: u64,
    mode: FaultMode,
    ops: AtomicU64,
}

/// The error kind injected faults surface as.
fn injected(op: &str) -> io::Error {
    io::Error::other(format!("injected crash at {op}"))
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner`, failing mutating operation number `fail_at` with
    /// `mode`.
    #[must_use]
    pub fn new(inner: S, fail_at: u64, mode: FaultMode) -> Self {
        FaultyStorage {
            inner,
            fail_at,
            mode,
            ops: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with a fault at operation `fail_at` whose mode and
    /// tear point derive deterministically from `seed` (SplitMix64 over
    /// `seed ^ fail_at`).
    #[must_use]
    pub fn with_seed(inner: S, seed: u64, fail_at: u64) -> Self {
        let z = crate::splitmix_finalize(seed ^ fail_at.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mode = match z % 3 {
            0 => FaultMode::Fail,
            1 => FaultMode::Tear {
                // Tear somewhere in the first 64 bytes: WAL headers and
                // small records live there, so this exercises torn
                // headers, torn checksums, and torn payloads alike.
                keep: usize::try_from((z >> 8) % 64).expect("bounded"),
            },
            _ => FaultMode::ApplyThenFail,
        };
        FaultyStorage::new(inner, fail_at, mode)
    }

    /// A pass-through wrapper that never faults — used to *count* the
    /// mutating operations a reference workload performs, which bounds
    /// the sweep.
    #[must_use]
    pub fn counting(inner: S) -> Self {
        FaultyStorage::new(inner, u64::MAX, FaultMode::Fail)
    }

    /// Mutating operations performed so far (including the faulted one).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The configured fault mode.
    #[must_use]
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// `true` if this operation number is the doomed one.
    fn doomed(&self) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed) == self.fail_at
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.doomed() {
            return match self.mode {
                FaultMode::Fail => Err(injected("append")),
                FaultMode::Tear { keep } => {
                    let keep = keep.min(bytes.len());
                    self.inner.append(name, &bytes[..keep])?;
                    Err(injected("append (torn)"))
                }
                FaultMode::ApplyThenFail => {
                    self.inner.append(name, bytes)?;
                    Err(injected("append (after apply)"))
                }
            };
        }
        self.inner.append(name, bytes)
    }

    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.doomed() {
            return match self.mode {
                // An atomic put cannot tear: either the rename happened
                // or it did not.
                FaultMode::Fail | FaultMode::Tear { .. } => Err(injected("put")),
                FaultMode::ApplyThenFail => {
                    self.inner.put(name, bytes)?;
                    Err(injected("put (after apply)"))
                }
            };
        }
        self.inner.put(name, bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        if self.doomed() {
            return match self.mode {
                FaultMode::Fail | FaultMode::Tear { .. } => Err(injected("truncate")),
                FaultMode::ApplyThenFail => {
                    self.inner.truncate(name, len)?;
                    Err(injected("truncate (after apply)"))
                }
            };
        }
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_recovers_from_poisoned_lock() {
        let storage = MemStorage::new();
        let poisoner = storage.clone();
        let _ = std::thread::spawn(move || {
            let _objects = poisoner.objects.lock().unwrap();
            panic!("poison the storage lock");
        })
        .join();
        assert!(storage.objects.lock().is_err(), "lock should be poisoned");
        // Every storage operation recovers instead of cascading the
        // panic into WAL replay or snapshot capture.
        storage.put("snapshot", b"state").unwrap();
        storage.append("wal", b"rec").unwrap();
        storage.truncate("wal", 2).unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"re");
        assert_eq!(storage.object_len("snapshot"), 5);
    }

    fn exercise(storage: &impl Storage) {
        assert_eq!(storage.read("wal").unwrap(), None);
        storage.append("wal", b"one").unwrap();
        storage.append("wal", b"two").unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"onetwo");
        storage.truncate("wal", 4).unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"onet");
        // Truncate never extends.
        storage.truncate("wal", 100).unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"onet");
        storage.put("snapshot", b"v1").unwrap();
        storage.put("snapshot", b"v2-longer").unwrap();
        assert_eq!(storage.read("snapshot").unwrap().unwrap(), b"v2-longer");
        storage.truncate("wal", 0).unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"");
        // Truncating an absent object creates it empty.
        storage.truncate("fresh", 0).unwrap();
        assert_eq!(storage.read("fresh").unwrap().unwrap(), b"");
    }

    #[test]
    fn mem_storage_semantics() {
        let storage = MemStorage::new();
        exercise(&storage);
        // Clones share the disk.
        let other = storage.clone();
        other.append("wal", b"x").unwrap();
        assert_eq!(storage.read("wal").unwrap().unwrap(), b"x");
    }

    #[test]
    fn dir_storage_semantics() {
        let root = std::env::temp_dir().join(format!("xt-storage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let storage = DirStorage::open(&root).unwrap();
        exercise(&storage);
        // A second handle on the same root sees the same objects —
        // reopening after a "crash".
        let reopened = DirStorage::open(&root).unwrap();
        assert_eq!(reopened.read("snapshot").unwrap().unwrap(), b"v2-longer");
        // No leftover temp files from atomic puts.
        assert!(!root.join("snapshot.tmp").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn faulty_fail_leaves_storage_untouched() {
        let disk = MemStorage::new();
        let faulty = FaultyStorage::new(disk.clone(), 1, FaultMode::Fail);
        faulty.append("wal", b"first").unwrap();
        assert!(faulty.append("wal", b"second").is_err());
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"first");
        // Operations after the doomed one succeed again (the "process"
        // would be dead, but the wrapper must stay well-defined).
        faulty.append("wal", b"third").unwrap();
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"firstthird");
    }

    #[test]
    fn faulty_tear_applies_a_prefix() {
        let disk = MemStorage::new();
        let faulty = FaultyStorage::new(disk.clone(), 0, FaultMode::Tear { keep: 3 });
        assert!(faulty.append("wal", b"abcdef").is_err());
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"abc");
        // Tear on an atomic put degrades to a clean fail.
        let faulty = FaultyStorage::new(disk.clone(), 0, FaultMode::Tear { keep: 3 });
        assert!(faulty.put("snapshot", b"abcdef").is_err());
        assert_eq!(disk.read("snapshot").unwrap(), None);
    }

    #[test]
    fn faulty_apply_then_fail_lands_the_bytes() {
        let disk = MemStorage::new();
        let faulty = FaultyStorage::new(disk.clone(), 0, FaultMode::ApplyThenFail);
        assert!(faulty.append("wal", b"landed").is_err());
        assert_eq!(disk.read("wal").unwrap().unwrap(), b"landed");
    }

    #[test]
    fn seeded_faults_are_deterministic_and_cover_all_modes() {
        let mut modes = std::collections::BTreeSet::new();
        for fail_at in 0..64u64 {
            let a = FaultyStorage::with_seed(MemStorage::new(), 42, fail_at);
            let b = FaultyStorage::with_seed(MemStorage::new(), 42, fail_at);
            assert_eq!(a.mode(), b.mode(), "seeded mode not deterministic");
            modes.insert(match a.mode() {
                FaultMode::Fail => 0,
                FaultMode::Tear { .. } => 1,
                FaultMode::ApplyThenFail => 2,
            });
        }
        assert_eq!(modes.len(), 3, "a 64-point sweep should hit every mode");
    }
}
