//! Durability for the fleet service: an evidence write-ahead log plus
//! compacted snapshots, over any [`Storage`].
//!
//! # The problem
//!
//! A [`FleetService`] holds the entire population's §5 evidence and §6.4
//! patch epochs in RAM. One restart forgets millions of users' runs and
//! every in-flight prior — fatal for a service whose whole value is
//! *long-horizon* accumulation. [`DurableFleet`] wraps the service so a
//! crash at **any** point loses nothing:
//!
//! * **WAL-first ingest** — every report is appended to an append-only
//!   log *before* it is folded into the evidence shards. Records reuse
//!   the `XTR1` report encoding under a checksummed record header.
//! * **Group commit** — concurrent ingests (a network server's worker
//!   pool, or an explicit [`DurableFleet::ingest_batch`]) stage their
//!   records behind the write gate; one *flush leader* drains everything
//!   staged and appends the whole batch as **one** storage append — one
//!   sync covers N records — then folds each record in LSN order and
//!   completes every staller's receipt. A lone caller degenerates to the
//!   serial path exactly (batch of one, identical error contract), so
//!   group commit is free when there is no concurrency to amortize.
//! * **Compacted snapshots** — on a configurable cadence (and on
//!   explicit request) the service's whole durable state — evidence bit
//!   patterns, epoch, counters, per-client replay windows — is exported
//!   as a [`FleetSnapshot`], atomically replaced on storage, and the WAL
//!   is reset. The running-product evidence form is tiny, so a snapshot
//!   is O(sites), not O(reports ever ingested).
//! * **Recovery** — load the snapshot (if any), truncate any torn WAL
//!   tail (per-record checksum), replay the tail, and resume. Restored
//!   [`ReplayWindow`](crate::delivery::ReplayWindow)s classify
//!   already-folded `(client, seq)` pairs as duplicates, so replaying an
//!   overlapping tail — or a client retrying a report the crash
//!   swallowed the acknowledgment of — is **idempotent**.
//!
//! # WAL format
//!
//! Each record is `kind (u8) ∥ lsn (u64 LE) ∥ payload-len (u32 LE) ∥
//! checksum (u64 LE) ∥ payload`, where the checksum is FNV-1a 64 over
//! everything else. Kind 0 carries an encoded [`RunReport`]; kind 1 is an
//! explicit [`DurableFleet::publish`] (empty payload — auto-publishes on
//! the report cadence are *not* logged, they re-derive deterministically
//! from the persisted `pending` counter during replay). LSNs increase
//! strictly; the snapshot records the highest LSN folded into it, and
//! replay skips records at or below it — that is what makes the
//! snapshot-then-truncate pair safe without atomicity across the two
//! operations.
//!
//! A record that is incomplete, fails its checksum, has an unknown kind,
//! or breaks LSN monotonicity marks a **torn tail**: the crash happened
//! mid-append. Recovery truncates the log back to the last valid record
//! (counted in [`FleetMetrics::torn_tail_truncated`]) rather than
//! skipping — appends are sequential, so nothing valid can follow a torn
//! record.
//!
//! # The recovery invariant
//!
//! The property test (`tests/durability.rs`) sweeps a seeded injected
//! fault across every storage operation a workload performs — clean
//! fail, torn append, or applied-then-failed — kills the fleet at that
//! point, recovers, retries the in-flight call, and requires the final
//! [`FleetService::state_digest`] and all subsequent outcomes to be
//! byte-identical to a run that never crashed.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use xt_obs::Histogram;
use xt_patch::PatchEpoch;

use crate::service::{
    DurabilityStats, FleetConfig, FleetMetrics, FleetService, IngestReceipt, RestoreError,
};
use crate::storage::Storage;
use crate::wire::{FleetSnapshot, RunReport, WireError};

/// Storage object holding the write-ahead log.
pub const WAL_OBJECT: &str = "wal";
/// Storage object holding the latest compacted snapshot.
pub const SNAPSHOT_OBJECT: &str = "snapshot";

/// WAL record kind: an encoded [`RunReport`].
const REC_REPORT: u8 = 0;
/// WAL record kind: an explicit publish (empty payload).
const REC_PUBLISH: u8 = 1;

/// `kind ∥ lsn ∥ len ∥ checksum` — the fixed record header.
const RECORD_HEADER: usize = 1 + 8 + 4 + 8;

/// Payload cap mirrored from the frame layer: a WAL corrupted into a
/// huge length claim must not allocate gigabytes during recovery.
const MAX_RECORD_PAYLOAD: u32 = crate::frame::MAX_FRAME_PAYLOAD;

/// FNV-1a 64 over the record's header fields and payload.
fn record_checksum(kind: u8, lsn: u64, payload: &[u8]) -> u64 {
    const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_BASIS;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    eat(kind);
    lsn.to_le_bytes().iter().for_each(|&b| eat(b));
    (payload.len() as u32)
        .to_le_bytes()
        .iter()
        .for_each(|&b| eat(b));
    payload.iter().for_each(|&b| eat(b));
    h
}

/// Serializes one WAL record.
fn encode_record(kind: u8, lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.push(kind);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_checksum(kind, lsn, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One validated WAL record.
struct WalRecord {
    lsn: u64,
    kind: u8,
    payload: Vec<u8>,
}

/// Walks the log, returning every valid record and the byte length of
/// the valid prefix. Anything after the valid prefix is a torn tail.
fn scan_wal(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0;
    let mut last_lsn = None;
    while bytes.len() - pos >= RECORD_HEADER {
        let kind = bytes[pos];
        let lsn = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("fixed split"));
        let len = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().expect("fixed split"));
        let checksum =
            u64::from_le_bytes(bytes[pos + 13..pos + 21].try_into().expect("fixed split"));
        if !matches!(kind, REC_REPORT | REC_PUBLISH)
            || len > MAX_RECORD_PAYLOAD
            || last_lsn.is_some_and(|last| lsn <= last)
        {
            break;
        }
        let body_end = pos + RECORD_HEADER + len as usize;
        if body_end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER..body_end];
        if record_checksum(kind, lsn, payload) != checksum {
            break;
        }
        records.push(WalRecord {
            lsn,
            kind,
            payload: payload.to_vec(),
        });
        last_lsn = Some(lsn);
        pos = body_end;
    }
    (records, pos)
}

/// Durability-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Write a compacted snapshot (and reset the WAL) after this many
    /// fresh reports since the last snapshot (0 = snapshot only when
    /// [`DurableFleet::snapshot`] is called). Bounds both WAL growth and
    /// recovery replay time.
    pub snapshot_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            snapshot_every: 1024,
        }
    }
}

/// Why a durable operation failed.
#[derive(Debug)]
pub enum DurabilityError {
    /// The backing storage failed; the in-memory service may be behind
    /// the caller's expectation — treat the instance as dead and reopen.
    Storage(io::Error),
    /// Bytes (an ingested report, or a persisted snapshot/record during
    /// recovery) failed wire validation.
    Wire(WireError),
    /// The persisted snapshot is incompatible with the opening
    /// configuration.
    Restore(RestoreError),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Storage(e) => write!(f, "durable storage failed: {e}"),
            DurabilityError::Wire(e) => write!(f, "malformed durable bytes: {e}"),
            DurabilityError::Restore(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Storage(e)
    }
}

impl From<WireError> for DurabilityError {
    fn from(e: WireError) -> Self {
        DurabilityError::Wire(e)
    }
}

impl From<RestoreError> for DurabilityError {
    fn from(e: RestoreError) -> Self {
        DurabilityError::Restore(e)
    }
}

/// State serialized by the write path: WAL order must equal fold order
/// (the auto-publish cadence depends on it), so ingest, publish, and
/// snapshot all run under this one lock.
struct WriteGate {
    /// Fresh (non-duplicate) reports since the last snapshot.
    fresh: u64,
    /// LSN the next WAL record will carry.
    next_lsn: u64,
    /// Reports staged (LSN already assigned, in order) for the flush
    /// leader's next group-commit append.
    staged: Vec<StagedRecord>,
    /// A flush leader is currently draining `staged`; stagers park on
    /// their slots, whole-state operations park on quiescence.
    flushing: bool,
}

/// One report staged for the next group-commit flush.
struct StagedRecord {
    lsn: u64,
    report: RunReport,
    slot: Arc<Slot>,
}

/// One staged record's completion slot: the flush leader fills it, the
/// staging caller collects from it. Errors travel as strings because
/// one storage failure must fan out to every caller in the batch.
struct Slot {
    state: Mutex<Option<Result<IngestReceipt, String>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<IngestReceipt, String>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.ready.notify_all();
    }

    fn collect(&self) -> Result<IngestReceipt, String> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A [`FleetService`] whose state survives crashes: WAL-first ingest,
/// periodic compacted snapshots, checksum-verified recovery. See the
/// module docs for the design and the recovery invariant.
///
/// Reads ([`DurableFleet::latest`], [`DurableFleet::metrics`], epoch
/// polling through [`DurableFleet::service`]) are exactly as concurrent
/// as the underlying service; writes are serialized by one lock so the
/// WAL totally orders them.
pub struct DurableFleet<S> {
    storage: S,
    service: Arc<FleetService>,
    config: DurabilityConfig,
    gate: Mutex<WriteGate>,
    /// Signalled by the flush leader when it retires with nothing
    /// staged; whole-state operations (publish, explicit snapshot) wait
    /// here so their WAL position never lands inside a report batch.
    quiesced: Condvar,
    wal_appends: AtomicU64,
    /// Group-commit appends (each covering ≥ 1 records). `wal_appends /
    /// wal_batches` is the realized batching factor.
    wal_batches: AtomicU64,
    snapshots_written: AtomicU64,
    recoveries: AtomicU64,
    torn_tail_truncated: AtomicU64,
    /// Append latency, registered as `fleet/wal_append` in the wrapped
    /// service's observability registry.
    wal_append_hist: Arc<Histogram>,
    /// Wire-path ingest latency — the same `fleet/ingest` instrument the
    /// plain service records, so the histogram means "decode + admit +
    /// durable fold" whichever backend serves the wire.
    ingest_hist: Arc<Histogram>,
}

impl<S: Storage> DurableFleet<S> {
    /// Opens (or recovers) a durable fleet over `storage`: loads the
    /// snapshot if one exists, truncates any torn WAL tail, replays the
    /// valid tail, and resumes.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Storage`] if storage fails,
    /// [`DurabilityError::Wire`] /[`DurabilityError::Restore`] if the
    /// persisted state is malformed or incompatible with `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if `fleet.dedup_delivery` is off — recovery's idempotence
    /// (and therefore every durability guarantee) rests on replay
    /// dedup.
    pub fn open(
        storage: S,
        fleet: FleetConfig,
        config: DurabilityConfig,
    ) -> Result<Self, DurabilityError> {
        assert!(
            fleet.dedup_delivery,
            "durable mode requires dedup_delivery: idempotent recovery replays the WAL"
        );
        let snapshot_bytes = storage.read(SNAPSHOT_OBJECT)?;
        let (service, snapshot_lsn) = match &snapshot_bytes {
            Some(bytes) => {
                // The snapshot envelope is an 8-byte applied-LSN prefix
                // over the canonical snapshot encoding.
                if bytes.len() < 8 {
                    return Err(WireError::Truncated { at: bytes.len() }.into());
                }
                let lsn = u64::from_le_bytes(bytes[..8].try_into().expect("fixed split"));
                let snap = FleetSnapshot::decode(&bytes[8..])?;
                (FleetService::from_snapshot(fleet, &snap)?, lsn)
            }
            None => (FleetService::new(fleet), 0),
        };
        let wal_bytes = storage.read(WAL_OBJECT)?.unwrap_or_default();
        let (records, valid_len) = scan_wal(&wal_bytes);
        let mut torn = 0;
        if valid_len < wal_bytes.len() {
            storage.truncate(WAL_OBJECT, valid_len as u64)?;
            torn = 1;
        }
        let recovered = snapshot_bytes.is_some() || !wal_bytes.is_empty();
        let mut fresh = 0;
        let mut next_lsn = snapshot_lsn + 1;
        for record in &records {
            next_lsn = record.lsn + 1;
            // Records the snapshot already folded (a crash landed between
            // the snapshot put and the WAL truncate): skipping them is
            // not even necessary for evidence — replay dedup would drop
            // them — but a replayed *publish* would re-reset the pending
            // cadence counter the snapshot preserved, so LSN fencing is
            // what keeps snapshot-then-truncate safe without atomicity.
            if record.lsn <= snapshot_lsn {
                continue;
            }
            match record.kind {
                REC_REPORT => {
                    let report = RunReport::decode(&record.payload)?;
                    if !service.ingest_report(&report).duplicate {
                        fresh += 1;
                    }
                }
                _ => {
                    service.publish();
                }
            }
        }
        let wal_append_hist = service.observability().histogram("fleet/wal_append");
        let ingest_hist = service.observability().histogram("fleet/ingest");
        let fleet = DurableFleet {
            storage,
            service: Arc::new(service),
            config,
            gate: Mutex::new(WriteGate {
                fresh,
                next_lsn,
                staged: Vec::new(),
                flushing: false,
            }),
            quiesced: Condvar::new(),
            wal_appends: AtomicU64::new(0),
            wal_batches: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            recoveries: AtomicU64::new(u64::from(recovered)),
            torn_tail_truncated: AtomicU64::new(torn),
            wal_append_hist,
            ingest_hist,
        };
        Ok(fleet)
    }

    /// The wrapped service, for read paths (epoch polling, metrics,
    /// direct snapshot export). Mutating the service behind the WAL's
    /// back forfeits durability for those mutations.
    #[must_use]
    pub fn service(&self) -> &FleetService {
        &self.service
    }

    /// A shared handle to the wrapped service, for read-side consumers
    /// that outlive a borrow (e.g. a server exposing epoch polling while
    /// the durable fleet serves writes). Same caveat as
    /// [`DurableFleet::service`]: mutations must go through the WAL.
    #[must_use]
    pub fn service_handle(&self) -> Arc<FleetService> {
        Arc::clone(&self.service)
    }

    /// The current epoch snapshot (never blocked by writers).
    #[must_use]
    pub fn latest(&self) -> Arc<PatchEpoch> {
        self.service.latest()
    }

    /// Locks the write gate, recovering from a poisoned lock: every gate
    /// critical section leaves storage and service consistent at each
    /// step boundary (WAL-first ordering), so continuing is sound.
    fn gate(&self) -> MutexGuard<'_, WriteGate> {
        self.gate.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decodes and durably ingests one wire report. Malformed bytes are
    /// rejected (and counted) before anything touches the WAL or the
    /// evidence.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Wire`] on malformed bytes (the service is
    /// unchanged), [`DurabilityError::Storage`] if the WAL append or a
    /// cadence snapshot failed (treat the instance as dead and reopen —
    /// recovery converges to the correct state either way).
    pub fn ingest(&self, bytes: &[u8]) -> Result<IngestReceipt, DurabilityError> {
        let started = Instant::now();
        let report = RunReport::decode(bytes).inspect_err(|_| self.service.note_rejected())?;
        // Admission control before the WAL: a rate-limited report must
        // never be appended, or replay would fold what ingest refused.
        self.service.admit(report.client)?;
        let receipt = self.ingest_report(&report)?;
        self.ingest_hist.record_duration(started.elapsed());
        Ok(receipt)
    }

    /// Durably ingests one decoded report: WAL append first, then the
    /// evidence fold, then (for fresh reports) the snapshot cadence.
    ///
    /// Concurrent callers group-commit: their records share one storage
    /// append (see the module docs). A lone caller is a batch of one.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Storage`] as for [`DurableFleet::ingest`].
    pub fn ingest_report(&self, report: &RunReport) -> Result<IngestReceipt, DurabilityError> {
        let mut receipts = self.commit_reports(std::slice::from_ref(report))?;
        Ok(receipts.pop().expect("one report staged, one receipt"))
    }

    /// Durably ingests a batch of decoded reports under **one** WAL
    /// append — one storage sync covers the whole batch. Receipts come
    /// back in input order; an empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Storage`] as for [`DurableFleet::ingest`]; a
    /// storage failure fails the whole batch (recovery replays whatever
    /// prefix landed, and retrying the batch is dedup-idempotent).
    pub fn ingest_batch(
        &self,
        reports: &[RunReport],
    ) -> Result<Vec<IngestReceipt>, DurabilityError> {
        if reports.is_empty() {
            return Ok(Vec::new());
        }
        self.commit_reports(reports)
    }

    /// Stages `reports` (assigning LSNs in order) and either leads the
    /// flush or waits for the running leader to carry them.
    fn commit_reports(&self, reports: &[RunReport]) -> Result<Vec<IngestReceipt>, DurabilityError> {
        let mut slots = Vec::with_capacity(reports.len());
        {
            let mut gate = self.gate();
            for report in reports {
                let lsn = gate.next_lsn;
                gate.next_lsn = lsn + 1;
                let slot = Slot::new();
                gate.staged.push(StagedRecord {
                    lsn,
                    report: report.clone(),
                    slot: Arc::clone(&slot),
                });
                slots.push(slot);
            }
            if !gate.flushing {
                gate.flushing = true;
                self.run_flush(gate);
            }
            // else: the leader re-checks `staged` before retiring, so it
            // is guaranteed to pick these records up.
        }
        let mut receipts = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.collect() {
                Ok(receipt) => receipts.push(receipt),
                Err(msg) => return Err(DurabilityError::Storage(io::Error::other(msg))),
            }
        }
        Ok(receipts)
    }

    /// The flush leader: drains everything staged, appends the whole
    /// batch as one storage append, folds each record in LSN order under
    /// the gate (WAL order == fold order, the cadence invariant), and
    /// completes every staller's slot. Loops until nothing new was
    /// staged while it worked, then retires and signals quiescence.
    fn run_flush<'a>(&'a self, mut gate: MutexGuard<'a, WriteGate>) {
        loop {
            let batch = std::mem::take(&mut gate.staged);
            if batch.is_empty() {
                gate.flushing = false;
                drop(gate);
                self.quiesced.notify_all();
                return;
            }
            // Encode and append outside the gate so stagers can pile the
            // next batch on while this one syncs.
            drop(gate);
            let mut bytes = Vec::new();
            for record in &batch {
                bytes.extend_from_slice(&encode_record(
                    REC_REPORT,
                    record.lsn,
                    &record.report.encode(),
                ));
            }
            let append_started = Instant::now();
            let appended = self.storage.append(WAL_OBJECT, &bytes);
            self.wal_append_hist
                .record_duration(append_started.elapsed());
            gate = self.gate();
            match appended {
                Ok(()) => {
                    self.wal_appends
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    self.wal_batches.fetch_add(1, Ordering::Relaxed);
                    let mut results = Vec::with_capacity(batch.len());
                    for record in &batch {
                        let receipt = self.service.ingest_report(&record.report);
                        if !receipt.duplicate {
                            gate.fresh += 1;
                        }
                        results.push(receipt);
                    }
                    let mut failure = None;
                    if self.config.snapshot_every > 0 && gate.fresh >= self.config.snapshot_every {
                        if let Err(e) = self.write_snapshot(&mut gate) {
                            failure = Some(e.to_string());
                        }
                    }
                    for (record, receipt) in batch.iter().zip(results) {
                        match &failure {
                            // The folds are WAL-covered and replay-dedup
                            // idempotent, but the instance must be
                            // treated as dead: the cadence-snapshot
                            // failure reaches every caller in the batch
                            // (for a batch of one this is exactly the
                            // serial contract).
                            Some(msg) => record.slot.fill(Err(msg.clone())),
                            None => record.slot.fill(Ok(receipt)),
                        }
                    }
                }
                Err(e) => {
                    // Nothing folded: the WAL may hold a torn prefix of
                    // this batch, which recovery truncates or replays —
                    // either converges once callers retry.
                    let msg = e.to_string();
                    for record in &batch {
                        record.slot.fill(Err(msg.clone()));
                    }
                }
            }
        }
    }

    /// Holds the gate until no flush leader runs and nothing is staged.
    fn wait_quiescent<'a>(
        &'a self,
        mut gate: MutexGuard<'a, WriteGate>,
    ) -> MutexGuard<'a, WriteGate> {
        while gate.flushing || !gate.staged.is_empty() {
            gate = self
                .quiesced
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
        }
        gate
    }

    /// Durably publishes: the publish intent is WAL-logged, then applied,
    /// so recovery replays it at the same point in the report order.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Storage`] if the WAL append failed (the epoch
    /// was not advanced).
    pub fn publish(&self) -> Result<Arc<PatchEpoch>, DurabilityError> {
        let mut gate = self.wait_quiescent(self.gate());
        let lsn = gate.next_lsn;
        // xt-analyze: allow(time-source) -- WAL append latency observation; never reaches the record bytes
        let append_started = Instant::now();
        self.storage
            .append(WAL_OBJECT, &encode_record(REC_PUBLISH, lsn, &[]))?;
        // xt-analyze: allow(obs-in-det) -- records append latency; the WAL record is already on disk
        self.wal_append_hist
            .record_duration(append_started.elapsed());
        gate.next_lsn = lsn + 1;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        Ok(self.service.publish())
    }

    /// Writes a compacted snapshot now and resets the WAL.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Storage`] if storage failed; if the failure
    /// landed between the snapshot put and the WAL reset, recovery
    /// LSN-fences the overlap (see the module docs).
    pub fn snapshot(&self) -> Result<(), DurabilityError> {
        let mut gate = self.wait_quiescent(self.gate());
        self.write_snapshot(&mut gate)
    }

    /// Snapshot under the held gate: export, atomically replace, reset
    /// the WAL.
    fn write_snapshot(&self, gate: &mut WriteGate) -> Result<(), DurabilityError> {
        // Everything up to (not including) next_lsn is folded into this
        // export — the gate is held, so no concurrent writer can slip a
        // record in between.
        let applied_lsn = gate.next_lsn - 1;
        let snap = self.service.export_snapshot();
        let mut bytes = applied_lsn.to_le_bytes().to_vec();
        bytes.extend_from_slice(&snap.encode());
        self.storage.put(SNAPSHOT_OBJECT, &bytes)?;
        self.storage.truncate(WAL_OBJECT, 0)?;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        gate.fresh = 0;
        Ok(())
    }

    /// Service counters plus this layer's durability counters
    /// ([`FleetMetrics::wal_appends`], [`FleetMetrics::snapshots_written`],
    /// [`FleetMetrics::recoveries`], [`FleetMetrics::torn_tail_truncated`]
    /// — the latter two describe this instance's `open`).
    #[must_use]
    pub fn metrics(&self) -> FleetMetrics {
        self.service.metrics_with(DurabilityStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_batches: self.wal_batches.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            torn_tail_truncated: self.torn_tail_truncated.load(Ordering::Relaxed),
        })
    }

    /// The service's canonical state digest
    /// ([`FleetService::state_digest`]).
    #[must_use]
    pub fn state_digest(&self) -> u128 {
        self.service.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn report(client: u64, seq: u32, site: u32) -> RunReport {
        RunReport {
            client,
            seq,
            failed: true,
            clock: 500,
            n_sites: 100,
            overflow_obs: Vec::new(),
            dangling_obs: vec![(site, 0.5, true)],
            pad_hints: Vec::new(),
            defer_hints: vec![(site, 0xF, 30)],
        }
    }

    fn config() -> FleetConfig {
        FleetConfig {
            shards: 4,
            publish_every: 0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn state_survives_reopen_via_wal_replay() {
        let disk = MemStorage::new();
        let durability = DurabilityConfig { snapshot_every: 0 };
        let digest;
        {
            let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
            assert_eq!(
                fleet.metrics().recoveries,
                0,
                "fresh store is not a recovery"
            );
            for client in 0..20 {
                fleet.ingest_report(&report(client, 0, 0xBAD)).unwrap();
            }
            fleet.publish().unwrap();
            assert_eq!(fleet.latest().number, 1);
            let m = fleet.metrics();
            assert_eq!(m.wal_appends, 21);
            assert_eq!(m.snapshots_written, 0);
            digest = fleet.state_digest();
        }
        let fleet = DurableFleet::open(disk, config(), durability).unwrap();
        let m = fleet.metrics();
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.reports, 20);
        assert_eq!(m.epoch, 1);
        assert_eq!(fleet.state_digest(), digest, "replayed state diverged");
        // Replayed dedup state still drops the clients' old sequences.
        assert!(fleet.ingest_report(&report(3, 0, 0xBAD)).unwrap().duplicate);
    }

    #[test]
    fn snapshot_compacts_and_restores_bit_identically() {
        let disk = MemStorage::new();
        let durability = DurabilityConfig { snapshot_every: 8 };
        let digest;
        {
            let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
            for client in 0..20 {
                fleet.ingest_report(&report(client, 0, 0xBAD)).unwrap();
            }
            let m = fleet.metrics();
            assert_eq!(m.snapshots_written, 2, "cadence of 8 over 20 reports");
            digest = fleet.state_digest();
            // The WAL holds only the post-snapshot tail (20 % 8 = 4).
            assert!(disk.object_len(WAL_OBJECT) < 21 * 100);
        }
        let fleet = DurableFleet::open(disk, config(), durability).unwrap();
        assert_eq!(fleet.state_digest(), digest);
        assert_eq!(fleet.metrics().reports, 20);
    }

    #[test]
    fn restore_tolerates_a_different_shard_count() {
        let disk = MemStorage::new();
        let durability = DurabilityConfig { snapshot_every: 4 };
        let digest;
        {
            let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
            for client in 0..10 {
                fleet
                    .ingest_report(&report(client, 0, 0xBAD + client as u32))
                    .unwrap();
            }
            digest = fleet.state_digest();
        }
        let wider = FleetConfig {
            shards: 16,
            ..config()
        };
        let fleet = DurableFleet::open(disk, wider, durability).unwrap();
        assert_eq!(
            fleet.state_digest(),
            digest,
            "canonical digest should be shard-layout independent"
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let disk = MemStorage::new();
        let durability = DurabilityConfig { snapshot_every: 0 };
        {
            let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
            for client in 0..5 {
                fleet.ingest_report(&report(client, 0, 0xBAD)).unwrap();
            }
        }
        // A crash mid-append: only half of a sixth record landed.
        let tail = encode_record(REC_REPORT, 6, &report(99, 0, 0xBAD).encode());
        disk.append(WAL_OBJECT, &tail[..tail.len() / 2]).unwrap();
        let torn_len = disk.object_len(WAL_OBJECT);
        let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
        let m = fleet.metrics();
        assert_eq!(m.torn_tail_truncated, 1);
        assert_eq!(m.reports, 5, "torn record must not be half-applied");
        assert!(
            disk.object_len(WAL_OBJECT) < torn_len,
            "torn tail left in place"
        );
        // The truncated log is valid: a further reopen is torn-free.
        drop(fleet);
        let fleet = DurableFleet::open(disk, config(), durability).unwrap();
        assert_eq!(fleet.metrics().torn_tail_truncated, 0);
        assert_eq!(fleet.metrics().reports, 5);
    }

    #[test]
    fn corrupted_record_checksum_fences_the_rest_of_the_log() {
        let disk = MemStorage::new();
        let durability = DurabilityConfig { snapshot_every: 0 };
        {
            let fleet = DurableFleet::open(disk.clone(), config(), durability).unwrap();
            for client in 0..5 {
                fleet.ingest_report(&report(client, 0, 0xBAD)).unwrap();
            }
        }
        // Flip one payload byte of the third record.
        let mut bytes = disk.read(WAL_OBJECT).unwrap().unwrap();
        let record_len = bytes.len() / 5;
        bytes[2 * record_len + RECORD_HEADER + 10] ^= 0xFF;
        disk.put(WAL_OBJECT, &bytes).unwrap();
        let fleet = DurableFleet::open(disk, config(), durability).unwrap();
        let m = fleet.metrics();
        assert_eq!(m.torn_tail_truncated, 1);
        assert_eq!(
            m.reports, 2,
            "records before the corruption replay, nothing after"
        );
    }

    #[test]
    fn rejected_bytes_never_reach_the_wal() {
        let disk = MemStorage::new();
        let fleet =
            DurableFleet::open(disk.clone(), config(), DurabilityConfig::default()).unwrap();
        assert!(matches!(
            fleet.ingest(b"not a report"),
            Err(DurabilityError::Wire(_))
        ));
        assert_eq!(fleet.metrics().rejected_reports, 1);
        assert_eq!(fleet.metrics().wal_appends, 0);
        assert_eq!(disk.object_len(WAL_OBJECT), 0);
    }

    #[test]
    #[should_panic(expected = "dedup_delivery")]
    fn durable_mode_requires_dedup() {
        let _ = DurableFleet::open(
            MemStorage::new(),
            FleetConfig {
                dedup_delivery: false,
                ..FleetConfig::default()
            },
            DurabilityConfig::default(),
        );
    }
}
