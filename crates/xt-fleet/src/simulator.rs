//! The fleet simulator: cumulative mode (§5) at population scale.
//!
//! The paper measures cumulative-mode convergence for *one* user
//! accumulating evidence across their own runs (22–34 runs for the
//! injected dangling faults of §7.2). The deployment §6.4 argues for is a
//! *fleet*: every user contributes every run's summary, the service pools
//! them, and the whole population converges in wall-clock terms as fast as
//! reports arrive — nobody has to crash 30 times themselves.
//!
//! [`FleetSimulator`] reproduces that loop. It spawns one scoped thread
//! per simulated client; each client is a *persistent executor* — it owns
//! one [`ReusableStack`](exterminator::runner::ReusableStack) whose
//! simulated address space is reset (not rebuilt) between rounds, exactly
//! like the replica workers of [`exterminator::pool`] — and repeatedly
//!
//! 1. polls [`FleetService::latest`] for the current patch epoch (the
//!    same hot-reload a long-lived [`ReplicaPool`] applies via
//!    `load_epoch`),
//! 2. executes the workload under those patches with its injected fault
//!    and a fresh DieHard heap seed
//!    ([`exterminator::summarized_run_reusable`]),
//! 3. encodes the run's [`RunSummary`](xt_isolate::cumulative::RunSummary)
//!    as a wire [`RunReport`] and submits it.
//!
//! [`ReplicaPool`]: exterminator::pool::ReplicaPool
//!
//! A monitor watches each newly published epoch and probes whether the
//! epoch's patch table actually corrects each injected fault (independent
//! verification runs, the §6.3 discipline); once every fault verifies, the
//! fleet is told to stop and the per-fault convergence points (epoch,
//! reports ingested, fleet-wide runs) are reported in [`FleetOutcome`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use exterminator::runner::{execute, find_manifesting_fault, ReusableStack, RunConfig};
use exterminator::summarized_run_reusable;
use xt_alloc::ObjectId;
use xt_diefast::DieFastConfig;
use xt_faults::{FaultKind, FaultSpec};
use xt_obs::RegistrySnapshot;
use xt_patch::{PatchEpoch, PatchTable};
use xt_workloads::{Workload, WorkloadInput};

use crate::service::{FleetConfig, FleetMetrics, FleetService};
use crate::wire::RunReport;

/// Simulator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Simulated clients (one scoped thread each).
    pub clients: usize,
    /// Runs each client performs before giving up.
    pub max_rounds: usize,
    /// Seed from which every client/run heap seed derives.
    pub base_seed: u64,
    /// Heap multiplier `M` for client runs (paper default 2).
    pub multiplier: f64,
    /// Independent verification runs per fault per epoch check.
    pub verify_probes: usize,
    /// The aggregation service's configuration.
    pub fleet: FleetConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients: 64,
            max_rounds: 8,
            base_seed: 0xF1EE7,
            multiplier: 2.0,
            verify_probes: 4,
            fleet: FleetConfig::default(),
        }
    }
}

/// When (if ever) one injected fault became corrected by a published epoch.
#[derive(Clone, Copy, Debug)]
pub struct FaultConvergence {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Whether some epoch's patches verifiably correct it.
    pub corrected: bool,
    /// First epoch whose patches verified (0 if never).
    pub epoch: u64,
    /// Reports the service had ingested when that epoch was published —
    /// the population-scale analogue of the paper's per-user
    /// runs-to-isolation (each simulated run submits exactly one report).
    pub reports: u64,
}

/// What a fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// All injected faults verified corrected.
    pub converged: bool,
    /// Total workload executions across the fleet (excluding verification
    /// probes).
    pub total_runs: u64,
    /// Final service counters.
    pub metrics: FleetMetrics,
    /// Per-fault convergence points.
    pub per_fault: Vec<FaultConvergence>,
    /// The epoch current when the fleet stopped.
    pub final_epoch: Arc<PatchEpoch>,
    /// The service's merged observability snapshot at shutdown: the
    /// `fleet/...` counters plus per-stage latency histograms
    /// (ingest/fold/publish), render with
    /// [`RegistrySnapshot::render_text`].
    pub observability: RegistrySnapshot,
}

/// Drives a population of simulated clients against one [`FleetService`].
pub struct FleetSimulator<'a, W> {
    workload: &'a W,
    input: WorkloadInput,
    faults: Vec<FaultSpec>,
    config: SimConfig,
}

impl<'a, W: Workload + Sync> FleetSimulator<'a, W> {
    /// Creates a simulator. Client `i` injects `faults[i % faults.len()]`;
    /// an empty fault list simulates a healthy fleet.
    #[must_use]
    pub fn new(
        workload: &'a W,
        input: WorkloadInput,
        faults: Vec<FaultSpec>,
        config: SimConfig,
    ) -> Self {
        FleetSimulator {
            workload,
            input,
            faults,
            config,
        }
    }

    /// The fault client `client` injects.
    fn fault_for(&self, client: usize) -> Option<FaultSpec> {
        if self.faults.is_empty() {
            None
        } else {
            Some(self.faults[client % self.faults.len()])
        }
    }

    /// SplitMix-style derivation of one client run's heap seed.
    fn heap_seed(&self, client: usize, round: usize) -> u64 {
        crate::splitmix_finalize(
            self.config
                .base_seed
                .wrapping_add((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((round as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        )
    }

    /// Independent verification runs: does `patches` correct `fault`?
    fn fault_corrected(&self, fault: FaultSpec, patches: &PatchTable) -> bool {
        verified_corrected(
            self.workload,
            &self.input,
            fault,
            patches,
            self.config.verify_probes,
            self.config.base_seed,
        )
    }

    /// Runs the fleet to convergence or exhaustion.
    pub fn run(&self) -> FleetOutcome {
        let service = FleetService::new(self.config.fleet);
        let stop = AtomicBool::new(false);
        let total_runs = AtomicU64::new(0);
        let finished = AtomicU64::new(0);
        let fill = self.config.fleet.isolator.fill_probability;
        let mut per_fault: Vec<FaultConvergence> = self
            .faults
            .iter()
            .map(|&fault| FaultConvergence {
                fault,
                corrected: false,
                epoch: 0,
                reports: 0,
            })
            .collect();

        std::thread::scope(|scope| {
            for client in 0..self.config.clients {
                let fault = self.fault_for(client);
                let (service, stop, total_runs, finished) =
                    (&service, &stop, &total_runs, &finished);
                scope.spawn(move || {
                    // One reusable allocator stack for this client's whole
                    // lifetime: rounds reset the address space instead of
                    // rebuilding it (behaviour is identical either way —
                    // the core determinism tests pin that).
                    let mut stack = ReusableStack::new();
                    for round in 0..self.config.max_rounds {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let epoch = service.latest();
                        let run = summarized_run_reusable(
                            self.workload,
                            &self.input,
                            fault,
                            epoch.patches.clone(),
                            self.heap_seed(client, round),
                            fill,
                            self.config.multiplier,
                            &mut stack,
                        );
                        total_runs.fetch_add(1, Ordering::Relaxed);
                        let report =
                            RunReport::from_summary(client as u64, round as u32, &run.summary);
                        service
                            .ingest(&report.encode())
                            .expect("self-encoded report is well-formed");
                    }
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            }

            // Monitor: verify each newly published epoch against the
            // injected faults; stop the fleet once all verify.
            let mut last_checked = 0u64;
            while (finished.load(Ordering::Relaxed) as usize) < self.config.clients {
                let (epoch, published_at) = service.latest_with_reports();
                if epoch.number > last_checked && !epoch.patches.is_empty() {
                    last_checked = epoch.number;
                    self.check_epoch(&epoch, published_at, &mut per_fault);
                    if per_fault.iter().all(|f| f.corrected) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Whatever evidence is still unpublished gets one final epoch, and
        // stragglers one final verification.
        service.publish();
        let (final_epoch, published_at) = service.latest_with_reports();
        if per_fault.iter().any(|f| !f.corrected) && !final_epoch.patches.is_empty() {
            self.check_epoch(&final_epoch, published_at, &mut per_fault);
        }
        let mut observability = service.observability().snapshot();
        observability.merge(service.metrics().counters_snapshot());
        FleetOutcome {
            converged: per_fault.iter().all(|f| f.corrected),
            total_runs: total_runs.load(Ordering::Relaxed),
            metrics: service.metrics(),
            per_fault,
            final_epoch: service.latest(),
            observability,
        }
    }

    /// Records convergence points for faults `epoch` newly corrects.
    /// `published_at` is the report count captured when this epoch was
    /// *published* (read atomically with the snapshot), not when this
    /// (possibly CPU-starved) verification finishes — clients keep
    /// running while probes execute.
    fn check_epoch(
        &self,
        epoch: &PatchEpoch,
        published_at: u64,
        per_fault: &mut [FaultConvergence],
    ) {
        for fc in per_fault.iter_mut().filter(|f| !f.corrected) {
            if self.fault_corrected(fc.fault, &epoch.patches) {
                fc.corrected = true;
                fc.epoch = epoch.number;
                fc.reports = published_at;
            }
        }
    }
}

/// Independent verification runs (§6.3): `patches` corrects `fault` if
/// `probes` fresh-seeded executions of the faulty workload all complete.
#[must_use]
pub fn verified_corrected(
    workload: &dyn Workload,
    input: &WorkloadInput,
    fault: FaultSpec,
    patches: &PatchTable,
    probes: usize,
    base_seed: u64,
) -> bool {
    (0..probes as u64).all(|probe| {
        let mut config = RunConfig::with_seed(base_seed ^ (0xC0DE + probe * 97));
        config.fault = Some(fault);
        config.patches = patches.clone();
        config.halt_on_signal = true;
        !execute(workload, input, config).failed()
    })
}

/// `true` if single-user cumulative mode can isolate `fault` within
/// `max_runs` runs *and* the generated patches verifiably correct it —
/// the screen [`demo_faults`] applies. Not every manifesting fault
/// qualifies: on this reproduction's small heaps some dangling faults
/// never develop the canary/failure correlation (the `exp_injected_*`
/// experiments document the same effect), and their evidence would never
/// converge no matter how many clients report.
#[must_use]
pub fn isolatable(
    workload: &dyn Workload,
    input: &WorkloadInput,
    fault: FaultSpec,
    max_runs: usize,
) -> bool {
    let mut mode = CumulativeMode::new(CumulativeModeConfig::default());
    let outcome = mode.run_until_isolated(workload, input, Some(fault), max_runs);
    outcome.isolated
        && !outcome.patches.is_empty()
        && verified_corrected(workload, input, fault, &outcome.patches, 4, 0xF1EE7)
}

/// Finds the pair of demonstration faults the example and `exp_fleet` use:
/// a buffer overflow whose culprit object comes from a *cold* allocation
/// site (the Mozilla-IDN shape — hot-site overflows drown their own
/// evidence, exactly as §7.3 observes) and a dangling free. Both are
/// screened with [`isolatable`], so a fleet pooling enough reports is
/// guaranteed to converge on them.
#[must_use]
pub fn demo_faults(
    workload: &dyn Workload,
    input: &WorkloadInput,
) -> Option<(FaultSpec, FaultSpec)> {
    let overflow = find_cold_overflow(workload, input)?;
    let dangling = (1..200)
        .filter_map(|sel| {
            find_manifesting_fault(
                workload,
                input,
                FaultKind::DanglingFree { lag: 12 },
                100,
                450,
                6,
                4,
                sel,
            )
        })
        .find(|&fault| isolatable(workload, input, fault, 100))?;
    Some((overflow, dangling))
}

/// Scans allocation history for rarely-allocating sites and returns the
/// first cold-site overflow that manifests and screens as isolatable.
fn find_cold_overflow(workload: &dyn Workload, input: &WorkloadInput) -> Option<FaultSpec> {
    let reference = {
        let mut config = RunConfig::with_seed(424242);
        config.diefast = DieFastConfig::cumulative_with_seed(424242);
        execute(workload, input, config)
    };
    let history = reference.history?;
    for t in (120..500u64).step_by(7) {
        let Some(rec) = history.get(ObjectId::from_raw(t)) else {
            continue;
        };
        if history.records_from_site(rec.alloc_site).count() > 3 {
            continue; // hot site: weak per-run evidence
        }
        let found = find_manifesting_fault(
            workload,
            input,
            FaultKind::BufferOverflow {
                delta: 20,
                fill: 0xEE,
            },
            t,
            t + 1,
            1,
            6,
            11,
        );
        if let Some(fault) = found {
            if isolatable(workload, input, fault, 100) {
                return Some(fault);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_workloads::EspressoLike;

    #[test]
    fn healthy_fleet_publishes_no_patches() {
        let workload = EspressoLike::new();
        let sim = FleetSimulator::new(
            &workload,
            WorkloadInput::with_seed(4),
            Vec::new(),
            SimConfig {
                clients: 6,
                max_rounds: 2,
                fleet: FleetConfig {
                    shards: 4,
                    publish_every: 4,
                    ..FleetConfig::default()
                },
                ..SimConfig::default()
            },
        );
        let outcome = sim.run();
        assert!(outcome.converged, "no faults: trivially converged");
        assert!(outcome.final_epoch.patches.is_empty(), "false positives");
        assert_eq!(outcome.metrics.reports, 12, "6 clients x 2 rounds");
        assert_eq!(outcome.total_runs, 12);
        assert_eq!(outcome.metrics.failed_reports, 0);
    }

    #[test]
    fn small_fleet_converges_on_a_dangling_fault() {
        let input = WorkloadInput::with_seed(21).intensity(3);
        let workload = EspressoLike::new();
        // The first dangling fault that passes the `isolatable` screen for
        // this input (sel = 7 in the `demo_faults` scan) — hardcoded so the
        // test does not pay the screening search. A single §5 user needs
        // ~34 runs on it; the fleet below can pool up to 192.
        let fault = FaultSpec {
            kind: FaultKind::DanglingFree { lag: 12 },
            trigger: xt_alloc::AllocTime::from_raw(364),
        };
        assert!(
            !verified_corrected(&workload, &input, fault, &PatchTable::new(), 4, 0xF1EE7),
            "fault must manifest under empty patches for the test to mean anything"
        );
        // 16 clients x up to 12 rounds ≈ 190 pooled runs — comfortably
        // beyond the 22–34 a single §7.2 user needed.
        let sim = FleetSimulator::new(
            &workload,
            input,
            vec![fault],
            SimConfig {
                clients: 16,
                max_rounds: 12,
                fleet: FleetConfig {
                    shards: 4,
                    publish_every: 16,
                    ..FleetConfig::default()
                },
                ..SimConfig::default()
            },
        );
        let outcome = sim.run();
        assert!(
            outcome.converged,
            "fleet never corrected the dangling fault: {:?} (epoch {:?})",
            outcome.per_fault, outcome.final_epoch.number
        );
        let fc = outcome.per_fault[0];
        assert!(fc.epoch >= 1);
        assert!(fc.reports > 0);
        assert!(
            outcome.final_epoch.patches.deferrals().count() > 0,
            "dangling correction must be a deferral"
        );
    }
}
