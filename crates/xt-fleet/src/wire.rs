//! The client→service wire format: one run, a few hundred bytes.
//!
//! Cumulative mode's whole deployment argument (§5, §6.4) is that a run
//! reduces to "a few kilobytes per execution, compared to tens or hundreds
//! of megabytes for each heap image". [`RunReport`] is that reduction on
//! the wire: a [`RunSummary`](xt_isolate::cumulative::RunSummary) plus the
//! client identity and sequence number the service needs for at-least-once
//! delivery dedup.
//!
//! The encoding is a fixed little-endian binary layout (magic, flags,
//! identity, four counted arrays). No self-describing framing — both ends
//! are this crate, and `xt-net` wraps reports in a [`frame`](crate::frame)
//! when they cross a socket — but decode validates everything through the
//! shared offset-tracking [`Reader`](crate::frame::Reader): magic,
//! version, boolean bytes, array bounds, the site-population claim, and
//! trailing garbage all fail loudly with a [`WireError`] naming the
//! offset.

use xt_alloc::{AllocTime, SiteHash};
use xt_isolate::cumulative::{RunSummary, SiteObservation};

use crate::frame::Reader;
pub use crate::frame::WireError;

/// First bytes of every report: `XTR` plus the format version.
const MAGIC: [u8; 4] = *b"XTR1";

/// First bytes of every durability snapshot: `XTS` plus the version.
const SNAPSHOT_MAGIC: [u8; 4] = *b"XTS1";

/// Cap on the epoch-text field of a snapshot. An epoch's text form is one
/// line per patched site; even a million-site fleet stays far below this.
const MAX_EPOCH_TEXT: u32 = 1 << 24;

/// Cap on a snapshot evidence grid's node count. Grids are
/// `integration_steps + 1` nodes and configs use dozens of steps; a
/// hostile count must not turn into a huge allocation per site record.
const MAX_GRID_NODES: u32 = 1 << 16;

/// Hard cap on any array count in a decoded report — a corrupt or hostile
/// length prefix must not turn into a multi-gigabyte allocation. The
/// site-population claim (`n_sites`) is held to the same cap: it feeds
/// the §5 Bayesian prior `N`, where one absurd value would out-max every
/// honest report in the fleet.
const MAX_ENTRIES: u32 = 1 << 20;

/// One client run, as submitted to the aggregation service.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Stable client identity (assigned out of band).
    pub client: u64,
    /// Client-local run sequence number; `(client, seq)` dedups redelivery.
    pub seq: u32,
    /// Whether the run failed (signal, crash, or divergence).
    pub failed: bool,
    /// Final allocation clock.
    pub clock: u64,
    /// Distinct allocation sites the run observed (`N` for the prior).
    pub n_sites: u32,
    /// §5.1 overflow-criteria observations: `(site, X, Y)`.
    pub overflow_obs: Vec<(u32, f64, bool)>,
    /// §5.2 canary observations: `(site, X, Y)`.
    pub dangling_obs: Vec<(u32, f64, bool)>,
    /// Pad hints: `(site, bytes)`.
    pub pad_hints: Vec<(u32, u32)>,
    /// Deferral hints: `(alloc site, free site, ticks)`.
    pub defer_hints: Vec<(u32, u32, u64)>,
}

impl RunReport {
    /// Wraps one run's [`RunSummary`] for submission by `client`.
    #[must_use]
    pub fn from_summary(client: u64, seq: u32, summary: &RunSummary) -> Self {
        RunReport {
            client,
            seq,
            failed: summary.failed,
            clock: summary.clock.raw(),
            // Clamped to the decode-side cap so a self-encoded report is
            // always well-formed on the wire.
            n_sites: u32::try_from(summary.n_sites)
                .unwrap_or(MAX_ENTRIES)
                .min(MAX_ENTRIES),
            overflow_obs: summary
                .overflow_obs
                .iter()
                .map(|o| (o.site.raw(), o.x, o.y))
                .collect(),
            dangling_obs: summary
                .dangling_obs
                .iter()
                .map(|o| (o.site.raw(), o.x, o.y))
                .collect(),
            pad_hints: summary
                .pad_hints
                .iter()
                .map(|&(site, pad)| (site.raw(), pad))
                .collect(),
            defer_hints: summary
                .defer_hints
                .iter()
                .map(|&(alloc, free, ticks)| (alloc.raw(), free.raw(), ticks))
                .collect(),
        }
    }

    /// Reconstructs the [`RunSummary`] (used by sequential reference
    /// implementations and tests; the service folds reports directly).
    #[must_use]
    pub fn to_summary(&self) -> RunSummary {
        RunSummary {
            failed: self.failed,
            clock: AllocTime::from_raw(self.clock),
            n_sites: self.n_sites as usize,
            overflow_obs: self
                .overflow_obs
                .iter()
                .map(|&(site, x, y)| SiteObservation {
                    site: SiteHash::from_raw(site),
                    x,
                    y,
                })
                .collect(),
            dangling_obs: self
                .dangling_obs
                .iter()
                .map(|&(site, x, y)| SiteObservation {
                    site: SiteHash::from_raw(site),
                    x,
                    y,
                })
                .collect(),
            pad_hints: self
                .pad_hints
                .iter()
                .map(|&(site, pad)| (SiteHash::from_raw(site), pad))
                .collect(),
            defer_hints: self
                .defer_hints
                .iter()
                .map(|&(alloc, free, ticks)| {
                    (SiteHash::from_raw(alloc), SiteHash::from_raw(free), ticks)
                })
                .collect(),
        }
    }

    /// Total per-site observations carried.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.overflow_obs.len() + self.dangling_obs.len()
    }

    /// Serializes to the binary wire format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            44 + 13 * (self.overflow_obs.len() + self.dangling_obs.len())
                + 8 * self.pad_hints.len()
                + 16 * self.defer_hints.len(),
        );
        out.extend_from_slice(&MAGIC);
        out.push(u8::from(self.failed));
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.clock.to_le_bytes());
        out.extend_from_slice(&self.n_sites.to_le_bytes());
        out.extend_from_slice(&(self.overflow_obs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.dangling_obs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.pad_hints.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.defer_hints.len() as u32).to_le_bytes());
        for &(site, x, y) in self.overflow_obs.iter().chain(&self.dangling_obs) {
            out.extend_from_slice(&site.to_le_bytes());
            out.extend_from_slice(&x.to_bits().to_le_bytes());
            out.push(u8::from(y));
        }
        for &(site, pad) in &self.pad_hints {
            out.extend_from_slice(&site.to_le_bytes());
            out.extend_from_slice(&pad.to_le_bytes());
        }
        for &(alloc, free, ticks) in &self.defer_hints {
            out.extend_from_slice(&alloc.to_le_bytes());
            out.extend_from_slice(&free.to_le_bytes());
            out.extend_from_slice(&ticks.to_le_bytes());
        }
        out
    }

    /// Parses the binary wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed byte.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.array::<4>()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let failed = r.bool()?;
        let client = r.u64()?;
        let seq = r.u32()?;
        let clock = r.u64()?;
        let n_sites_at = r.pos();
        let n_sites = r.u32()?;
        let n_overflow = r.count(MAX_ENTRIES)?;
        let n_dangling = r.count(MAX_ENTRIES)?;
        let n_pads = r.count(MAX_ENTRIES)?;
        let n_defers = r.count(MAX_ENTRIES)?;
        // The site population is the report's claim about the prior `N`.
        // Reject absurd values (far above any population the entry cap
        // admits) and the internally inconsistent zero-sites shape:
        // every observation *and* every pad/defer hint names a site the
        // run observed, so any non-empty array implies `N >= 1`.
        let site_entries =
            u64::from(n_overflow) + u64::from(n_dangling) + u64::from(n_pads) + u64::from(n_defers);
        if n_sites > MAX_ENTRIES || (n_sites == 0 && site_entries > 0) {
            return Err(WireError::BadSiteCount {
                at: n_sites_at,
                n_sites,
                observations: site_entries,
            });
        }
        let mut obs = |n: u32| -> Result<Vec<(u32, f64, bool)>, WireError> {
            (0..n)
                .map(|_| {
                    let site = r.u32()?;
                    let at = r.pos();
                    let x = f64::from_bits(r.u64()?);
                    // A probability must be finite and in [0, 1]: one NaN
                    // folded into a site's running products would poison
                    // its evidence permanently (NaN ratios never flag).
                    if !x.is_finite() || !(0.0..=1.0).contains(&x) {
                        return Err(WireError::BadProbability {
                            at,
                            bits: x.to_bits(),
                        });
                    }
                    let y = r.bool()?;
                    Ok((site, x, y))
                })
                .collect()
        };
        let overflow_obs = obs(n_overflow)?;
        let dangling_obs = obs(n_dangling)?;
        let pad_hints = (0..n_pads)
            .map(|_| Ok((r.u32()?, r.u32()?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        let defer_hints = (0..n_defers)
            .map(|_| Ok((r.u32()?, r.u32()?, r.u64()?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        r.finish()?;
        Ok(RunReport {
            client,
            seq,
            failed,
            clock,
            n_sites,
            overflow_obs,
            dangling_obs,
            pad_hints,
            defer_hints,
        })
    }
}

/// One site's running-product evidence state, as carried in a snapshot.
/// The floats are bit patterns, not approximations: a restored record
/// reproduces classification byte-identically
/// ([`SiteEvidence::raw_parts`](xt_isolate::evidence::SiteEvidence::raw_parts)).
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceRecord {
    /// The allocation site (raw hash).
    pub site: u32,
    /// Observations folded in.
    pub obs: u64,
    /// Running `L0` product.
    pub l0: f64,
    /// Running integrand products at the Simpson nodes
    /// (`integration grid + 1` entries).
    pub grid: Vec<f64>,
}

/// A compacted image of a [`FleetService`](crate::FleetService)'s entire
/// durable state: counters, the published epoch, per-client delivery
/// windows, and every shard's evidence and hints. This is what the
/// durability layer writes on its snapshot cadence and reloads on
/// recovery before replaying the WAL tail.
///
/// The encoding is canonical when the collections are sorted (evidence
/// and hints by site/key, windows by client) — the export path emits them
/// sorted, so the encoded bytes are independent of shard layout and a
/// digest over them compares services with different shard counts.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSnapshot {
    /// Unique reports ingested.
    pub reports: u64,
    /// Failed runs among them.
    pub failed_reports: u64,
    /// Redeliveries dropped by dedup.
    pub duplicates: u64,
    /// Malformed wire reports rejected.
    pub rejected_reports: u64,
    /// Reports since the last publish (the auto-publish cadence counter —
    /// persisted so a restored service publishes at the same report
    /// boundaries the original would have).
    pub pending: u64,
    /// Unique reports at the current epoch's publication.
    pub epoch_reports: u64,
    /// Global site-population maximum (prior `N`).
    pub n_sites: u64,
    /// Simpson intervals of every evidence grid (the table configuration
    /// the evidence states were accumulated under).
    pub integration_steps: u32,
    /// The published epoch, in its own text format
    /// ([`PatchEpoch::to_text`](xt_patch::PatchEpoch::to_text)).
    pub epoch_text: String,
    /// Per-client replay windows: `(client, bits, high)`.
    pub windows: Vec<(u64, u128, u32)>,
    /// §5.1 overflow evidence, one record per site.
    pub overflow: Vec<EvidenceRecord>,
    /// §5.2 dangling evidence, one record per site.
    pub dangling: Vec<EvidenceRecord>,
    /// Pad hints: `(site, bytes)`.
    pub pad_hints: Vec<(u32, u32)>,
    /// Deferral hints: `(alloc site, free site, ticks)`.
    pub defer_hints: Vec<(u32, u32, u64)>,
}

impl FleetSnapshot {
    /// Serializes to the binary snapshot format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            128 + self.epoch_text.len()
                + 28 * self.windows.len()
                + (self.overflow.len() + self.dangling.len())
                    * (24 + 8 * (self.integration_steps as usize + 1))
                + 8 * self.pad_hints.len()
                + 16 * self.defer_hints.len(),
        );
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.reports.to_le_bytes());
        out.extend_from_slice(&self.failed_reports.to_le_bytes());
        out.extend_from_slice(&self.duplicates.to_le_bytes());
        out.extend_from_slice(&self.rejected_reports.to_le_bytes());
        out.extend_from_slice(&self.pending.to_le_bytes());
        out.extend_from_slice(&self.epoch_reports.to_le_bytes());
        out.extend_from_slice(&self.n_sites.to_le_bytes());
        out.extend_from_slice(&self.integration_steps.to_le_bytes());
        out.extend_from_slice(&(self.epoch_text.len() as u32).to_le_bytes());
        out.extend_from_slice(self.epoch_text.as_bytes());
        out.extend_from_slice(&(self.windows.len() as u32).to_le_bytes());
        for &(client, bits, high) in &self.windows {
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&bits.to_le_bytes());
            out.extend_from_slice(&high.to_le_bytes());
        }
        for family in [&self.overflow, &self.dangling] {
            out.extend_from_slice(&(family.len() as u32).to_le_bytes());
            for rec in family {
                out.extend_from_slice(&rec.site.to_le_bytes());
                out.extend_from_slice(&rec.obs.to_le_bytes());
                out.extend_from_slice(&rec.l0.to_bits().to_le_bytes());
                out.extend_from_slice(&(rec.grid.len() as u32).to_le_bytes());
                for &g in &rec.grid {
                    out.extend_from_slice(&g.to_bits().to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.pad_hints.len() as u32).to_le_bytes());
        for &(site, pad) in &self.pad_hints {
            out.extend_from_slice(&site.to_le_bytes());
            out.extend_from_slice(&pad.to_le_bytes());
        }
        out.extend_from_slice(&(self.defer_hints.len() as u32).to_le_bytes());
        for &(alloc, free, ticks) in &self.defer_hints {
            out.extend_from_slice(&alloc.to_le_bytes());
            out.extend_from_slice(&free.to_le_bytes());
            out.extend_from_slice(&ticks.to_le_bytes());
        }
        out
    }

    /// Parses the binary snapshot format. Like the report decoder, every
    /// field validates with offsets and every length prefix is capped
    /// before allocation; running-product floats must be finite
    /// probabilities in `[0, 1]` (one smuggled NaN would poison a shard's
    /// evidence permanently), and every grid must match the snapshot's
    /// declared integration grid (mismatched grids cannot be merged).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed byte.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.array::<4>()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let reports = r.u64()?;
        let failed_reports = r.u64()?;
        let duplicates = r.u64()?;
        let rejected_reports = r.u64()?;
        let pending = r.u64()?;
        let epoch_reports = r.u64()?;
        let n_sites = r.u64()?;
        let steps_at = r.pos();
        let integration_steps = r.u32()?;
        if integration_steps >= MAX_GRID_NODES {
            return Err(WireError::Oversized {
                at: steps_at,
                count: integration_steps,
            });
        }
        // The grid every evidence record must carry: `steps + 1` Simpson
        // nodes for the table's forced-even `steps >= 2`.
        let expected_nodes = (integration_steps.max(2) & !1) + 1;
        let text_len = r.count(MAX_EPOCH_TEXT)?;
        let text_at = r.pos();
        let text_bytes = r.bytes(text_len as usize)?;
        let epoch_text = std::str::from_utf8(text_bytes)
            .map_err(|e| WireError::BadUtf8 {
                at: text_at + e.valid_up_to(),
            })?
            .to_string();
        let n_windows = r.count(MAX_ENTRIES)?;
        let windows = (0..n_windows)
            .map(|_| Ok((r.u64()?, r.u128()?, r.u32()?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        let mut family = || -> Result<Vec<EvidenceRecord>, WireError> {
            let n = r.count(MAX_ENTRIES)?;
            (0..n)
                .map(|_| {
                    let site = r.u32()?;
                    let obs = r.u64()?;
                    let probability = |r: &mut Reader| -> Result<f64, WireError> {
                        let at = r.pos();
                        let v = f64::from_bits(r.u64()?);
                        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                            return Err(WireError::BadProbability {
                                at,
                                bits: v.to_bits(),
                            });
                        }
                        Ok(v)
                    };
                    let l0 = probability(&mut r)?;
                    let nodes_at = r.pos();
                    let nodes = r.count(MAX_GRID_NODES)?;
                    if nodes != expected_nodes {
                        return Err(WireError::BadGrid {
                            at: nodes_at,
                            nodes,
                        });
                    }
                    let grid = (0..nodes)
                        .map(|_| probability(&mut r))
                        .collect::<Result<Vec<_>, WireError>>()?;
                    Ok(EvidenceRecord {
                        site,
                        obs,
                        l0,
                        grid,
                    })
                })
                .collect()
        };
        let overflow = family()?;
        let dangling = family()?;
        let n_pads = r.count(MAX_ENTRIES)?;
        let pad_hints = (0..n_pads)
            .map(|_| Ok((r.u32()?, r.u32()?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        let n_defers = r.count(MAX_ENTRIES)?;
        let defer_hints = (0..n_defers)
            .map(|_| Ok((r.u32()?, r.u32()?, r.u64()?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        r.finish()?;
        Ok(FleetSnapshot {
            reports,
            failed_reports,
            duplicates,
            rejected_reports,
            pending,
            epoch_reports,
            n_sites,
            integration_steps,
            epoch_text,
            windows,
            overflow,
            dangling,
            pad_hints,
            defer_hints,
        })
    }

    /// FNV-1a 128 digest of the canonical encoding — the same constants
    /// as `core::voter`'s outcome digest, so "byte-identical state" means
    /// one `u128` comparison. Volatile delivery counters (`duplicates`,
    /// `rejected_reports`) are zeroed before hashing: a crash between a
    /// WAL append and its acknowledgment legitimately turns the retried
    /// report into a counted duplicate, which must not make otherwise
    /// identical evidence states compare unequal.
    #[must_use]
    pub fn digest(&self) -> u128 {
        let canonical = FleetSnapshot {
            duplicates: 0,
            rejected_reports: 0,
            ..self.clone()
        };
        const FNV_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
        let mut h = FNV_BASIS;
        for &b in &canonical.encode() {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            client: 0xA11CE,
            seq: 7,
            failed: true,
            clock: 1234,
            n_sites: 77,
            overflow_obs: vec![(0xB06, 0.25, true), (0xC1EA, 0.5, false)],
            dangling_obs: vec![(0xD00D, 1.0 - 0.5f64.powi(9), true)],
            pad_hints: vec![(0xB06, 36)],
            defer_hints: vec![(0xD00D, 0xF, 42)],
        }
    }

    #[test]
    fn round_trips() {
        let report = sample();
        let bytes = report.encode();
        assert_eq!(RunReport::decode(&bytes).unwrap(), report);
        // Stays compact: well under a kilobyte for a typical run.
        assert!(bytes.len() < 200, "report is {} bytes", bytes.len());
    }

    #[test]
    fn summary_round_trips() {
        let report = sample();
        let back = RunReport::from_summary(report.client, report.seq, &report.to_summary());
        assert_eq!(back, report);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[3] = b'9';
        assert!(matches!(
            RunReport::decode(&bytes),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = RunReport::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::BadBool { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            RunReport::decode(&bytes),
            Err(WireError::Trailing { extra: 1, .. })
        ));
    }

    #[test]
    fn rejects_hostile_counts() {
        let mut bytes = sample().encode();
        // Overflow-count field sits after magic(4)+flag(1)+client(8)+seq(4)
        // +clock(8)+n_sites(4) = 29.
        bytes[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = RunReport::decode(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::Oversized { at: 29, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_non_finite_probabilities() {
        // First overflow observation's x sits after the 45-byte header
        // plus the 4-byte site hash.
        let x_off = 45 + 4;
        for bad in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
            let mut bytes = sample().encode();
            bytes[x_off..x_off + 8].copy_from_slice(&bad.to_bits().to_le_bytes());
            let err = RunReport::decode(&bytes).unwrap_err();
            assert!(
                matches!(err, WireError::BadProbability { at, .. } if at == x_off),
                "x = {bad}: {err:?}"
            );
        }
        // The boundary values themselves stay legal.
        for ok in [0.0f64, 1.0] {
            let mut bytes = sample().encode();
            bytes[x_off..x_off + 8].copy_from_slice(&ok.to_bits().to_le_bytes());
            assert!(RunReport::decode(&bytes).is_ok(), "x = {ok} rejected");
        }
    }

    /// The §5-prior hardening: `n_sites` feeds the global `N` via a
    /// `fetch_max`, so one hostile report claiming an absurd population
    /// would skew classification for a whole shard. The field sits after
    /// magic(4)+flag(1)+client(8)+seq(4)+clock(8) = offset 25.
    #[test]
    fn rejects_absurd_site_populations() {
        for absurd in [u32::MAX, (1 << 20) + 1] {
            let mut bytes = sample().encode();
            bytes[25..29].copy_from_slice(&absurd.to_le_bytes());
            let err = RunReport::decode(&bytes).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::BadSiteCount {
                        at: 25,
                        n_sites,
                        ..
                    } if n_sites == absurd
                ),
                "n_sites = {absurd}: {err:?}"
            );
        }
        // The cap itself stays legal.
        let mut bytes = sample().encode();
        bytes[25..29].copy_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(RunReport::decode(&bytes).is_ok());
    }

    #[test]
    fn rejects_zero_sites_alongside_observations() {
        // The sample carries 3 observations + 1 pad hint + 1 defer hint,
        // each naming a site; claiming a zero site population alongside
        // them is internally inconsistent.
        let mut bytes = sample().encode();
        bytes[25..29].copy_from_slice(&0u32.to_le_bytes());
        let err = RunReport::decode(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::BadSiteCount {
                    at: 25,
                    n_sites: 0,
                    observations: 5,
                }
            ),
            "{err:?}"
        );
        // Hints alone (no observations) still name sites: also rejected.
        let hints_only = RunReport {
            n_sites: 0,
            overflow_obs: Vec::new(),
            dangling_obs: Vec::new(),
            pad_hints: vec![(0xB06, 36)],
            defer_hints: Vec::new(),
            ..sample()
        };
        assert!(
            matches!(
                RunReport::decode(&hints_only.encode()),
                Err(WireError::BadSiteCount {
                    n_sites: 0,
                    observations: 1,
                    ..
                })
            ),
            "a pad hint from a run claiming zero sites was accepted"
        );
        // Zero sites with nothing site-naming (an empty run) stays legal.
        let empty = RunReport {
            n_sites: 0,
            overflow_obs: Vec::new(),
            dangling_obs: Vec::new(),
            pad_hints: Vec::new(),
            defer_hints: Vec::new(),
            ..sample()
        };
        assert_eq!(RunReport::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn from_summary_clamps_site_population_to_the_wire_cap() {
        let summary = RunSummary {
            n_sites: usize::MAX,
            ..sample().to_summary()
        };
        let report = RunReport::from_summary(1, 0, &summary);
        assert_eq!(report.n_sites, 1 << 20);
        // And the clamped report survives its own wire format.
        assert!(RunReport::decode(&report.encode()).is_ok());
    }

    #[test]
    fn rejects_bad_bool() {
        let mut bytes = sample().encode();
        bytes[4] = 3; // the failed flag
        assert!(matches!(
            RunReport::decode(&bytes),
            Err(WireError::BadBool { at: 4, value: 3 })
        ));
    }
}
