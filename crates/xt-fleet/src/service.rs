//! The sharded collaborative-correction service.
//!
//! Architecture (the Windows-Error-Reporting-scale loop of §5/§6.4):
//!
//! * **Ingestion** — a decoded [`RunReport`] is split by allocation site
//!   and folded into `N` shards, each a
//!   [`EvidenceTable`](xt_isolate::evidence::EvidenceTable) behind its own
//!   mutex. Sites are assigned to shards by Fibonacci hash, so two
//!   concurrent reports contend only when they carry evidence for sites
//!   that map to the same shard — ingestion throughput scales with cores
//!   until the shard count is exhausted. Run-level metadata (report and
//!   failure counts, the site-population maximum `N` for the prior) lives
//!   in shared atomics.
//! * **Classification** — the Bayesian test runs *incrementally*: each
//!   shard's evidence is running-product state, so folding a report costs
//!   O(observations × grid) and classification at publish time costs
//!   O(sites × grid), independent of how many reports ever arrived.
//! * **Publication** — [`FleetService::publish`] classifies every shard
//!   under the global prior, joins the flagged patches into the previous
//!   epoch's table (the patch lattice of `xt-patch` makes this a
//!   convergent, monotone state), and installs a new
//!   [`PatchEpoch`](xt_patch::PatchEpoch) snapshot. Clients poll
//!   [`FleetService::latest`], which hands out the current `Arc` snapshot
//!   without touching any shard lock — readers never block ingestion.
//! * **Delivery dedup** — reports are identified by `(client, seq)`;
//!   redelivery (at-least-once transports, client retries) is dropped, so
//!   ingestion is idempotent at the service level. Dedup state is a
//!   per-client [`ReplayWindow`](crate::delivery::ReplayWindow) — a
//!   high-water mark plus a 128-bit out-of-order window — so memory is
//!   O(clients), not O(reports ever ingested). The property tests in
//!   `tests/properties.rs` verify order-insensitivity and idempotence
//!   against a sequential reference.
//! * **Long-haul survival** — a panicking ingest thread used to poison a
//!   shard mutex and turn every later ingest into a panic, killing the
//!   service forever. Locks are now recovered: every shard mutation is a
//!   sequence of self-contained `observe_*`/`hint_*` calls that each
//!   leave the evidence table consistent (the splitting work happens
//!   outside the lock), so `PoisonError::into_inner` is sound — at worst
//!   the interrupted report's remaining observations are lost (its seq
//!   was recorded by dedup on the way in, so a redelivery is dropped,
//!   not re-folded). A bounded loss of one report's evidence is exactly
//!   what cumulative mode is built to absorb — §5 classifies over report
//!   *populations* — whereas the drop direction preserves idempotence.
//!   Each recovery is counted in [`FleetMetrics::lock_recoveries`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use xt_alloc::{SiteHash, SitePair};
use xt_isolate::cumulative::CumulativeConfig;
use xt_isolate::evidence::{EvidenceTable, SiteEvidence};
use xt_obs::{Histogram, Registry, RegistrySnapshot, TokenBucket, TokenBucketConfig};
use xt_patch::{PatchEpoch, PatchParseError, PatchTable};

use crate::delivery::ReplayWindow;
use crate::wire::{EvidenceRecord, FleetSnapshot, RunReport, WireError};

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of evidence shards (ingestion parallelism).
    pub shards: usize,
    /// Classifier parameters shared by all shards.
    pub isolator: CumulativeConfig,
    /// Auto-publish a new epoch after this many ingested reports
    /// (0 = publish only when [`FleetService::publish`] is called).
    pub publish_every: u64,
    /// Drop redelivered `(client, seq)` reports.
    pub dedup_delivery: bool,
    /// Per-client admission control on the **wire ingest path**
    /// ([`FleetService::ingest`]): each client gets a deterministic
    /// [`TokenBucket`] seeded from its id. `None` (the default) admits
    /// everything. In-process ingestion
    /// ([`FleetService::ingest_report`] — the simulator, WAL replay,
    /// restored snapshots) is never rate limited: replaying durable
    /// state must fold every record.
    pub rate_limit: Option<TokenBucketConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 16,
            isolator: CumulativeConfig::default(),
            publish_every: 256,
            dedup_delivery: true,
            rate_limit: None,
        }
    }
}

/// What ingesting one report did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The report was a redelivery and was dropped.
    pub duplicate: bool,
    /// Shards whose evidence the report touched.
    pub shards_touched: usize,
    /// Per-site observations folded in.
    pub observations: usize,
    /// Latest published epoch number — the client's cue to poll when it
    /// lags.
    pub epoch: u64,
}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Unique reports ingested.
    pub reports: u64,
    /// Failed runs among them.
    pub failed_reports: u64,
    /// Redeliveries dropped by dedup.
    pub duplicates: u64,
    /// Malformed wire reports rejected by decode validation before any
    /// evidence was touched (bad framing, hostile counts, implausible
    /// site populations). A rejected report never reaches the shards or
    /// the prior — it is counted, not folded.
    pub rejected_reports: u64,
    /// Well-formed wire reports refused by per-client admission control
    /// ([`FleetConfig::rate_limit`]) — the flooding-client counterpart
    /// of the hostile-report `rejected_reports` path. Like a rejection,
    /// a rate-limited report touches no evidence, prior, or dedup
    /// state.
    pub rate_limited: u64,
    /// Current epoch number.
    pub epoch: u64,
    /// Unique reports the service had ingested when the current epoch was
    /// published (0 for the genesis epoch) — the fleet's
    /// "reports-to-isolation" analogue of the paper's per-user run counts.
    pub epoch_reports: u64,
    /// Distinct sites with evidence, summed over shards.
    pub sites_tracked: usize,
    /// The global site-population maximum (prior `N`).
    pub n_sites: usize,
    /// Configured shard count.
    pub shards: usize,
    /// Clients with live delivery-dedup state — the dedup memory bound is
    /// O(this), independent of how many reports each client ever sent.
    pub dedup_clients: usize,
    /// Poisoned locks recovered after a panicking thread (see the module
    /// docs); a nonzero value means the service survived a crash that
    /// would previously have been fatal forever.
    pub lock_recoveries: u64,
    /// WAL records appended by the durability layer (0 for a plain
    /// in-memory service — these durability counters are populated by
    /// [`DurableFleet`](crate::wal::DurableFleet)).
    pub wal_appends: u64,
    /// Group-commit storage appends, each covering ≥ 1 WAL records;
    /// `wal_appends / wal_batches` is the realized batching factor.
    pub wal_batches: u64,
    /// Compacted snapshots written by the durability layer.
    pub snapshots_written: u64,
    /// Times this state was rebuilt from storage after a crash (1 after a
    /// recovery; a freshly created store opens with 0).
    pub recoveries: u64,
    /// Torn WAL tails detected by checksum and truncated during recovery.
    pub torn_tail_truncated: u64,
}

impl FleetMetrics {
    /// The counters as a name-sorted [`RegistrySnapshot`] under the
    /// `fleet/` namespace — the shape the metrics wire surface ships
    /// and the examples print. One conversion for every consumer, so
    /// durable and in-memory servers cannot drift on which counters
    /// they report.
    #[must_use]
    pub fn counters_snapshot(&self) -> RegistrySnapshot {
        let counters = vec![
            ("fleet/dedup_clients".to_string(), self.dedup_clients as u64),
            ("fleet/duplicates".to_string(), self.duplicates),
            ("fleet/epoch".to_string(), self.epoch),
            ("fleet/epoch_reports".to_string(), self.epoch_reports),
            ("fleet/failed_reports".to_string(), self.failed_reports),
            ("fleet/lock_recoveries".to_string(), self.lock_recoveries),
            ("fleet/n_sites".to_string(), self.n_sites as u64),
            ("fleet/rate_limited".to_string(), self.rate_limited),
            ("fleet/recoveries".to_string(), self.recoveries),
            ("fleet/rejected_reports".to_string(), self.rejected_reports),
            ("fleet/reports".to_string(), self.reports),
            ("fleet/shards".to_string(), self.shards as u64),
            ("fleet/sites_tracked".to_string(), self.sites_tracked as u64),
            (
                "fleet/snapshots_written".to_string(),
                self.snapshots_written,
            ),
            (
                "fleet/torn_tail_truncated".to_string(),
                self.torn_tail_truncated,
            ),
            ("fleet/wal_appends".to_string(), self.wal_appends),
            ("fleet/wal_batches".to_string(), self.wal_batches),
        ];
        RegistrySnapshot {
            counters,
            ..RegistrySnapshot::default()
        }
    }
}

/// The counters a durability layer overlays onto the base service
/// metrics. [`FleetService::metrics_with`] is the **single snapshot
/// path** every `FleetMetrics` consumer goes through: the plain
/// service passes [`DurabilityStats::default`], the durable wrapper
/// passes its live counters — neither hand-assembles the struct, so
/// they cannot drift on which counters they report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended.
    pub wal_appends: u64,
    /// Group-commit storage appends (each covering ≥ 1 records).
    pub wal_batches: u64,
    /// Compacted snapshots written.
    pub snapshots_written: u64,
    /// Times state was rebuilt from storage.
    pub recoveries: u64,
    /// Torn WAL tails truncated during recovery.
    pub torn_tail_truncated: u64,
}

/// The sharded collaborative-correction service. All methods take `&self`;
/// share one instance across ingestion threads.
#[derive(Debug)]
pub struct FleetService {
    config: FleetConfig,
    /// Per-shard evidence, each behind an independent lock.
    shards: Vec<Mutex<EvidenceTable>>,
    /// Delivery-dedup state, sharded by client hash (a different axis
    /// than the evidence shards: one report checks exactly one dedup
    /// shard). One bounded [`ReplayWindow`] per client — O(clients)
    /// memory for the life of the service.
    seen: Vec<Mutex<HashMap<u64, ReplayWindow>>>,
    /// Global site-population maximum (`N` of the `cN − 1` threshold).
    n_sites: AtomicUsize,
    reports: AtomicU64,
    failed_reports: AtomicU64,
    duplicates: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    /// Per-client admission buckets for the wire ingest path, sharded
    /// by client hash like `seen`. Empty maps unless
    /// [`FleetConfig::rate_limit`] is set.
    limiters: Vec<Mutex<HashMap<u64, TokenBucket>>>,
    /// Reports since the last publish (drives auto-publish).
    pending: AtomicU64,
    /// Poisoned locks recovered (panicking ingest/publish threads).
    lock_recoveries: AtomicU64,
    /// Latency instruments (observability only — never digested).
    registry: Arc<Registry>,
    ingest_hist: Arc<Histogram>,
    fold_hist: Arc<Histogram>,
    publish_hist: Arc<Histogram>,
    /// Serializes publishers; ingestion never takes it.
    publish_lock: Mutex<()>,
    /// The current epoch snapshot, paired with the report count at its
    /// publication (one lock, so readers always see a consistent pair).
    /// Readers clone the `Arc` and go.
    epoch: RwLock<(Arc<PatchEpoch>, u64)>,
    /// Epoch-change signal for [`FleetService::wait_epoch_newer`]: the
    /// number of the newest installed epoch, updated (and its condvar
    /// notified) *after* the `epoch` write lock is released, so the
    /// two locks are never nested in this direction.
    epoch_signal: Mutex<u64>,
    epoch_wake: Condvar,
}

impl FleetService {
    /// Creates a service with empty evidence and the genesis epoch.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let registry = Registry::new();
        let (ingest_hist, fold_hist, publish_hist) = (
            registry.histogram("fleet/ingest"),
            registry.histogram("fleet/fold"),
            registry.histogram("fleet/publish"),
        );
        FleetService {
            shards: (0..config.shards)
                .map(|_| Mutex::new(EvidenceTable::new(config.isolator)))
                .collect(),
            seen: (0..config.shards.max(4))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            n_sites: AtomicUsize::new(1),
            reports: AtomicU64::new(0),
            failed_reports: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            limiters: (0..config.shards.max(4))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            pending: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            epoch: RwLock::new((Arc::new(PatchEpoch::genesis()), 0)),
            epoch_signal: Mutex::new(0),
            epoch_wake: Condvar::new(),
            registry,
            ingest_hist,
            fold_hist,
            publish_hist,
            config,
        }
    }

    /// The service's latency instruments (`fleet/ingest`, `fleet/fold`,
    /// `fleet/publish` — plus `fleet/wal_append` when wrapped by
    /// [`DurableFleet`](crate::wal::DurableFleet)). Observability only:
    /// nothing in here feeds [`FleetService::state_digest`].
    #[must_use]
    pub fn observability(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Which shard owns `site` (Fibonacci hash of the site hash).
    #[must_use]
    pub fn shard_of(&self, site: SiteHash) -> usize {
        let h = u64::from(site.raw().wrapping_mul(0x9E37_79B9));
        ((h * self.shards.len() as u64) >> 32) as usize
    }

    /// Locks `mutex`, recovering (and counting) a poisoning left behind by
    /// a panicked thread instead of propagating it — the module docs argue
    /// why `into_inner` is sound for every lock in this service.
    fn lock_recovering<'a, T>(&self, mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        mutex.lock().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// [`FleetService::lock_recovering`] for the epoch lock's read side.
    fn epoch_read(&self) -> RwLockReadGuard<'_, (Arc<PatchEpoch>, u64)> {
        self.epoch.read().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// [`FleetService::lock_recovering`] for the epoch lock's write side.
    fn epoch_write(&self) -> RwLockWriteGuard<'_, (Arc<PatchEpoch>, u64)> {
        self.epoch.write().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Decodes and ingests one wire report.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] if the bytes are malformed
    /// (counted in [`FleetMetrics::rejected_reports`]) or
    /// [`WireError::RateLimited`] if the sending client exhausted its
    /// admission budget (counted in [`FleetMetrics::rate_limited`]).
    /// Either way the evidence, prior, and dedup state are untouched.
    pub fn ingest(&self, bytes: &[u8]) -> Result<IngestReceipt, WireError> {
        let started = Instant::now();
        let report = RunReport::decode(bytes).inspect_err(|_| self.note_rejected())?;
        self.admit(report.client)?;
        let receipt = self.ingest_report(&report);
        self.ingest_hist.record_duration(started.elapsed());
        Ok(receipt)
    }

    /// Per-client admission control for the wire path. Buckets are
    /// deterministic: refill is attempt-driven and the phase is seeded
    /// from the client id, so the same request sequence always gets
    /// the same admit/reject decisions.
    pub(crate) fn admit(&self, client: u64) -> Result<(), WireError> {
        let Some(rate) = self.config.rate_limit else {
            return Ok(());
        };
        let shard = (client as usize) % self.limiters.len();
        let admitted = self
            .lock_recovering(
                self.limiters
                    .get(shard)
                    .expect("limiter shard index in range"),
            )
            .entry(client)
            .or_insert_with(|| TokenBucket::new(rate, client))
            .try_admit();
        if admitted {
            Ok(())
        } else {
            self.rate_limited.fetch_add(1, Ordering::Relaxed);
            Err(WireError::RateLimited { client })
        }
    }

    /// Counts a malformed report rejected before decode reached the
    /// service — the durability layer validates bytes itself (a rejected
    /// report must never touch the WAL) but the rejection still belongs
    /// in these metrics.
    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Ingests one decoded report.
    pub fn ingest_report(&self, report: &RunReport) -> IngestReceipt {
        if self.config.dedup_delivery {
            let dedup_shard = (report.client as usize) % self.seen.len();
            let delivery = self
                .lock_recovering(
                    self.seen
                        .get(dedup_shard)
                        .expect("dedup shard index in range"),
                )
                .entry(report.client)
                .or_default()
                .observe(report.seq);
            if delivery.is_drop() {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                return IngestReceipt {
                    duplicate: true,
                    shards_touched: 0,
                    observations: 0,
                    epoch: self.latest().number,
                };
            }
        }
        self.reports.fetch_add(1, Ordering::Relaxed);
        if report.failed {
            self.failed_reports.fetch_add(1, Ordering::Relaxed);
        }
        self.n_sites
            .fetch_max(report.n_sites as usize, Ordering::Relaxed);

        // Split the report by owning shard, then take each touched shard's
        // lock exactly once.
        let mut batches: Vec<(usize, ShardBatch)> = Vec::new();
        for &(site, x, y) in &report.overflow_obs {
            batch_for(&mut batches, self.shard_of(SiteHash::from_raw(site)))
                .overflow
                .push((site, x, y));
        }
        for &(site, x, y) in &report.dangling_obs {
            batch_for(&mut batches, self.shard_of(SiteHash::from_raw(site)))
                .dangling
                .push((site, x, y));
        }
        for &(site, pad) in &report.pad_hints {
            batch_for(&mut batches, self.shard_of(SiteHash::from_raw(site)))
                .pads
                .push((site, pad));
        }
        for &(alloc, free, ticks) in &report.defer_hints {
            batch_for(&mut batches, self.shard_of(SiteHash::from_raw(alloc)))
                .defers
                .push((alloc, free, ticks));
        }

        let shards_touched = batches.len();
        let fold_started = Instant::now();
        for (idx, batch) in batches {
            let mut shard =
                self.lock_recovering(self.shards.get(idx).expect("shard index in range"));
            for (site, x, y) in batch.overflow {
                shard.observe_overflow(SiteHash::from_raw(site), x, y);
            }
            for (site, x, y) in batch.dangling {
                shard.observe_dangling(SiteHash::from_raw(site), x, y);
            }
            for (site, pad) in batch.pads {
                shard.hint_pad(SiteHash::from_raw(site), pad);
            }
            for (alloc, free, ticks) in batch.defers {
                shard.hint_deferral(
                    SitePair::new(SiteHash::from_raw(alloc), SiteHash::from_raw(free)),
                    ticks,
                );
            }
        }
        self.fold_hist.record_duration(fold_started.elapsed());

        // Exactly-one trigger: `fetch_add` hands out consecutive values,
        // so precisely one ingesting thread observes the cadence boundary
        // — a `>=` check here would send every thread that crossed it
        // before the reset into a redundant full reclassification.
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.publish_every > 0 && pending == self.config.publish_every {
            self.publish();
        }
        IngestReceipt {
            duplicate: false,
            shards_touched,
            observations: report.observations(),
            epoch: self.latest().number,
        }
    }

    /// The current epoch snapshot — an `Arc` clone, never blocked by
    /// ingestion or publication in progress.
    #[must_use]
    pub fn latest(&self) -> Arc<PatchEpoch> {
        self.epoch_read().0.clone()
    }

    /// The current epoch snapshot together with the number of unique
    /// reports the service had ingested when it was published (0 for the
    /// genesis epoch). The pair is read atomically, so the count always
    /// belongs to *this* epoch even while newer ones are being minted.
    #[must_use]
    pub fn latest_with_reports(&self) -> (Arc<PatchEpoch>, u64) {
        let guard = self.epoch_read();
        (guard.0.clone(), guard.1)
    }

    /// Classifies all shards under the global prior and, if any new
    /// patches were isolated, installs the successor epoch. Returns the
    /// epoch current after the call (new or unchanged).
    pub fn publish(&self) -> Arc<PatchEpoch> {
        // xt-analyze: allow(time-source) -- publish latency observation; feeds the histogram only, never the epoch bytes
        let started = Instant::now();
        let _publisher = self.lock_recovering(&self.publish_lock);
        self.pending.store(0, Ordering::Relaxed);
        let n_sites = self.n_sites.load(Ordering::Relaxed);
        let mut isolated = PatchTable::new();
        for shard in &self.shards {
            // One shard lock at a time: ingestion keeps flowing on the
            // other shards while this one classifies.
            let contribution = self.lock_recovering(shard).generate_patches_with(n_sites);
            isolated.merge(&contribution);
        }
        let current = self.latest();
        if current.covers(&isolated) {
            // xt-analyze: allow(obs-in-det) -- records how long publish took; the returned epoch is already decided
            self.publish_hist.record_duration(started.elapsed());
            return current;
        }
        let next = Arc::new(current.succeed(&isolated));
        let reports = self.reports.load(Ordering::Relaxed);
        *self.epoch_write() = (next.clone(), reports);
        *self.lock_recovering(&self.epoch_signal) = next.number;
        self.epoch_wake.notify_all();
        // xt-analyze: allow(obs-in-det) -- records how long publish took; the installed epoch is already decided
        self.publish_hist.record_duration(started.elapsed());
        next
    }

    /// Parks until an epoch *newer than* `have` is installed, or
    /// `timeout` elapses. Returns the newest epoch on success (which may
    /// be newer still than the one that woke the wait), `None` on
    /// timeout. This is the push primitive: an epoch watcher blocks
    /// here instead of polling [`FleetService::latest`] in a loop, and
    /// wakes the instant [`FleetService::publish`] installs a successor.
    pub fn wait_epoch_newer(&self, have: u64, timeout: Duration) -> Option<Arc<PatchEpoch>> {
        let deadline = Instant::now() + timeout;
        let mut newest = self.lock_recovering(&self.epoch_signal);
        while *newest <= have {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .epoch_wake
                .wait_timeout(newest, deadline - now)
                .unwrap_or_else(|poisoned| {
                    self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
                    poisoned.into_inner()
                });
            newest = guard;
        }
        drop(newest);
        Some(self.latest())
    }

    /// Aggregate counters.
    #[must_use]
    pub fn metrics(&self) -> FleetMetrics {
        self.metrics_with(DurabilityStats::default())
    }

    /// Aggregate counters with a durability layer's overlay — the one
    /// snapshot path every `FleetMetrics` consumer (plain service,
    /// durable wrapper, network backend) routes through.
    #[must_use]
    pub fn metrics_with(&self, durability: DurabilityStats) -> FleetMetrics {
        let (epoch, epoch_reports) = self.latest_with_reports();
        FleetMetrics {
            reports: self.reports.load(Ordering::Relaxed),
            failed_reports: self.failed_reports.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            rejected_reports: self.rejected.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            epoch: epoch.number,
            epoch_reports,
            sites_tracked: self
                .shards
                .iter()
                .map(|s| self.lock_recovering(s).sites_tracked())
                .sum(),
            n_sites: self.n_sites.load(Ordering::Relaxed),
            shards: self.shards.len(),
            dedup_clients: self
                .seen
                .iter()
                .map(|s| self.lock_recovering(s).len())
                .sum(),
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
            wal_appends: durability.wal_appends,
            wal_batches: durability.wal_batches,
            snapshots_written: durability.snapshots_written,
            recoveries: durability.recoveries,
            torn_tail_truncated: durability.torn_tail_truncated,
        }
    }

    /// Exports the service's durable state as a compacted
    /// [`FleetSnapshot`] with canonically sorted collections (evidence
    /// and hints by site, windows by client), so the encoding — and
    /// therefore [`FleetService::state_digest`] — is independent of the
    /// shard layout.
    ///
    /// Takes the publish lock (no epoch can be minted mid-export) and
    /// each shard lock in turn. Concurrent *ingestion* is not blocked —
    /// a caller that needs a point-in-time image (the durability layer)
    /// must quiesce ingest itself, which
    /// [`DurableFleet`](crate::wal::DurableFleet) does by serializing
    /// snapshots and ingest under one lock.
    #[must_use]
    pub fn export_snapshot(&self) -> FleetSnapshot {
        let _publisher = self.lock_recovering(&self.publish_lock);
        let (epoch, epoch_reports) = self.latest_with_reports();
        let mut overflow = Vec::new();
        let mut dangling = Vec::new();
        let mut pad_hints = Vec::new();
        let mut defer_hints = Vec::new();
        let record = |site: SiteHash, e: &SiteEvidence| {
            let (obs, l0, grid) = e.raw_parts();
            EvidenceRecord {
                site: site.raw(),
                obs: obs as u64,
                l0,
                grid: grid.to_vec(),
            }
        };
        for shard in &self.shards {
            let shard = self.lock_recovering(shard);
            overflow.extend(shard.overflow_evidence().map(|(s, e)| record(s, e)));
            dangling.extend(shard.dangling_evidence().map(|(s, e)| record(s, e)));
            pad_hints.extend(shard.pad_hint_entries().map(|(s, p)| (s.raw(), p)));
            defer_hints.extend(
                shard
                    .defer_hint_entries()
                    .map(|(pair, t)| (pair.alloc.raw(), pair.free.raw(), t)),
            );
        }
        // Each site (and each hint key) lives in exactly one shard, so
        // sorting yields a canonical, duplicate-free order.
        overflow.sort_unstable_by_key(|r| r.site);
        dangling.sort_unstable_by_key(|r| r.site);
        pad_hints.sort_unstable();
        defer_hints.sort_unstable();
        let mut windows = Vec::new();
        for seen in &self.seen {
            // xt-analyze: allow(hash-iter) -- windows are sorted by client below, erasing per-shard map order before encoding
            windows.extend(self.lock_recovering(seen).iter().map(|(&client, w)| {
                let (bits, high) = w.to_parts();
                (client, bits, high)
            }));
        }
        windows.sort_unstable_by_key(|&(client, _, _)| client);
        FleetSnapshot {
            reports: self.reports.load(Ordering::Relaxed),
            failed_reports: self.failed_reports.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            rejected_reports: self.rejected.load(Ordering::Relaxed),
            pending: self.pending.load(Ordering::Relaxed),
            epoch_reports,
            n_sites: self.n_sites.load(Ordering::Relaxed) as u64,
            integration_steps: u32::try_from(self.config.isolator.integration_steps)
                .unwrap_or(u32::MAX),
            epoch_text: epoch.to_text(),
            windows,
            overflow,
            dangling,
            pad_hints,
            defer_hints,
        }
    }

    /// Rebuilds a service from a snapshot: counters, epoch, evidence
    /// (re-sharded under `config.shards`, which may differ from the
    /// exporting service's), and per-client replay windows. The restored
    /// windows are what make replaying an overlapping WAL tail after
    /// recovery idempotent — already-accepted `(client, seq)` pairs are
    /// classified as duplicates and dropped, not re-folded.
    ///
    /// # Errors
    ///
    /// [`RestoreError::GridMismatch`] if the snapshot's evidence grids
    /// were accumulated under a different `integration_steps` than
    /// `config` uses (running-product states are only combinable on one
    /// grid), [`RestoreError::BadEpoch`] if the epoch text does not
    /// parse.
    pub fn from_snapshot(config: FleetConfig, snap: &FleetSnapshot) -> Result<Self, RestoreError> {
        let normalize = |steps: usize| steps.max(2) & !1;
        if normalize(snap.integration_steps as usize)
            != normalize(config.isolator.integration_steps)
        {
            return Err(RestoreError::GridMismatch {
                snapshot: snap.integration_steps,
                config: config.isolator.integration_steps,
            });
        }
        let epoch = PatchEpoch::from_text(&snap.epoch_text).map_err(RestoreError::BadEpoch)?;
        let service = FleetService::new(config);
        let epoch_number = epoch.number;
        *service.epoch_write() = (Arc::new(epoch), snap.epoch_reports);
        *service.lock_recovering(&service.epoch_signal) = epoch_number;
        service.reports.store(snap.reports, Ordering::Relaxed);
        service
            .failed_reports
            .store(snap.failed_reports, Ordering::Relaxed);
        service.duplicates.store(snap.duplicates, Ordering::Relaxed);
        service
            .rejected
            .store(snap.rejected_reports, Ordering::Relaxed);
        service.pending.store(snap.pending, Ordering::Relaxed);
        service.n_sites.store(
            usize::try_from(snap.n_sites).unwrap_or(usize::MAX).max(1),
            Ordering::Relaxed,
        );
        for rec in &snap.overflow {
            let site = SiteHash::from_raw(rec.site);
            let evidence = SiteEvidence::from_raw_parts(rec.obs as usize, rec.l0, rec.grid.clone());
            service
                .lock_recovering(&service.shards[service.shard_of(site)])
                .insert_overflow_evidence(site, evidence);
        }
        for rec in &snap.dangling {
            let site = SiteHash::from_raw(rec.site);
            let evidence = SiteEvidence::from_raw_parts(rec.obs as usize, rec.l0, rec.grid.clone());
            service
                .lock_recovering(&service.shards[service.shard_of(site)])
                .insert_dangling_evidence(site, evidence);
        }
        for &(site, pad) in &snap.pad_hints {
            let site = SiteHash::from_raw(site);
            service
                .lock_recovering(&service.shards[service.shard_of(site)])
                .hint_pad(site, pad);
        }
        for &(alloc, free, ticks) in &snap.defer_hints {
            let alloc = SiteHash::from_raw(alloc);
            service
                .lock_recovering(&service.shards[service.shard_of(alloc)])
                .hint_deferral(SitePair::new(alloc, SiteHash::from_raw(free)), ticks);
        }
        for &(client, bits, high) in &snap.windows {
            let shard = (client as usize) % service.seen.len();
            service
                .lock_recovering(&service.seen[shard])
                .insert(client, ReplayWindow::from_parts(bits, high));
        }
        Ok(service)
    }

    /// FNV-1a 128 digest of the canonical snapshot encoding
    /// ([`FleetSnapshot::digest`]): two services with byte-identical
    /// durable state — evidence bit patterns, epoch, windows, counters —
    /// produce the same value regardless of shard layout. This is the
    /// equality the crash-injection property test asserts between a
    /// recovered service and one that never crashed.
    #[must_use]
    pub fn state_digest(&self) -> u128 {
        self.export_snapshot().digest()
    }
}

/// Why a snapshot could not be restored into a service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot's evidence grids use a different Simpson grid than
    /// the restoring configuration.
    GridMismatch {
        /// `integration_steps` recorded in the snapshot.
        snapshot: u32,
        /// `integration_steps` of the restoring config.
        config: usize,
    },
    /// The snapshot's epoch text does not parse.
    BadEpoch(PatchParseError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::GridMismatch { snapshot, config } => write!(
                f,
                "snapshot evidence uses {snapshot} integration steps, \
                 the restoring config uses {config}"
            ),
            RestoreError::BadEpoch(e) => write!(f, "snapshot epoch text does not parse: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A report's evidence, grouped by destination shard.
#[derive(Default)]
struct ShardBatch {
    overflow: Vec<(u32, f64, bool)>,
    dangling: Vec<(u32, f64, bool)>,
    pads: Vec<(u32, u32)>,
    defers: Vec<(u32, u32, u64)>,
}

/// The batch for shard `idx`, creating it on first touch. Linear scan: a
/// report touches at most a handful of shards.
fn batch_for(batches: &mut Vec<(usize, ShardBatch)>, idx: usize) -> &mut ShardBatch {
    let pos = match batches.iter().position(|(i, _)| *i == idx) {
        Some(pos) => pos,
        None => {
            batches.push((idx, ShardBatch::default()));
            batches.len() - 1
        }
    };
    &mut batches[pos].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dangling_report(client: u64, seq: u32, site: u32) -> RunReport {
        RunReport {
            client,
            seq,
            failed: true,
            clock: 500,
            n_sites: 100,
            overflow_obs: Vec::new(),
            dangling_obs: vec![(site, 0.5, true)],
            pad_hints: Vec::new(),
            defer_hints: vec![(site, 0xF, 30)],
        }
    }

    #[test]
    fn evidence_accumulates_into_a_published_patch() {
        let service = FleetService::new(FleetConfig {
            shards: 4,
            publish_every: 0,
            ..FleetConfig::default()
        });
        // 20 clients each report the §7.2 dangling signature once.
        for client in 0..20 {
            let receipt = service.ingest_report(&dangling_report(client, 0, 0xBAD));
            assert!(!receipt.duplicate);
            assert_eq!(receipt.observations, 1);
        }
        assert_eq!(service.latest().number, 0, "nothing published yet");
        let epoch = service.publish();
        assert_eq!(epoch.number, 1);
        let pair = SitePair::new(SiteHash::from_raw(0xBAD), SiteHash::from_raw(0xF));
        assert_eq!(epoch.patches.deferral_for(pair), 30);
        // Republishing without new evidence does not mint an epoch.
        assert_eq!(service.publish().number, 1);
        let m = service.metrics();
        assert_eq!(m.reports, 20);
        assert_eq!(m.failed_reports, 20);
        assert_eq!(m.epoch, 1);
    }

    #[test]
    fn redelivery_is_dropped() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            ..FleetConfig::default()
        });
        let report = dangling_report(1, 0, 0xBAD);
        assert!(!service.ingest_report(&report).duplicate);
        assert!(service.ingest_report(&report).duplicate);
        let m = service.metrics();
        assert_eq!(m.reports, 1);
        assert_eq!(m.duplicates, 1);
    }

    #[test]
    fn auto_publish_fires_on_the_configured_cadence() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 10,
            ..FleetConfig::default()
        });
        for client in 0..30 {
            service.ingest_report(&dangling_report(client, 0, 0xBAD));
        }
        let epoch = service.latest();
        assert!(epoch.number >= 1, "auto-publish never fired");
        assert!(!epoch.patches.is_empty());
    }

    /// The dedup bugfix: state is one bounded window per client, not one
    /// entry per report — a long-lived client hammering the service keeps
    /// dedup memory constant while idempotence still holds for every
    /// redelivery an at-least-once transport would actually produce.
    #[test]
    fn dedup_memory_is_bounded_per_client() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            ..FleetConfig::default()
        });
        // One client, many reports: the old HashSet would now hold 4096
        // `(client, seq)` entries; the window holds exactly one record.
        for seq in 0..4096u32 {
            assert!(
                !service
                    .ingest_report(&dangling_report(7, seq, 0xBAD))
                    .duplicate
            );
        }
        let m = service.metrics();
        assert_eq!(m.reports, 4096);
        assert_eq!(m.dedup_clients, 1, "dedup state grew with report count");
        // Recent redeliveries are still dropped...
        assert!(
            service
                .ingest_report(&dangling_report(7, 4095, 0xBAD))
                .duplicate
        );
        assert!(
            service
                .ingest_report(&dangling_report(7, 4000, 0xBAD))
                .duplicate
        );
        // ...in-window out-of-order delivery is accepted exactly once...
        let late = dangling_report(7, 5000, 0xBAD);
        assert!(!service.ingest_report(&late).duplicate);
        assert!(
            !service
                .ingest_report(&dangling_report(7, 4999, 0xBAD))
                .duplicate
        );
        assert!(service.ingest_report(&late).duplicate);
        // ...and reports below the window floor are dropped, never
        // double-processed (the documented stale tradeoff).
        assert!(
            service
                .ingest_report(&dangling_report(7, 100, 0xBAD))
                .duplicate
        );
        // A second client costs one more window, nothing else.
        assert!(
            !service
                .ingest_report(&dangling_report(8, 0, 0xBAD))
                .duplicate
        );
        assert_eq!(service.metrics().dedup_clients, 2);
    }

    /// The poison bugfix: a thread that panics while holding a shard lock
    /// must not turn every later ingest into a panic. The service recovers
    /// the lock, keeps serving, and counts the event.
    #[test]
    fn poisoned_locks_recover_and_ingestion_continues() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            ..FleetConfig::default()
        });
        service.ingest_report(&dangling_report(1, 0, 0xBAD));
        // Poison every evidence shard and every dedup shard, the way a
        // panicking ingest thread would (hook silenced: these panics are
        // the test fixture, not noise worth printing).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for shard in &service.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().expect("not yet poisoned");
                panic!("simulated ingest panic while holding the shard lock");
            }));
        }
        for seen in &service.seen {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = seen.lock().expect("not yet poisoned");
                panic!("simulated ingest panic while holding the dedup lock");
            }));
        }
        std::panic::set_hook(hook);
        // Ingestion, dedup, publication, and metrics all keep working —
        // enough further clients report that the §5 classifier crosses
        // its threshold post-poison, as in the clean-path test above.
        let receipt = service.ingest_report(&dangling_report(2, 0, 0xBAD));
        assert!(
            !receipt.duplicate,
            "post-poison ingest rejected a fresh report"
        );
        assert!(receipt.observations > 0);
        assert!(
            service
                .ingest_report(&dangling_report(2, 0, 0xBAD))
                .duplicate,
            "dedup state lost in recovery"
        );
        for client in 3..21 {
            service.ingest_report(&dangling_report(client, 0, 0xBAD));
        }
        let epoch = service.publish();
        assert_eq!(epoch.number, 1, "post-poison publish failed");
        let pair = SitePair::new(SiteHash::from_raw(0xBAD), SiteHash::from_raw(0xF));
        assert_eq!(epoch.patches.deferral_for(pair), 30);
        let m = service.metrics();
        assert_eq!(m.reports, 20);
        assert!(
            m.lock_recoveries > 0,
            "recoveries happened but were not counted"
        );
    }

    #[test]
    fn wire_ingest_rejects_garbage_without_side_effects() {
        let service = FleetService::new(FleetConfig::default());
        assert!(service.ingest(b"not a report").is_err());
        assert_eq!(service.metrics().reports, 0);
        assert_eq!(service.metrics().rejected_reports, 1);
        let good = dangling_report(5, 1, 0xBAD).encode();
        assert!(service.ingest(&good).is_ok());
        assert_eq!(service.metrics().reports, 1);
    }

    /// The hostile-prior hardening end to end: a remote report claiming an
    /// absurd site population is rejected at decode, counted in the
    /// metrics, and leaves the Bayesian prior `N` exactly where honest
    /// reports put it — instead of silently out-maxing the whole shard.
    #[test]
    fn hostile_site_population_is_rejected_and_counted_not_folded() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            ..FleetConfig::default()
        });
        service.ingest_report(&dangling_report(1, 0, 0xBAD));
        let honest_n = service.metrics().n_sites;

        // `encode` does not validate, so a hostile client can produce
        // these bytes; `decode` must refuse them.
        let hostile = RunReport {
            n_sites: u32::MAX,
            ..dangling_report(2, 0, 0xBAD)
        }
        .encode();
        let err = service.ingest(&hostile).unwrap_err();
        assert!(
            matches!(err, WireError::BadSiteCount { n_sites, .. } if n_sites == u32::MAX),
            "{err:?}"
        );

        let m = service.metrics();
        assert_eq!(m.rejected_reports, 1, "rejection was not counted");
        assert_eq!(m.reports, 1, "rejected report was folded as evidence");
        assert_eq!(
            m.n_sites, honest_n,
            "a rejected report still skewed the prior"
        );
        // The hostile client's dedup window was never touched either: the
        // same (client, seq) later arriving in a valid report is fresh.
        assert!(
            !service
                .ingest_report(&dangling_report(2, 0, 0xBAD))
                .duplicate,
            "rejected report consumed the sender's dedup sequence"
        );
    }

    /// Admission control end to end: a flooding client is throttled on
    /// the wire path, a well-behaved client on the same service is not,
    /// refusals are counted, and neither dedup state nor evidence is
    /// touched by a refused report. The in-process path
    /// (`ingest_report` — simulator, WAL replay) is never limited.
    #[test]
    fn wire_ingest_rate_limits_flooding_clients_only() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            rate_limit: Some(TokenBucketConfig {
                burst: 4,
                refill_num: 1,
                refill_den: 8,
            }),
            ..FleetConfig::default()
        });
        let mut refused = 0u64;
        let mut refused_seqs = Vec::new();
        for seq in 0..64u32 {
            match service.ingest(&dangling_report(1, seq, 0xBAD).encode()) {
                Err(WireError::RateLimited { client }) => {
                    assert_eq!(client, 1);
                    refused += 1;
                    refused_seqs.push(seq);
                }
                Ok(receipt) => assert!(!receipt.duplicate),
                Err(e) => panic!("unexpected wire error: {e:?}"),
            }
        }
        assert!(refused > 40, "flood barely throttled: {refused}/64 refused");
        // A well-behaved client staying inside its burst is unaffected.
        for seq in 0..4u32 {
            assert!(
                service
                    .ingest(&dangling_report(2, seq, 0xBAD).encode())
                    .is_ok(),
                "in-burst client throttled at seq {seq}"
            );
        }
        let m = service.metrics();
        assert_eq!(m.rate_limited, refused);
        assert_eq!(
            m.rejected_reports, 0,
            "throttling is not a decode rejection"
        );
        // A refused report consumed nothing: its sequence is still
        // fresh when redelivered via the unlimited in-process path.
        let redelivered = refused_seqs[0];
        assert!(
            !service
                .ingest_report(&dangling_report(1, redelivered, 0xBAD))
                .duplicate,
            "rate-limited report consumed the sender's dedup sequence"
        );
    }

    #[test]
    fn latency_histograms_populate_on_the_service_paths() {
        let service = FleetService::new(FleetConfig {
            shards: 2,
            publish_every: 0,
            ..FleetConfig::default()
        });
        for client in 0..20 {
            service
                .ingest(&dangling_report(client, 0, 0xBAD).encode())
                .unwrap();
        }
        service.publish();
        let snap = service.observability().snapshot();
        assert_eq!(snap.histogram("fleet/ingest").unwrap().count(), 20);
        assert_eq!(snap.histogram("fleet/fold").unwrap().count(), 20);
        assert_eq!(snap.histogram("fleet/publish").unwrap().count(), 1);
    }

    #[test]
    fn shard_routing_covers_all_shards() {
        let service = FleetService::new(FleetConfig {
            shards: 8,
            ..FleetConfig::default()
        });
        let mut hit = vec![false; 8];
        for raw in 0..512u32 {
            let idx = service.shard_of(SiteHash::from_raw(raw.wrapping_mul(2654435761)));
            hit[idx] = true;
        }
        assert!(hit.iter().all(|&h| h), "unused shard: {hit:?}");
    }

    #[test]
    fn concurrent_ingestion_matches_sequential_totals() {
        let config = FleetConfig {
            shards: 4,
            publish_every: 0,
            ..FleetConfig::default()
        };
        let service = FleetService::new(config);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let service = &service;
                scope.spawn(move || {
                    for i in 0..25u32 {
                        service.ingest_report(&dangling_report(t, i, 0xBAD + (i % 3)));
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.reports, 100);
        let epoch = service.publish();
        assert_eq!(epoch.number, 1);
        assert!(!epoch.patches.is_empty());
    }
}
