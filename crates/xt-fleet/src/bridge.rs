//! The in-process runtime↔fleet loop: a replicated front-end detects, the
//! fleet service accumulates, published epochs fan back out to the pools.
//!
//! §6.4's collaborative correction has two halves. The *fleet* half —
//! shards, evidence, epochs — is [`FleetService`]. The *runtime* half is a
//! replicated executor that notices something went wrong long before any
//! classifier could: a vote divergence or replica failure on a single
//! input ([`PoolFrontend`](exterminator::frontend::PoolFrontend)). This
//! module closes the loop between them inside one process:
//!
//! 1. The front-end observes a failure (`outcome.error_observed()`).
//! 2. [`report_failure`] re-runs the failing input a handful of times
//!    under cumulative instrumentation — [`exterminator::summarized_run`],
//!    the *exact* path deployed cumulative-mode clients use — and submits
//!    each run's summary over the same wire ingestion the fleet already
//!    speaks. No second evidence format, no privileged side door: the
//!    runtime's discovery is just more reports.
//! 3. The service publishes epochs as evidence crosses the §5 threshold;
//!    [`sync_frontend`] fans the newest epoch out to every pool of the
//!    front-end atomically.
//!
//! `xt-fleet/tests/frontend_loop.rs` drives the full circle: a front-end
//! with self-patching disabled is healed purely by epochs minted from the
//! evidence its own failures generated.

use exterminator::frontend::PoolFrontend;
use exterminator::summarized_run;
use xt_faults::FaultSpec;
use xt_patch::PatchTable;
use xt_workloads::{Workload, WorkloadInput};

use crate::service::FleetService;
use crate::wire::RunReport;

/// Heap multiplier `M` for evidence probes (the paper's default).
const PROBE_MULTIPLIER: f64 = 2.0;

/// SplitMix-style probe seed derivation: distinct per `(base, seq)`.
fn probe_seed(base: u64, seq: u32) -> u64 {
    crate::splitmix_finalize(base.wrapping_add(u64::from(seq).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Turns one observed runtime failure into fleet evidence: `probes`
/// differently-seeded cumulative runs of the failing `(input, fault)`
/// under `patches` (the table the runtime is currently serving with),
/// each reduced to a [`RunReport`] and ingested as `(client, seq_base +
/// i)`. Returns the number of reports the service accepted as fresh.
///
/// The fill probability comes from the service's own classifier
/// configuration, so the probes produce evidence in exactly the shape the
/// shards expect.
#[allow(clippy::too_many_arguments)]
pub fn report_failure(
    service: &FleetService,
    client: u64,
    seq_base: u32,
    workload: &dyn Workload,
    input: &WorkloadInput,
    fault: Option<FaultSpec>,
    patches: &PatchTable,
    probes: u32,
    base_seed: u64,
) -> u32 {
    let fill = service.config().isolator.fill_probability;
    let mut accepted = 0;
    for probe in 0..probes {
        let seq = seq_base.wrapping_add(probe);
        let run = summarized_run(
            workload,
            input,
            fault,
            patches.clone(),
            probe_seed(base_seed, seq),
            fill,
            PROBE_MULTIPLIER,
        );
        let report = RunReport::from_summary(client, seq, &run.summary);
        let receipt = service
            .ingest(&report.encode())
            .expect("self-encoded report is well-formed");
        if !receipt.duplicate {
            accepted += 1;
        }
    }
    accepted
}

/// Fans the service's newest epoch out to all of `frontend`'s pools (one
/// epoch version for the whole front-end). Returns `true` if the
/// front-end's live table advanced.
pub fn sync_frontend(service: &FleetService, frontend: &PoolFrontend<'_>) -> bool {
    frontend.load_epoch(&service.latest())
}

/// The socket server's ingest path: folds one wire report into the
/// service and immediately fans any newer epoch back out to the
/// front-end serving the same process. This is how a remote client's
/// evidence heals the server's own pools — ingestion may cross the
/// service's publish cadence and mint a fresh epoch, and the next job
/// the front-end dispatches (to *any* pool) already runs under it.
///
/// # Errors
///
/// Returns the [`WireError`] for malformed bytes; the service counts the
/// rejection and neither the evidence nor the front-end is touched.
pub fn ingest_and_sync(
    service: &FleetService,
    frontend: &PoolFrontend<'_>,
    bytes: &[u8],
) -> Result<crate::IngestReceipt, crate::WireError> {
    let receipt = service.ingest(bytes)?;
    sync_frontend(service, frontend);
    Ok(receipt)
}
