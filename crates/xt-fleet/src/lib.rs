//! Fleet-scale collaborative correction: the §6.4 story as a service.
//!
//! The paper's deployment argument is not one machine. §5 closes with the
//! observation that cumulative mode reduces each execution to "relevant
//! statistics about each run" — a few hundred bytes — precisely so that a
//! *population* of users can pool them, and §6.4 sketches the utility that
//! merges every user's patches "computing the maximum buffer pad required
//! for any allocation site, and the maximal deferral amount". This crate
//! is that loop at Windows-Error-Reporting scale:
//!
//! 1. **Clients** run their workload under the correcting allocator,
//!    reduce the run to a [`RunSummary`](xt_isolate::cumulative::RunSummary)
//!    (via [`exterminator::summarized_run`]), and submit it as a compact
//!    binary [`RunReport`] (module [`wire`]).
//! 2. **The service** ([`FleetService`], module [`service`]) folds reports
//!    into `N` evidence shards keyed by allocation-site hash. Each shard
//!    is an [`EvidenceTable`](xt_isolate::evidence::EvidenceTable) — the
//!    §5 Bayesian hypothesis test in running-product form — behind its own
//!    lock, so ingestion scales with cores. Because evidence merge and the
//!    patch-lattice join of `xt-patch` are commutative, associative, and
//!    (with delivery dedup) idempotent, any interleaving of the fleet's
//!    reports converges to the same state.
//! 3. **Publication**: the service periodically classifies every shard and
//!    joins newly flagged patches into a versioned
//!    [`PatchEpoch`](xt_patch::PatchEpoch). Epochs are monotone — §6.4's
//!    max-merge guarantees epoch `n + 1` covers epoch `n` — so clients
//!    polling [`FleetService::latest`] (a lock-free-for-writers `Arc`
//!    snapshot) can adopt any newer epoch without coordination.
//! 4. **The simulator** (module [`simulator`]) closes the loop: hundreds
//!    to thousands of scoped-thread clients each run
//!    workload-with-injected-fault → submit → poll → rerun, reproducing
//!    the paper's cumulative-mode convergence (Fig. 6's runs-to-isolation
//!    curves) at population scale — the fleet corrects an overflow and a
//!    dangling bug for everyone after enough reports arrive from anyone.
//! 5. **The bridge** (module [`bridge`]) closes the same loop *inside one
//!    process*: failures a replicated
//!    [`PoolFrontend`](exterminator::frontend::PoolFrontend) observes are
//!    re-run under cumulative instrumentation and submitted through the
//!    identical wire path, and published epochs fan back out to every
//!    pool of the front-end.
//!
//! # Durability
//!
//! The in-memory service forgets everything on restart. [`DurableFleet`]
//! (module [`wal`]) persists it through any [`Storage`] (module
//! [`storage`]):
//!
//! * **WAL format** — each record is `kind (u8) ∥ lsn (u64 LE) ∥
//!   payload-len (u32 LE) ∥ FNV-1a-64 checksum (u64 LE) ∥ payload`; kind
//!   0 carries the report's own `XTR1` encoding, kind 1 is an explicit
//!   publish. Every report is appended *before* it is folded.
//! * **Snapshot cadence** — after `snapshot_every` fresh reports (or on
//!   request) the full state is exported as a canonical [`FleetSnapshot`]
//!   (`XTS1`), atomically replaced on storage, and the WAL reset. The
//!   snapshot records the highest LSN it folded, so recovery skips any
//!   WAL overlap a crash between the two steps leaves behind.
//! * **Recovery invariant** — reopen = snapshot + truncate torn tail
//!   (checksums) + replay tail; restored
//!   [`ReplayWindow`]s make replay and client retries idempotent. The
//!   crash-injection property test (`tests/durability.rs`) sweeps a
//!   seeded fault across every storage operation and asserts the
//!   recovered [`FleetService::state_digest`] and all subsequent
//!   outcomes are byte-identical to a run that never crashed.
//!
//! # Observability
//!
//! The service carries an [`xt_obs::Registry`]
//! ([`FleetService::observability`]) with per-stage latency histograms
//! — `fleet/ingest` (decode + admit + fold, wire path), `fleet/fold`
//! (the shard-fold loop alone), `fleet/publish` (classification +
//! epoch mint), and `fleet/wal_append` (storage appends, populated by
//! [`DurableFleet`]). Buckets are powers of two in nanoseconds
//! ([`xt_obs::HISTOGRAM_BUCKETS`]); snapshots merge bucket-wise and
//! render deterministically. Counters come from [`FleetMetrics`],
//! whose [`counters_snapshot`](FleetMetrics::counters_snapshot) puts
//! them in the same registry-snapshot shape; every consumer (plain
//! service, durable wrapper, network backend) obtains metrics through
//! the single [`FleetService::metrics_with`] path.
//!
//! **Admission control**: [`FleetConfig::rate_limit`] arms per-client
//! deterministic token buckets (attempt-driven refill, phase seeded
//! from the client id — no wall clock) on the **wire** ingest path
//! only. A refused report is [`WireError::RateLimited`], counted in
//! [`FleetMetrics::rate_limited`], and touches no evidence, dedup, or
//! WAL state; in-process ingestion (`ingest_report` — the simulator,
//! WAL replay) is never limited. Latency histograms and admission
//! decisions are observability/policy only: nothing here feeds the
//! deterministic `state_digest`.

pub mod bridge;
pub mod delivery;
pub mod frame;
pub mod service;
pub mod simulator;
pub mod storage;
pub mod wal;
pub mod wire;

/// SplitMix64 finalizer — the one mixer behind every seed derivation in
/// this crate (simulator client seeds, bridge probe seeds), so a future
/// change to seed mixing cannot silently diverge between them.
pub(crate) fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub use delivery::{Delivery, ReplayWindow};
pub use frame::{Frame, FrameError, Reader};
pub use service::{
    DurabilityStats, FleetConfig, FleetMetrics, FleetService, IngestReceipt, RestoreError,
};
pub use simulator::{FaultConvergence, FleetOutcome, FleetSimulator, SimConfig};
pub use storage::{DirStorage, FaultMode, FaultyStorage, MemStorage, Storage};
pub use wal::{DurabilityConfig, DurabilityError, DurableFleet};
pub use wire::{EvidenceRecord, FleetSnapshot, RunReport, WireError};
