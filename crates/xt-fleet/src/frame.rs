//! The shared wire substrate: offset-reporting validation and a
//! length-prefixed frame layer.
//!
//! Two consumers speak binary formats built on this module:
//!
//! * [`wire`](crate::wire) — the `XTR1` run report, a bare payload format
//!   (both ends are this crate, no framing needed on disk or in tests);
//! * `xt-net` — the network front door, which multiplexes several message
//!   families over one TCP connection and therefore needs [`Frame`]s:
//!   `magic ∥ kind ∥ payload-length ∥ payload`.
//!
//! Everything validates **with byte offsets**: a [`WireError`] names the
//! exact offset of the first malformed byte. The rationale is the same as
//! the original `XTR1` decoder's — these bytes cross a trust boundary
//! (remote clients, at-least-once transports, disk), and "`bad report`"
//! is undebuggable while "`bad boolean byte 0x3 at offset 4`" pinpoints
//! the corruption, the truncation point, or the version skew. The
//! [`Reader`] cursor carries the offset bookkeeping so every format built
//! on it gets precise diagnostics for free.
//!
//! Length prefixes are validated against caller-supplied caps *before*
//! any allocation ([`Reader::count`], [`MAX_FRAME_PAYLOAD`]): a corrupt
//! or hostile length must not turn into a multi-gigabyte allocation.

use std::io::{self, Read, Write};

/// First bytes of every frame: `XTF` plus the format version.
pub const FRAME_MAGIC: [u8; 4] = *b"XTF1";

/// Hard cap on a frame's payload length. Generous for every message the
/// protocols carry (reports are hundreds of bytes, outcomes dominated by
/// replica output streams), but small enough that a hostile length prefix
/// cannot exhaust memory before validation rejects it.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// A malformed wire buffer (report payload or frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not start with the expected magic/version bytes.
    BadMagic([u8; 4]),
    /// The buffer ends before a field at this offset is complete.
    Truncated {
        /// Byte offset where more data was needed.
        at: usize,
    },
    /// A boolean byte held something other than 0 or 1.
    BadBool {
        /// Byte offset of the offending value.
        at: usize,
        /// The value found.
        value: u8,
    },
    /// An observation probability was non-finite or outside `[0, 1]`.
    BadProbability {
        /// Byte offset of the offending value.
        at: usize,
        /// The raw `f64` bits found.
        bits: u64,
    },
    /// An array length or payload-length prefix exceeds its sanity cap.
    Oversized {
        /// Byte offset of the length prefix.
        at: usize,
        /// The claimed element count or byte length.
        count: u32,
    },
    /// The claimed distinct-site population is implausible: zero alongside
    /// non-empty observation or hint arrays, or above the entry cap. A
    /// hostile value here would skew the §5 Bayesian prior `N` for a
    /// whole shard.
    BadSiteCount {
        /// Byte offset of the `n_sites` field.
        at: usize,
        /// The claimed site population.
        n_sites: u32,
        /// Site-naming entries (observations plus pad/defer hints) the
        /// same report carries.
        observations: u64,
    },
    /// An evidence grid's node count disagrees with the snapshot's
    /// declared integration grid — restoring it would corrupt every later
    /// evidence merge (Simpson states only combine on one grid).
    BadGrid {
        /// Byte offset of the node-count prefix.
        at: usize,
        /// The node count found.
        nodes: u32,
    },
    /// A message kind byte no decoder recognizes.
    BadKind {
        /// Byte offset of the kind byte.
        at: usize,
        /// The value found.
        kind: u8,
    },
    /// A string field holds bytes that are not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the first invalid byte.
        at: usize,
    },
    /// Bytes remain after the last field.
    Trailing {
        /// Offset where decoding finished.
        at: usize,
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A well-formed report refused by per-client admission control —
    /// the only variant that is a *policy* decision, not a decode
    /// failure, so it carries the throttled client id instead of a
    /// byte offset.
    RateLimited {
        /// The client whose token bucket ran dry.
        client: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::Truncated { at } => write!(f, "buffer truncated at byte {at}"),
            WireError::BadBool { at, value } => {
                write!(f, "bad boolean byte {value:#x} at offset {at}")
            }
            WireError::BadProbability { at, bits } => {
                write!(
                    f,
                    "observation probability {} (bits {bits:#x}) at offset {at} is not in [0, 1]",
                    f64::from_bits(*bits)
                )
            }
            WireError::Oversized { at, count } => {
                write!(f, "length prefix {count} at offset {at} exceeds cap")
            }
            WireError::BadSiteCount {
                at,
                n_sites,
                observations,
            } => {
                write!(
                    f,
                    "implausible site population {n_sites} at offset {at} \
                     (report carries {observations} observations)"
                )
            }
            WireError::BadGrid { at, nodes } => {
                write!(
                    f,
                    "evidence grid of {nodes} nodes at offset {at} does not \
                     match the snapshot's integration grid"
                )
            }
            WireError::BadKind { at, kind } => {
                write!(f, "unknown message kind {kind:#x} at offset {at}")
            }
            WireError::BadUtf8 { at } => {
                write!(f, "invalid UTF-8 in string field at offset {at}")
            }
            WireError::Trailing { at, extra } => {
                write!(f, "{extra} trailing bytes after end at offset {at}")
            }
            WireError::RateLimited { client } => {
                write!(f, "client {client} rate-limited at ingest admission")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Offset-tracking cursor over wire bytes. Every format built on this
/// module decodes through a `Reader`, so malformed input anywhere reports
/// the exact byte offset.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// The current byte offset (for error reporting by callers that
    /// validate semantic constraints the reader cannot know about).
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads `N` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `N` bytes remain.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let end = self.pos + N;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(WireError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(slice.try_into().expect("slice length is N"))
    }

    /// Reads `len` raw bytes as a borrowed slice.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos + len;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(WireError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than 16 bytes remain.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.array()?))
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::BadBool`].
    pub fn bool(&mut self) -> Result<bool, WireError> {
        let at = self.pos;
        match self.array::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(WireError::BadBool { at, value }),
        }
    }

    /// Reads a `u32` length prefix, rejecting values above `cap` before
    /// any allocation happens.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::Oversized`].
    pub fn count(&mut self, cap: u32) -> Result<u32, WireError> {
        let at = self.pos;
        let count = self.u32()?;
        if count > cap {
            return Err(WireError::Oversized { at, count });
        }
        Ok(count)
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Trailing {
                at: self.pos,
                extra: self.bytes.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// One length-prefixed message on a multiplexed byte stream:
/// `FRAME_MAGIC ∥ kind ∥ payload-length (u32 LE) ∥ payload`.
///
/// The `kind` byte is protocol-defined (this layer carries it opaquely);
/// the payload is an arbitrary byte string whose internal format the
/// protocol decodes with its own [`Reader`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message discriminator.
    pub kind: u8,
    /// The message body.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read from a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed mid-frame (includes unexpected EOF).
    Io(io::Error),
    /// The bytes read do not form a valid frame.
    Malformed(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Malformed(e)
    }
}

impl Frame {
    /// Wraps a payload under a kind byte.
    #[must_use]
    pub fn new(kind: u8, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }

    /// Serialized frame length for this payload size.
    #[must_use]
    pub fn encoded_len(payload_len: usize) -> usize {
        FRAME_MAGIC.len() + 1 + 4 + payload_len
    }

    /// Serializes the frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`] — an encoder
    /// bug, not a remote condition.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_FRAME_PAYLOAD as usize,
            "frame payload of {} bytes exceeds the wire cap",
            self.payload.len()
        );
        let mut out = Vec::with_capacity(Self::encoded_len(self.payload.len()));
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(self.kind);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses exactly one frame from `bytes`, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the first malformed byte.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.array::<4>()?;
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let kind = r.array::<1>()?[0];
        let len = r.count(MAX_FRAME_PAYLOAD)?;
        let payload = r.bytes(len as usize)?.to_vec();
        r.finish()?;
        Ok(Frame { kind, payload })
    }

    /// Parses one frame from the *front* of a byte buffer, without
    /// requiring the buffer to end at a frame boundary. The incremental
    /// sibling of [`Frame::decode`] for non-blocking readers that
    /// accumulate whatever `read` returned: `Ok(Some((frame, consumed)))`
    /// when a whole frame is available (`consumed` bytes should be
    /// drained from the buffer), `Ok(None)` when more bytes are needed.
    ///
    /// Malformation is detected as early as the available prefix allows
    /// — a magic mismatch is reported even from a single wrong leading
    /// byte, and an oversized length the moment the length field is
    /// complete — so a hostile peer cannot stall the error behind a
    /// never-arriving payload.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`] (unknown bytes padded with zeros when
    /// fewer than four arrived) or [`WireError::Oversized`] at offset 5.
    pub fn parse_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        let seen = buf.len().min(FRAME_MAGIC.len());
        if buf[..seen] != FRAME_MAGIC[..seen] {
            let mut magic = [0u8; 4];
            magic[..seen].copy_from_slice(&buf[..seen]);
            return Err(WireError::BadMagic(magic));
        }
        if buf.len() >= 9 {
            let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
            if len > MAX_FRAME_PAYLOAD {
                return Err(WireError::Oversized { at: 5, count: len });
            }
            let total = Self::encoded_len(len as usize);
            if buf.len() >= total {
                return Ok(Some((
                    Frame {
                        kind: buf[4],
                        payload: buf[9..total].to_vec(),
                    },
                    total,
                )));
            }
        }
        Ok(None)
    }

    /// Writes the frame to a stream (one `write_all`, so concurrent
    /// writers serialized by a lock cannot interleave partial frames).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF
    /// at a frame boundary (the peer closed between messages); EOF inside
    /// a frame is an error.
    ///
    /// Interrupted reads (`EINTR`) are always retried. A stream *read
    /// timeout* (`WouldBlock`/`TimedOut`) is surfaced only when it fires
    /// at a frame boundary — no bytes consumed, so the caller can safely
    /// retry or check a shutdown flag and call again; once any frame
    /// byte has been read, timeouts are absorbed and the read continues,
    /// because returning mid-frame would desynchronize the stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] on transport failure, mid-frame EOF, or an
    /// idle timeout at a frame boundary; [`FrameError::Malformed`] on
    /// bad magic or an oversized length.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        let mut header = [0u8; 9];
        // Hand-rolled reads so a clean EOF (zero bytes) is
        // distinguishable from a torn frame, and so retryable error
        // kinds never tear a healthy connection.
        let mut filled = 0;
        while filled < header.len() {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("EOF after {filled} header bytes"),
                    )));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if filled > 0
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        let magic: [u8; 4] = header[..4].try_into().expect("fixed split");
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic).into());
        }
        let kind = header[4];
        let len = u32::from_le_bytes(header[5..9].try_into().expect("fixed split"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(WireError::Oversized { at: 5, count: len }.into());
        }
        let mut payload = vec![0u8; len as usize];
        let mut filled = 0;
        while filled < payload.len() {
            match r.read(&mut payload[filled..]) {
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("EOF inside a {len}-byte payload"),
                    )));
                }
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(Some(Frame { kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(7, b"three message families, one stream".to_vec())
    }

    #[test]
    fn round_trips() {
        let frame = sample();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), Frame::encoded_len(frame.payload.len()));
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = Frame::new(0, Vec::new());
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Frame::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.push(0xAA);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Trailing { extra: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'Y';
        assert!(matches!(Frame::decode(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn rejects_oversized_payload_claim() {
        let mut bytes = sample().encode();
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Oversized { at: 5, .. })
        ));
    }

    #[test]
    fn parse_prefix_needs_more_then_yields_frame_and_consumed() {
        let frame = sample();
        let bytes = frame.encode();
        for len in 0..bytes.len() {
            assert_eq!(
                Frame::parse_prefix(&bytes[..len]).unwrap(),
                None,
                "prefix of {len} bytes is incomplete"
            );
        }
        // A whole frame plus the start of the next: exactly one frame
        // out, and `consumed` points at the boundary.
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes[..3]);
        let (parsed, consumed) = Frame::parse_prefix(&two).unwrap().expect("complete");
        assert_eq!(parsed, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn parse_prefix_rejects_bad_magic_from_the_first_byte() {
        assert!(matches!(
            Frame::parse_prefix(b"Y"),
            Err(WireError::BadMagic(_))
        ));
        let mut bytes = sample().encode();
        bytes[2] = 0x7F;
        assert!(matches!(
            Frame::parse_prefix(&bytes),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn parse_prefix_rejects_oversized_before_the_payload_arrives() {
        let mut header = Vec::new();
        header.extend_from_slice(&FRAME_MAGIC);
        header.push(1);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::parse_prefix(&header),
            Err(WireError::Oversized { at: 5, .. })
        ));
    }

    #[test]
    fn stream_reads_frames_and_reports_clean_eof() {
        let a = Frame::new(1, b"first".to_vec());
        let b = Frame::new(2, Vec::new());
        let mut stream = Vec::new();
        a.write_to(&mut stream).unwrap();
        b.write_to(&mut stream).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(a));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(b));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn stream_eof_inside_a_frame_is_an_error() {
        let bytes = sample().encode();
        for len in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..len]);
            let err = Frame::read_from(&mut cursor).expect_err("torn frame accepted");
            assert!(
                matches!(err, FrameError::Io(ref e) if e.kind() == io::ErrorKind::UnexpectedEof),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn reader_reports_offsets() {
        let mut r = Reader::new(&[1, 0, 0, 0, 2]);
        assert_eq!(r.count(10).unwrap(), 1);
        assert_eq!(r.pos(), 4);
        assert_eq!(
            r.bool().unwrap_err(),
            WireError::BadBool { at: 4, value: 2 }
        );
    }
}
