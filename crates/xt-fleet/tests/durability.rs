//! The crash-injection recovery property: kill the durable fleet at an
//! **arbitrary storage operation** — clean fail, torn append, or
//! applied-then-failed — recover from whatever the "disk" holds, retry
//! the in-flight call, and the evidence state, epoch version, and every
//! subsequent outcome must be byte-identical to a run that never
//! crashed.
//!
//! The sweep is exhaustive over the crash *point*: a reference run over
//! counting storage learns how many mutating operations the workload
//! performs, then every operation index is killed once per seed (the
//! seed picks the fault mode per index deterministically). Extra seeds
//! come from `XT_CRASH_SEEDS` (comma-separated), which CI sets for a
//! wider sweep than the local default.

use xt_fleet::storage::{FaultMode, FaultyStorage, MemStorage};
use xt_fleet::wal::{DurabilityConfig, DurabilityError, DurableFleet};
use xt_fleet::{FleetConfig, FleetMetrics, IngestReceipt, RunReport, Storage};

/// One step of the deterministic workload.
#[derive(Clone, Debug)]
enum Action {
    Ingest(RunReport),
    Publish,
    Snapshot,
}

/// What one step produced (the "subsequent outcomes" the invariant
/// compares).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    Ingested(IngestReceipt),
    Published(u64),
    Snapshotted,
}

impl Outcome {
    /// The epoch the outcome observed — the part of a *retried* step's
    /// outcome that must still match the reference (a retry may
    /// legitimately flip `duplicate` when the crash ate an
    /// acknowledgment, but it must see the same epoch).
    fn epoch(&self) -> u64 {
        match self {
            Outcome::Ingested(r) => r.epoch,
            Outcome::Published(n) => *n,
            Outcome::Snapshotted => 0,
        }
    }
}

fn report(client: u64, seq: u32, i: u64) -> RunReport {
    // Deterministic variety: failed/clean runs, both observation
    // families, probabilities across the grid, occasional hints.
    let site = 0xB000 + (i % 7) as u32;
    let x = [0.25, 0.5, 0.75, 1.0 - 0.5f64.powi(9)][(i % 4) as usize];
    RunReport {
        client,
        seq,
        failed: !i.is_multiple_of(3),
        clock: 100 + i,
        n_sites: 50 + (i % 40) as u32,
        overflow_obs: if i.is_multiple_of(2) {
            vec![(site, x, !i.is_multiple_of(3))]
        } else {
            Vec::new()
        },
        dangling_obs: if i % 2 == 1 {
            vec![(site, x, true), (site + 1, x, i.is_multiple_of(5))]
        } else {
            Vec::new()
        },
        pad_hints: if i.is_multiple_of(4) {
            vec![(site, 8 + (i % 64) as u32)]
        } else {
            Vec::new()
        },
        defer_hints: if i % 3 == 1 {
            vec![(site, 0xF, 10 + i)]
        } else {
            Vec::new()
        },
    }
}

/// ~50 steps: 40 ingests from 6 clients (including deliberate
/// redeliveries — the at-least-once transport), explicit publishes, and
/// explicit snapshots, interleaved. Auto-publish (`publish_every`) and
/// auto-snapshot (`snapshot_every`) cadences fire on top of these.
fn script() -> Vec<Action> {
    let mut actions = Vec::new();
    for i in 0..40u64 {
        let client = i % 6;
        let seq = (i / 6) as u32;
        actions.push(Action::Ingest(report(client, seq, i)));
        if i % 9 == 4 {
            // Redeliver the report just sent: a duplicate in the WAL.
            actions.push(Action::Ingest(report(client, seq, i)));
        }
        if i == 13 || i == 31 {
            actions.push(Action::Publish);
        }
        if i == 21 {
            actions.push(Action::Snapshot);
        }
    }
    actions
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: 4,
        publish_every: 10,
        ..FleetConfig::default()
    }
}

const DURABILITY: DurabilityConfig = DurabilityConfig { snapshot_every: 8 };

/// Applies one action, mapping results to comparable outcomes.
fn apply<S: xt_fleet::Storage>(
    fleet: &DurableFleet<S>,
    action: &Action,
) -> Result<Outcome, DurabilityError> {
    match action {
        Action::Ingest(r) => fleet.ingest_report(r).map(Outcome::Ingested),
        Action::Publish => fleet.publish().map(|e| Outcome::Published(e.number)),
        Action::Snapshot => fleet.snapshot().map(|()| Outcome::Snapshotted),
    }
}

/// The uncrashed reference: outcomes, final digest, final metrics, and
/// the number of mutating storage operations the workload performs.
fn reference() -> (Vec<Outcome>, u128, FleetMetrics, u64) {
    let counter = FaultyStorage::counting(MemStorage::new());
    let (outcomes, digest, metrics) = {
        let fleet = DurableFleet::open(&counter, fleet_config(), DURABILITY).expect("clean open");
        let outcomes: Vec<Outcome> = script()
            .iter()
            .map(|a| apply(&fleet, a).expect("uncrashed run"))
            .collect();
        (outcomes, fleet.state_digest(), fleet.metrics())
    };
    (outcomes, digest, metrics, counter.ops())
}

fn seeds() -> Vec<u64> {
    match std::env::var("XT_CRASH_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("XT_CRASH_SEEDS: decimal seeds"))
            .collect(),
        Err(_) => vec![1, 7],
    }
}

/// The tentpole property. For every mutating storage operation the
/// workload performs, and every seed's fault mode at that operation:
/// crash there, recover, retry, finish — and converge byte-identically.
#[test]
fn recovery_from_any_crash_point_is_byte_identical() {
    let (ref_outcomes, ref_digest, ref_metrics, total_ops) = reference();
    assert!(
        total_ops > 40,
        "workload too small to be a meaningful sweep ({total_ops} ops)"
    );
    let script = script();
    let mut crashes = 0u64;
    let mut torn_seen = 0u64;
    let mut recoveries_seen = 0u64;
    for seed in seeds() {
        for fail_at in 0..total_ops {
            let disk = MemStorage::new();
            let faulty = FaultyStorage::with_seed(disk.clone(), seed, fail_at);
            let injected_mode = faulty.mode();
            let fleet =
                DurableFleet::open(faulty, fleet_config(), DURABILITY).expect("open only reads");
            let mut outcomes: Vec<Outcome> = Vec::with_capacity(script.len());
            let mut crash_idx = None;
            let mut steps = script.iter().enumerate();
            for (i, action) in steps.by_ref() {
                match apply(&fleet, action) {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(DurabilityError::Storage(_)) => {
                        crash_idx = Some(i);
                        break;
                    }
                    Err(e) => panic!("seed {seed} op {fail_at}: non-storage error {e}"),
                }
            }
            let Some(crash_idx) = crash_idx else {
                // The doomed op was never reached (it belonged to the
                // reference's extra ops) — the run is just the reference.
                assert_eq!(outcomes, ref_outcomes, "seed {seed} op {fail_at}");
                assert_eq!(fleet.state_digest(), ref_digest, "seed {seed} op {fail_at}");
                continue;
            };
            crashes += 1;
            // The process dies; only the disk survives. A crash at the
            // very first mutating op can fail *cleanly* — zero bytes ever
            // reached the disk — and reopening an empty store is a fresh
            // start, not a recovery; everywhere else the reopen must
            // count exactly one.
            drop(fleet);
            let disk_holds_state = disk.object_len(xt_fleet::wal::WAL_OBJECT) > 0
                || disk.object_len(xt_fleet::wal::SNAPSHOT_OBJECT) > 0;
            let fleet = DurableFleet::open(disk, fleet_config(), DURABILITY)
                .unwrap_or_else(|e| panic!("seed {seed} op {fail_at}: recovery failed: {e}"));
            let m = fleet.metrics();
            assert_eq!(
                m.recoveries,
                u64::from(disk_holds_state),
                "seed {seed} op {fail_at}: recovery count disagrees with on-disk state"
            );
            recoveries_seen += m.recoveries;
            torn_seen += m.torn_tail_truncated;
            if matches!(injected_mode, FaultMode::Tear { .. }) {
                assert!(
                    m.recoveries >= m.torn_tail_truncated,
                    "torn counter without a recovery"
                );
            }
            // The client retries the call the crash swallowed. Its
            // outcome must observe the reference's epoch; the duplicate
            // flag may differ (crash-after-apply turns the retry into a
            // dropped redelivery — exactly the idempotence under test).
            let retried = apply(&fleet, &script[crash_idx])
                .unwrap_or_else(|e| panic!("seed {seed} op {fail_at}: retry failed: {e}"));
            assert_eq!(
                retried.epoch(),
                ref_outcomes[crash_idx].epoch(),
                "seed {seed} op {fail_at}: retried step saw a different epoch"
            );
            // Everything after the crash point must be byte-identical.
            for (i, action) in script.iter().enumerate().skip(crash_idx + 1) {
                let outcome = apply(&fleet, action)
                    .unwrap_or_else(|e| panic!("seed {seed} op {fail_at} step {i}: {e}"));
                assert_eq!(
                    outcome, ref_outcomes[i],
                    "seed {seed} op {fail_at}: outcome {i} diverged after recovery"
                );
            }
            assert_eq!(
                fleet.state_digest(),
                ref_digest,
                "seed {seed} op {fail_at} ({injected_mode:?}): state diverged"
            );
            let m = fleet.metrics();
            for (name, got, want) in [
                ("reports", m.reports, ref_metrics.reports),
                (
                    "failed_reports",
                    m.failed_reports,
                    ref_metrics.failed_reports,
                ),
                ("epoch", m.epoch, ref_metrics.epoch),
                ("epoch_reports", m.epoch_reports, ref_metrics.epoch_reports),
                ("n_sites", m.n_sites as u64, ref_metrics.n_sites as u64),
                (
                    "sites_tracked",
                    m.sites_tracked as u64,
                    ref_metrics.sites_tracked as u64,
                ),
            ] {
                assert_eq!(
                    got, want,
                    "seed {seed} op {fail_at}: metric {name} diverged"
                );
            }
        }
    }
    // The sweep must actually have exercised the interesting machinery.
    // (Per-crash recovery counting is asserted exactly above, against the
    // disk's actual contents at reopen.)
    assert!(crashes > 0, "no operation index ever crashed");
    assert!(recoveries_seen > 0, "the sweep never recovered real state");
    assert!(
        torn_seen > 0,
        "the sweep never produced a torn tail — Tear mode untested"
    );
}

/// Group commit: a batch ingest covers all its records with **one**
/// storage append, receipts come back in input order, and the WAL
/// replays to the identical state a record-at-a-time run reaches.
#[test]
fn batch_ingest_is_one_append_and_replays_identically() {
    let serial_digest = {
        let fleet = DurableFleet::open(
            MemStorage::new(),
            fleet_config(),
            DurabilityConfig { snapshot_every: 0 },
        )
        .unwrap();
        for i in 0..24u64 {
            fleet
                .ingest_report(&report(i % 6, (i / 6) as u32, i))
                .unwrap();
        }
        fleet.state_digest()
    };
    let disk = MemStorage::new();
    let batch: Vec<RunReport> = (0..24u64)
        .map(|i| report(i % 6, (i / 6) as u32, i))
        .collect();
    {
        let fleet = DurableFleet::open(
            disk.clone(),
            fleet_config(),
            DurabilityConfig { snapshot_every: 0 },
        )
        .unwrap();
        let receipts = fleet.ingest_batch(&batch).unwrap();
        assert_eq!(receipts.len(), 24);
        assert!(receipts.iter().all(|r| !r.duplicate));
        let m = fleet.metrics();
        assert_eq!(m.wal_appends, 24, "every record hits the WAL");
        assert_eq!(m.wal_batches, 1, "…under a single group-commit append");
        assert_eq!(fleet.state_digest(), serial_digest, "batch fold diverged");
        assert!(fleet.ingest_batch(&[]).unwrap().is_empty());
    }
    let fleet =
        DurableFleet::open(disk, fleet_config(), DurabilityConfig { snapshot_every: 0 }).unwrap();
    assert_eq!(
        fleet.state_digest(),
        serial_digest,
        "replayed batch diverged"
    );
    assert_eq!(fleet.metrics().reports, 24);
}

/// The mid-batch crash property: kill the storage at every operation a
/// group-commit batch performs — including a *tear inside the
/// multi-record append* — recover, retry the whole batch, and the state
/// must converge to the uncrashed reference. A torn batch leaves a valid
/// record prefix that recovery replays; the retry's dedup drops exactly
/// that prefix and folds the rest.
#[test]
fn crash_mid_batch_recovers_and_batch_retry_is_idempotent() {
    let config = || FleetConfig {
        shards: 4,
        publish_every: 0,
        ..FleetConfig::default()
    };
    let durability = DurabilityConfig { snapshot_every: 16 };
    let batch: Vec<RunReport> = (0..48u64)
        .map(|i| report(i % 8, (i / 8) as u32, i))
        .collect();
    let (ref_digest, total_ops) = {
        let counter = FaultyStorage::counting(MemStorage::new());
        let fleet = DurableFleet::open(&counter, config(), durability).unwrap();
        fleet.ingest_batch(&batch).unwrap();
        (fleet.state_digest(), counter.ops())
    };
    assert!(total_ops >= 3, "batch + cadence snapshot expected");
    let mut torn_mid_batch = 0u64;
    for seed in seeds() {
        for fail_at in 0..total_ops {
            let disk = MemStorage::new();
            let faulty = FaultyStorage::with_seed(disk.clone(), seed, fail_at);
            let injected_mode = faulty.mode();
            let fleet = DurableFleet::open(faulty, config(), durability).unwrap();
            match fleet.ingest_batch(&batch) {
                Ok(receipts) => {
                    // ApplyThenFail on a snapshot op can still surface as
                    // the batch error; a fully clean pass must match.
                    assert_eq!(receipts.len(), batch.len());
                }
                Err(DurabilityError::Storage(_)) => {}
                Err(e) => panic!("seed {seed} op {fail_at}: non-storage error {e}"),
            }
            drop(fleet);
            let fleet = DurableFleet::open(disk, config(), durability)
                .unwrap_or_else(|e| panic!("seed {seed} op {fail_at}: recovery failed: {e}"));
            let replayed = fleet.metrics().reports;
            if fleet.metrics().torn_tail_truncated > 0 && replayed < 48 {
                // The tear landed inside the batch append: recovery
                // truncated it and replayed the valid record prefix.
                torn_mid_batch += 1;
            }
            // The client retries the whole batch (at-least-once): dedup
            // must drop what survived and fold the remainder.
            let receipts = fleet
                .ingest_batch(&batch)
                .unwrap_or_else(|e| panic!("seed {seed} op {fail_at}: retry failed: {e}"));
            assert_eq!(
                receipts.iter().filter(|r| r.duplicate).count() as u64,
                replayed,
                "seed {seed} op {fail_at} ({injected_mode:?}): dedup disagrees with replay"
            );
            assert_eq!(
                fleet.state_digest(),
                ref_digest,
                "seed {seed} op {fail_at} ({injected_mode:?}): state diverged"
            );
            assert_eq!(fleet.metrics().reports, 48, "seed {seed} op {fail_at}");
        }
    }
    assert!(
        torn_mid_batch > 0,
        "the sweep never tore inside a batch append — widen the tear window"
    );
    // The injected tear window sits in the first 64 bytes, which lands
    // inside record 1; finish with a deterministic tear deep in the
    // batch so a strict *non-empty* record prefix replays and the retry
    // dedups exactly that prefix.
    let disk = MemStorage::new();
    {
        let fleet = DurableFleet::open(
            disk.clone(),
            config(),
            DurabilityConfig { snapshot_every: 0 },
        )
        .unwrap();
        fleet.ingest_batch(&batch).unwrap();
    }
    let log = disk.read(xt_fleet::wal::WAL_OBJECT).unwrap().unwrap();
    disk.truncate(xt_fleet::wal::WAL_OBJECT, (log.len() * 2 / 5) as u64)
        .unwrap();
    let fleet = DurableFleet::open(disk, config(), DurabilityConfig { snapshot_every: 0 }).unwrap();
    assert_eq!(fleet.metrics().torn_tail_truncated, 1);
    let replayed = fleet.metrics().reports;
    assert!(
        replayed > 0 && replayed < 48,
        "a 40% tear should leave a strict non-empty prefix, got {replayed}"
    );
    let receipts = fleet.ingest_batch(&batch).unwrap();
    assert_eq!(
        receipts.iter().filter(|r| r.duplicate).count() as u64,
        replayed,
        "retry must dedup exactly the replayed prefix"
    );
    assert_eq!(fleet.state_digest(), ref_digest);
    assert_eq!(fleet.metrics().reports, 48);
}

/// Durable ingest throughput sanity: WAL-on over in-memory storage stays
/// within an order of magnitude of the plain service (the real numbers
/// live in the bench series; this guards against the write gate
/// accidentally serializing something pathological).
#[test]
fn durable_ingest_completes_a_real_workload() {
    let disk = MemStorage::new();
    let fleet = DurableFleet::open(
        disk,
        fleet_config(),
        DurabilityConfig { snapshot_every: 64 },
    )
    .unwrap();
    for i in 0..512u64 {
        fleet
            .ingest_report(&report(i % 16, (i / 16) as u32, i))
            .unwrap();
    }
    let m = fleet.metrics();
    assert_eq!(m.reports, 512);
    assert_eq!(m.wal_appends, 512);
    assert!(m.snapshots_written >= 7);
    assert!(m.epoch >= 1, "cadence publish never fired");
}
