//! Corruption fuzzing for every decoder on the trust boundary: `XTF1`
//! frames (the network), `XTR1` reports (clients and the WAL), and
//! `XTS1` snapshots (recovery). Valid encodings are generated, then
//! truncated at every (or, for large buffers, many seeded) lengths and
//! byte-mutated at seeded positions. The decoders must **never panic**
//! — these bytes arrive from remote clients and crashed disks — and
//! every rejection must carry a usable diagnostic: either `BadMagic`
//! (the four leading bytes, by value) or a byte offset within the
//! buffer.

use proptest::prelude::*;

use xt_fleet::{FleetConfig, FleetService, FleetSnapshot, Frame, RunReport, WireError};

/// The offset a `WireError` points at, if the variant carries one.
fn error_offset(e: &WireError) -> Option<usize> {
    match e {
        WireError::BadMagic(_) | WireError::RateLimited { .. } => None,
        WireError::Truncated { at }
        | WireError::BadBool { at, .. }
        | WireError::BadProbability { at, .. }
        | WireError::Oversized { at, .. }
        | WireError::BadSiteCount { at, .. }
        | WireError::BadGrid { at, .. }
        | WireError::BadKind { at, .. }
        | WireError::BadUtf8 { at }
        | WireError::Trailing { at, .. } => Some(*at),
    }
}

/// Asserts the decoder's rejection is diagnosable: offset-bearing and
/// in-bounds (`Trailing` points at the end of the valid data, so its
/// offset may equal the length; everything else must be inside).
fn assert_diagnosable(err: &WireError, len: usize) -> Result<(), TestCaseError> {
    if let Some(at) = error_offset(err) {
        prop_assert!(
            at <= len,
            "error offset {at} beyond the {len}-byte buffer: {err:?}"
        );
    }
    Ok(())
}

/// SplitMix64, for seeded corruption positions.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const XS: [f64; 4] = [0.0, 0.25, 0.75, 1.0];

fn obs_strategy() -> impl Strategy<Value = (u32, f64, bool)> {
    (0u32..50, 0usize..XS.len(), any::<bool>()).prop_map(|(site, xi, y)| (site, XS[xi], y))
}

fn report_strategy() -> impl Strategy<Value = RunReport> {
    (
        (any::<u64>(), any::<u32>(), any::<bool>(), any::<u64>()),
        1u32..200,
        proptest::collection::vec(obs_strategy(), 0..6),
        proptest::collection::vec(obs_strategy(), 0..6),
        (
            proptest::collection::vec((0u32..50, 1u32..128), 0..4),
            proptest::collection::vec((0u32..50, 0u32..50, 1u64..100), 0..4),
        ),
    )
        .prop_map(
            |(
                (client, seq, failed, clock),
                n_sites,
                overflow_obs,
                dangling_obs,
                (pads, defers),
            )| {
                RunReport {
                    client,
                    seq,
                    failed,
                    clock,
                    n_sites,
                    overflow_obs,
                    dangling_obs,
                    pad_hints: pads,
                    defer_hints: defers,
                }
            },
        )
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(kind, payload)| Frame::new(kind, payload))
}

/// A real snapshot: reports folded through a real service, published,
/// exported — so the fuzzed bytes carry genuine running-product floats,
/// epoch text, and replay windows, not synthetic approximations.
fn snapshot_strategy() -> impl Strategy<Value = FleetSnapshot> {
    (
        proptest::collection::vec(report_strategy(), 1..10),
        1usize..5,
    )
        .prop_map(|(mut reports, shards)| {
            let service = FleetService::new(FleetConfig {
                shards,
                publish_every: 0,
                ..FleetConfig::default()
            });
            for (i, r) in reports.iter_mut().enumerate() {
                r.seq = i as u32;
                service.ingest_report(r);
            }
            service.publish();
            service.export_snapshot()
        })
}

/// Truncation points to try: exhaustive for small buffers, seeded
/// sampling plus the structurally interesting low offsets for large
/// ones (a snapshot can run to kilobytes; O(len²) over every prefix of
/// every case is fuzz time better spent on more cases).
fn truncation_points(len: usize, seed: u64) -> Vec<usize> {
    if len <= 256 {
        return (0..len).collect();
    }
    let mut points: Vec<usize> = (0..128).collect();
    let mut state = seed;
    points.extend((0..96).map(|_| 128 + (splitmix(&mut state) as usize) % (len - 128)));
    points.push(len - 1);
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn report_round_trips(report in report_strategy()) {
        let bytes = report.encode();
        prop_assert_eq!(RunReport::decode(&bytes).unwrap(), report);
    }

    #[test]
    fn snapshot_round_trips(snapshot in snapshot_strategy()) {
        let bytes = snapshot.encode();
        prop_assert_eq!(FleetSnapshot::decode(&bytes).unwrap(), snapshot);
    }

    #[test]
    fn truncated_reports_always_reject_with_offsets(report in report_strategy()) {
        let bytes = report.encode();
        for len in truncation_points(bytes.len(), 0) {
            let err = RunReport::decode(&bytes[..len])
                .expect_err("a strict prefix decoded as a whole report");
            assert_diagnosable(&err, len)?;
        }
    }

    #[test]
    fn truncated_frames_always_reject_with_offsets(frame in frame_strategy()) {
        let bytes = frame.encode();
        for len in truncation_points(bytes.len(), 0) {
            let err = Frame::decode(&bytes[..len])
                .expect_err("a strict prefix decoded as a whole frame");
            assert_diagnosable(&err, len)?;
        }
    }

    #[test]
    fn truncated_snapshots_always_reject_with_offsets(
        snapshot in snapshot_strategy(),
        seed in any::<u64>(),
    ) {
        let bytes = snapshot.encode();
        for len in truncation_points(bytes.len(), seed) {
            let err = FleetSnapshot::decode(&bytes[..len])
                .expect_err("a strict prefix decoded as a whole snapshot");
            assert_diagnosable(&err, len)?;
        }
    }

    /// Byte mutations: decoders must never panic, and any rejection must
    /// stay diagnosable. (Acceptance is legitimate — flipping bits
    /// inside an `f64` payload can yield another valid value.)
    #[test]
    fn mutated_reports_never_panic(report in report_strategy(), seed in any::<u64>()) {
        let bytes = report.encode();
        let mut state = seed;
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let pos = (splitmix(&mut state) as usize) % corrupt.len();
            let delta = (splitmix(&mut state) % 255) as u8 + 1;
            corrupt[pos] ^= delta;
            if let Err(err) = RunReport::decode(&corrupt) {
                assert_diagnosable(&err, corrupt.len())?;
            }
        }
    }

    #[test]
    fn mutated_frames_never_panic(frame in frame_strategy(), seed in any::<u64>()) {
        let bytes = frame.encode();
        let mut state = seed;
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let pos = (splitmix(&mut state) as usize) % corrupt.len();
            let delta = (splitmix(&mut state) % 255) as u8 + 1;
            corrupt[pos] ^= delta;
            if let Err(err) = Frame::decode(&corrupt) {
                assert_diagnosable(&err, corrupt.len())?;
            }
        }
    }

    #[test]
    fn mutated_snapshots_never_panic(snapshot in snapshot_strategy(), seed in any::<u64>()) {
        let bytes = snapshot.encode();
        let mut state = seed;
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let pos = (splitmix(&mut state) as usize) % corrupt.len();
            let delta = (splitmix(&mut state) % 255) as u8 + 1;
            corrupt[pos] ^= delta;
            if let Err(err) = FleetSnapshot::decode(&corrupt) {
                assert_diagnosable(&err, corrupt.len())?;
            }
        }
    }
}
