//! Service-level convergence laws: sharded, interleaved, at-least-once
//! ingestion is observably equivalent to a sequential fold of the same
//! reports — the property that lets §6.4's collaborative correction run
//! behind any delivery topology. Extends the patch-lattice laws in
//! `xt-patch/tests/properties.rs` one level up the stack.

use proptest::prelude::*;

use xt_fleet::{FleetConfig, FleetService, RunReport};
use xt_isolate::cumulative::CumulativeConfig;
use xt_isolate::evidence::EvidenceTable;
use xt_patch::PatchTable;

/// Observation probabilities drawn from the values cumulative mode
/// actually produces (placement odds at M = 2, canary p = 1/2).
const XS: [f64; 3] = [0.25, 0.5, 0.75];

fn obs_strategy() -> impl Strategy<Value = (u32, f64, bool)> {
    (0u32..10, 0usize..XS.len(), any::<bool>()).prop_map(|(site, xi, y)| (site, XS[xi], y))
}

/// One synthetic run report. `seq` is reassigned by index downstream so
/// distinct reports never collide in the `(client, seq)` dedup key.
fn report_strategy() -> impl Strategy<Value = RunReport> {
    let overflow = proptest::collection::vec(obs_strategy(), 0..5);
    let dangling = proptest::collection::vec(obs_strategy(), 0..5);
    let pads = proptest::collection::vec((0u32..10, 1u32..64), 0..3);
    let defers = proptest::collection::vec((0u32..10, 0u32..10, 1u64..80), 0..3);
    (
        (0u64..5, any::<bool>(), 1u32..80),
        overflow,
        dangling,
        (pads, defers),
    )
        .prop_map(
            |((client, failed, n_sites), overflow_obs, dangling_obs, (pad_hints, defer_hints))| {
                RunReport {
                    client,
                    seq: 0,
                    failed,
                    clock: 1000,
                    n_sites,
                    overflow_obs,
                    dangling_obs,
                    pad_hints,
                    defer_hints,
                }
            },
        )
}

fn reports_strategy() -> impl Strategy<Value = Vec<RunReport>> {
    proptest::collection::vec(report_strategy(), 1..14).prop_map(|mut reports| {
        for (i, r) in reports.iter_mut().enumerate() {
            r.seq = i as u32;
        }
        reports
    })
}

fn service(shards: usize) -> FleetService {
    FleetService::new(FleetConfig {
        shards,
        publish_every: 0,
        ..FleetConfig::default()
    })
}

/// The sequential reference: fold every summary into one evidence table
/// and publish once — no shards, no locks, no interleaving.
fn sequential_patches(reports: &[RunReport]) -> PatchTable {
    let mut table = EvidenceTable::new(CumulativeConfig::default());
    for report in reports {
        table.record_run(&report.to_summary());
    }
    table.generate_patches()
}

/// Deterministic Fisher–Yates driven by a generated seed.
fn shuffled(reports: &[RunReport], seed: u64) -> Vec<RunReport> {
    let mut out = reports.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E_F767_814F);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

fn ingest_all(service: &FleetService, reports: &[RunReport]) {
    for report in reports {
        // Through the wire: the service sees exactly what clients send.
        service
            .ingest(&report.encode())
            .expect("self-encoded report decodes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded ingestion publishes exactly what a sequential fold of the
    /// same reports would, for any shard count.
    #[test]
    fn sharded_matches_sequential(reports in reports_strategy(), shards in 1usize..9) {
        let svc = service(shards);
        ingest_all(&svc, &reports);
        let epoch = svc.publish();
        prop_assert_eq!(&epoch.patches, &sequential_patches(&reports));
        prop_assert_eq!(svc.metrics().reports, reports.len() as u64);
    }

    /// Any two interleavings over any two shard layouts agree: ingestion
    /// is commutative at the service level.
    #[test]
    fn ingestion_is_order_insensitive(
        reports in reports_strategy(),
        seed in 0u64..u64::MAX,
        shards_a in 1usize..9,
        shards_b in 1usize..9,
    ) {
        let a = service(shards_a);
        ingest_all(&a, &reports);
        let b = service(shards_b);
        ingest_all(&b, &shuffled(&reports, seed));
        prop_assert_eq!(a.publish().patches, b.publish().patches);
    }

    /// At-least-once delivery: redelivering any prefix of the reports any
    /// number of times changes nothing (service-level idempotence).
    #[test]
    fn redelivery_is_idempotent(
        reports in reports_strategy(),
        dup_prefix in 1usize..14,
        copies in 1usize..4,
    ) {
        let once = service(4);
        ingest_all(&once, &reports);

        let redelivered = service(4);
        ingest_all(&redelivered, &reports);
        let prefix = dup_prefix.min(reports.len());
        for _ in 0..copies {
            ingest_all(&redelivered, &reports[..prefix]);
        }
        prop_assert_eq!(once.publish().patches, redelivered.publish().patches);
        let m = redelivered.metrics();
        prop_assert_eq!(m.reports, reports.len() as u64);
        prop_assert_eq!(m.duplicates, (prefix * copies) as u64);
    }

    /// Epochs are monotone: publishing mid-stream and again at the end
    /// yields a final epoch that covers the earlier one, and the final
    /// table still matches the sequential fold of everything.
    #[test]
    fn epochs_are_monotone(reports in reports_strategy(), split in 0usize..14) {
        let svc = service(4);
        let split = split.min(reports.len());
        ingest_all(&svc, &reports[..split]);
        let early = svc.publish();
        ingest_all(&svc, &reports[split..]);
        let late = svc.publish();
        prop_assert!(late.number >= early.number);
        prop_assert!(late.covers(&early.patches), "epochs may only grow");
        // Mid-stream publication must not change what ultimately converges
        // (up to entries the early epoch pinned: the join keeps them).
        let mut expected = sequential_patches(&reports);
        expected.merge(&early.patches);
        prop_assert_eq!(&late.patches, &expected);
    }
}
