//! The runtime↔fleet loop closed inside one process (§6.4 end to end):
//! a replicated front-end *detects*, the bridge turns each detection into
//! cumulative-mode evidence over the ordinary wire path, the service
//! *classifies and publishes*, and epochs fan back out to every pool of
//! the front-end — which is thereby healed by patches it never isolated
//! itself.

use exterminator::frontend::{FrontendConfig, PoolFrontend};
use exterminator::pool::PoolConfig;
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_fleet::simulator::verified_corrected;
use xt_fleet::{bridge, FleetConfig, FleetService};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, WorkloadInput};

#[test]
fn frontend_failures_become_epochs_that_heal_the_frontend() {
    let workload = EspressoLike::new();
    let input = WorkloadInput::with_seed(21).intensity(3);
    // The cold-site overflow `demo_faults` finds for this input (hardcoded
    // so the test does not pay the screening search). A pad ≥ the delta
    // corrects an overflow *deterministically* — outputs go back to the
    // reference stream, so the replicated vote turns unanimous again. (A
    // dangling fault is the wrong demo here: the fleet's deferral stops
    // the crashes, but completion-based §6.3 evidence cannot grow a
    // deferral past the point where the voter still sees silent
    // divergence — exactly the error class §3.1 says only voting
    // catches.)
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        trigger: AllocTime::from_raw(239),
    };
    let service = FleetService::new(FleetConfig {
        shards: 4,
        publish_every: 8,
        ..FleetConfig::default()
    });

    std::thread::scope(|scope| {
        // Self-patching off: if this front-end gets healed, the patches
        // can only have come back from the fleet.
        let frontend = PoolFrontend::scoped(
            scope,
            &workload,
            FrontendConfig {
                pools: 2,
                pool: PoolConfig {
                    replicas: 3,
                    auto_patch: false,
                    ..PoolConfig::default()
                },
                share_isolated: false,
                ..FrontendConfig::default()
            },
            PatchTable::new(),
        );

        let mut next_seq = 0u32;
        let mut failures_bridged = 0u32;
        let mut healed = false;
        for _round in 0..40 {
            // Fan the newest epoch out, then serve the faulty input under
            // exactly the table the sync installed.
            bridge::sync_frontend(&service, &frontend);
            let served_under = frontend.patches();
            let out = frontend.submit(&input, Some(fault)).wait();
            if out.outcome.error_observed() {
                // The runtime detected; feed the fleet through the same
                // summarized-run wire path deployed clients use.
                bridge::report_failure(
                    &service,
                    1,
                    next_seq,
                    &workload,
                    &input,
                    Some(fault),
                    &served_under,
                    8,
                    0xF1EE7,
                );
                next_seq += 8;
                failures_bridged += 1;
            } else if !served_under.is_empty()
                && verified_corrected(&workload, &input, fault, &served_under, 4, 0xF1EE7)
            {
                // This round ran cleanly under a fleet-fed table that
                // independent probes verify corrects the fault (§6.3):
                // the front-end was healed by patches it never isolated.
                healed = true;
                break;
            }
        }
        assert!(
            failures_bridged >= 1,
            "the fault never manifested in the front-end"
        );
        assert!(
            healed,
            "fleet epochs never healed the front-end (reports: {}, epoch: {}, bridged: {failures_bridged})",
            service.metrics().reports,
            service.latest().number
        );
        assert!(frontend.epoch() >= 1, "epoch never fanned out");
        assert!(
            frontend.patches().pads().any(|(_, pad)| pad >= 20),
            "overflow correction must be a pad covering the 20-byte delta"
        );
        frontend.shutdown();
    });
}
