//! Runtime patches (paper §6): the output of error isolation and the input
//! of the correcting allocator.
//!
//! A patch is not code — it is a pair of tables keyed by the 32-bit
//! call-site hashes of §3.2:
//!
//! * the **pad table** maps an allocation site to the number of extra bytes
//!   the correcting allocator must add to requests from that site, which
//!   contains any (finite, forward) overflow the site produces;
//! * the **deferral table** maps an (allocation site, deallocation site)
//!   pair to a number of allocation-clock ticks by which frees of such
//!   objects are delayed, which prevents premature reuse through dangling
//!   pointers.
//!
//! Patches *compose*: taking the per-key maximum of two patch tables yields
//! a table that corrects every error either one corrects (§6.4,
//! "collaborative correction"). [`PatchTable::merge`] implements exactly
//! that join, making patch tables a lattice; the property tests verify the
//! lattice laws.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{SiteHash, SitePair};
//! use xt_patch::PatchTable;
//!
//! let mut mine = PatchTable::new();
//! mine.add_pad(SiteHash::from_raw(0xAA), 6);
//! let mut yours = PatchTable::new();
//! yours.add_pad(SiteHash::from_raw(0xAA), 4);
//! yours.add_deferral(
//!     SitePair::new(SiteHash::from_raw(1), SiteHash::from_raw(2)),
//!     21,
//! );
//! mine.merge(&yours);
//! assert_eq!(mine.pad_for(SiteHash::from_raw(0xAA)), 6); // max wins
//! assert_eq!(mine.len(), 2);
//!
//! // Round-trips through the on-disk format.
//! let text = mine.to_text();
//! assert_eq!(PatchTable::from_text(&text).unwrap(), mine);
//! ```

mod report;

pub use report::{render_bug_report, SiteNames};

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use xt_alloc::{SiteHash, SitePair};

/// Magic first line of the patch file format.
const HEADER: &str = "# exterminator runtime patches v1";

/// A set of runtime patches: pad table plus deferral table.
///
/// See the [crate docs](self) for the semantics. Entries only ever grow
/// (max-merge), mirroring §6.1: "If a runtime patch has already been
/// generated for a given allocation site, Exterminator uses the maximum
/// padding value encountered so far."
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchTable {
    pads: BTreeMap<SiteHash, u32>,
    deferrals: BTreeMap<SitePair, u64>,
}

impl PatchTable {
    /// Creates an empty patch table.
    #[must_use]
    pub fn new() -> Self {
        PatchTable::default()
    }

    /// Total number of patch entries (pads + deferrals).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pads.len() + self.deferrals.len()
    }

    /// `true` if no patches are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pads.is_empty() && self.deferrals.is_empty()
    }

    /// Records that allocations from `site` need at least `pad` extra
    /// bytes. Keeps the maximum of all recorded values.
    ///
    /// Returns `true` if the table changed.
    pub fn add_pad(&mut self, site: SiteHash, pad: u32) -> bool {
        if pad == 0 {
            return false;
        }
        let entry = self.pads.entry(site).or_insert(0);
        if pad > *entry {
            *entry = pad;
            true
        } else {
            false
        }
    }

    /// Records that frees of objects allocated at `pair.alloc` and freed at
    /// `pair.free` must be deferred by at least `ticks` allocations. Keeps
    /// the maximum.
    ///
    /// Returns `true` if the table changed.
    pub fn add_deferral(&mut self, pair: SitePair, ticks: u64) -> bool {
        if ticks == 0 {
            return false;
        }
        let entry = self.deferrals.entry(pair).or_insert(0);
        if ticks > *entry {
            *entry = ticks;
            true
        } else {
            false
        }
    }

    /// Pad (extra bytes) for allocations from `site`; zero if unpatched.
    #[must_use]
    pub fn pad_for(&self, site: SiteHash) -> u32 {
        self.pads.get(&site).copied().unwrap_or(0)
    }

    /// Deferral (clock ticks) for frees matching `pair`; zero if unpatched.
    #[must_use]
    pub fn deferral_for(&self, pair: SitePair) -> u64 {
        self.deferrals.get(&pair).copied().unwrap_or(0)
    }

    /// Iterates over `(site, pad)` entries in site order.
    pub fn pads(&self) -> impl Iterator<Item = (SiteHash, u32)> + '_ {
        self.pads.iter().map(|(&s, &p)| (s, p))
    }

    /// Iterates over `(pair, ticks)` entries in pair order.
    pub fn deferrals(&self) -> impl Iterator<Item = (SitePair, u64)> + '_ {
        self.deferrals.iter().map(|(&p, &d)| (p, d))
    }

    /// Collaborative correction (§6.4): folds `other` into `self` by taking
    /// the per-key maximum. The result corrects every error either input
    /// corrects.
    ///
    /// Returns `true` if the table changed — the per-entry maxima already
    /// know, so callers that need change detection (e.g. versioned shared
    /// tables) get it without cloning and comparing whole tables.
    pub fn merge(&mut self, other: &PatchTable) -> bool {
        let mut changed = false;
        for (&site, &pad) in &other.pads {
            changed |= self.add_pad(site, pad);
        }
        for (&pair, &ticks) in &other.deferrals {
            changed |= self.add_deferral(pair, ticks);
        }
        changed
    }

    /// Merges any number of patch tables — the collaborative-correction
    /// utility the paper describes for combining patches "generated by
    /// multiple users".
    #[must_use]
    pub fn merged<'a>(tables: impl IntoIterator<Item = &'a PatchTable>) -> PatchTable {
        let mut out = PatchTable::new();
        for t in tables {
            out.merge(t);
        }
        out
    }

    /// Folds a *newly isolated* patch set into the currently applied one,
    /// **escalating** deferrals instead of maxing them.
    ///
    /// This implements the iteration of §6.2: once a deferral is applied,
    /// the dangled object's *recorded* deallocation time moves to the
    /// deferred point, so a re-isolated deferral is measured from there.
    /// Summing (`applied + new`) makes the total extension grow
    /// geometrically across rounds — "Exterminator will compute a correct
    /// patch in a logarithmic number of executions" — whereas taking the
    /// maximum (right for combining *independent* users' patches, §6.4)
    /// would plateau. Pads still merge by maximum: they are measured from
    /// the object base, which patching does not shift.
    pub fn escalate(&mut self, newly_isolated: &PatchTable) {
        for (site, pad) in newly_isolated.pads() {
            self.add_pad(site, pad);
        }
        for (pair, ticks) in newly_isolated.deferrals() {
            let total = self.deferral_for(pair).saturating_add(ticks);
            self.add_deferral(pair, total);
        }
    }

    /// Serializes to the textual patch-file format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (site, pad) in &self.pads {
            out.push_str(&format!("pad {:08x} {pad}\n", site.raw()));
        }
        for (pair, ticks) in &self.deferrals {
            out.push_str(&format!(
                "defer {:08x} {:08x} {ticks}\n",
                pair.alloc.raw(),
                pair.free.raw()
            ));
        }
        out
    }

    /// Parses the textual patch-file format produced by
    /// [`PatchTable::to_text`]. Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`PatchParseError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, PatchParseError> {
        let mut table = PatchTable::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let fail = |reason: &str| PatchParseError {
                line: lineno + 1,
                content: raw_line.to_string(),
                reason: reason.to_string(),
            };
            match fields.as_slice() {
                ["pad", site, pad] => {
                    let site = u32::from_str_radix(site, 16).map_err(|_| fail("bad site hash"))?;
                    let pad: u32 = pad.parse().map_err(|_| fail("bad pad value"))?;
                    table.add_pad(SiteHash::from_raw(site), pad);
                }
                ["defer", alloc, free, ticks] => {
                    let alloc =
                        u32::from_str_radix(alloc, 16).map_err(|_| fail("bad alloc site hash"))?;
                    let free =
                        u32::from_str_radix(free, 16).map_err(|_| fail("bad free site hash"))?;
                    let ticks: u64 = ticks.parse().map_err(|_| fail("bad deferral value"))?;
                    table.add_deferral(
                        SitePair::new(SiteHash::from_raw(alloc), SiteHash::from_raw(free)),
                        ticks,
                    );
                }
                _ => return Err(fail("unrecognized directive")),
            }
        }
        Ok(table)
    }

    /// Writes the patch file at `path` (§3.4: patches are stored so
    /// subsequent executions start corrected).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_text())
    }

    /// Loads a patch file previously written by [`PatchTable::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; parse failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A malformed patch file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatchParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line, verbatim.
    pub content: String,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for PatchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "patch file line {}: {}: {:?}",
            self.line, self.reason, self.content
        )
    }
}

impl Error for PatchParseError {}

/// A versioned snapshot of merged patches: what an aggregation service
/// publishes and what clients poll by number (§6.4 at fleet scale).
///
/// Epoch numbers are assigned by the publisher and must be accompanied by
/// *monotone* tables: epoch `n + 1`'s table is the lattice join of epoch
/// `n`'s table with newly isolated patches, so any client holding any
/// older epoch is corrected by every newer one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchEpoch {
    /// Monotonically increasing epoch number (0 = the empty pre-publish
    /// epoch).
    pub number: u64,
    /// The merged patch table as of this epoch.
    pub patches: PatchTable,
}

impl PatchEpoch {
    /// The initial, empty epoch every client starts from.
    #[must_use]
    pub fn genesis() -> Self {
        PatchEpoch::default()
    }

    /// The successor epoch: joins `newly_isolated` into this epoch's
    /// table. The result covers everything this epoch covered.
    #[must_use]
    pub fn succeed(&self, newly_isolated: &PatchTable) -> Self {
        let mut patches = self.patches.clone();
        patches.merge(newly_isolated);
        PatchEpoch {
            number: self.number + 1,
            patches,
        }
    }

    /// `true` if this epoch's table covers every entry of `other` (the
    /// lattice partial order collaborative correction relies on).
    #[must_use]
    pub fn covers(&self, other: &PatchTable) -> bool {
        other
            .pads()
            .all(|(site, pad)| self.patches.pad_for(site) >= pad)
            && other
                .deferrals()
                .all(|(pair, ticks)| self.patches.deferral_for(pair) >= ticks)
    }

    /// Serializes epoch number plus table in the patch-file format (the
    /// epoch rides in a structured comment, so any patch-file consumer
    /// can read the table).
    #[must_use]
    pub fn to_text(&self) -> String {
        format!("# epoch {}\n{}", self.number, self.patches.to_text())
    }

    /// Parses text produced by [`PatchEpoch::to_text`]. The epoch header
    /// is only recognized on the *first* line (where `to_text` writes
    /// it); everywhere else `# epoch ...` is an ordinary comment, and
    /// plain patch files without a header parse as epoch 0.
    ///
    /// # Errors
    ///
    /// Returns a [`PatchParseError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, PatchParseError> {
        let mut number = 0;
        if let Some(line) = text.lines().next() {
            if let Some(rest) = line.trim().strip_prefix("# epoch ") {
                number = rest.trim().parse().map_err(|_| PatchParseError {
                    line: 1,
                    content: line.to_string(),
                    reason: "bad epoch number".to_string(),
                })?;
            }
        }
        Ok(PatchEpoch {
            number,
            patches: PatchTable::from_text(text)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> SiteHash {
        SiteHash::from_raw(n)
    }

    fn pair(a: u32, f: u32) -> SitePair {
        SitePair::new(site(a), site(f))
    }

    #[test]
    fn pads_keep_maximum() {
        let mut t = PatchTable::new();
        assert!(t.add_pad(site(1), 6));
        assert!(!t.add_pad(site(1), 4), "smaller pad is a no-op");
        assert!(t.add_pad(site(1), 9));
        assert_eq!(t.pad_for(site(1)), 9);
        assert_eq!(t.pad_for(site(2)), 0);
    }

    #[test]
    fn zero_entries_are_ignored() {
        let mut t = PatchTable::new();
        assert!(!t.add_pad(site(1), 0));
        assert!(!t.add_deferral(pair(1, 2), 0));
        assert!(t.is_empty());
    }

    #[test]
    fn deferrals_keyed_by_site_pair() {
        let mut t = PatchTable::new();
        t.add_deferral(pair(1, 2), 21);
        assert_eq!(t.deferral_for(pair(1, 2)), 21);
        assert_eq!(t.deferral_for(pair(2, 1)), 0, "order matters");
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = PatchTable::new();
        a.add_pad(site(1), 6);
        a.add_deferral(pair(1, 2), 10);
        let mut b = PatchTable::new();
        b.add_pad(site(1), 3);
        b.add_pad(site(2), 8);
        b.add_deferral(pair(1, 2), 40);
        a.merge(&b);
        assert_eq!(a.pad_for(site(1)), 6);
        assert_eq!(a.pad_for(site(2)), 8);
        assert_eq!(a.deferral_for(pair(1, 2)), 40);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merged_combines_many_users() {
        let tables: Vec<PatchTable> = (1..=5u32)
            .map(|i| {
                let mut t = PatchTable::new();
                t.add_pad(site(i % 2), i);
                t
            })
            .collect();
        let all = PatchTable::merged(&tables);
        assert_eq!(all.pad_for(site(0)), 4);
        assert_eq!(all.pad_for(site(1)), 5);
    }

    #[test]
    fn escalate_sums_deferrals_but_maxes_pads() {
        let mut applied = PatchTable::new();
        applied.add_pad(site(1), 6);
        applied.add_deferral(pair(1, 2), 100);
        let mut isolated = PatchTable::new();
        isolated.add_pad(site(1), 4);
        isolated.add_deferral(pair(1, 2), 45);
        isolated.add_deferral(pair(3, 4), 7);
        applied.escalate(&isolated);
        assert_eq!(applied.pad_for(site(1)), 6, "pads stay maxed");
        assert_eq!(applied.deferral_for(pair(1, 2)), 145, "deferrals compound");
        assert_eq!(applied.deferral_for(pair(3, 4)), 7, "new pairs start fresh");
    }

    #[test]
    fn text_round_trip() {
        let mut t = PatchTable::new();
        t.add_pad(site(0xdeadbeef), 6);
        t.add_pad(site(7), 36);
        t.add_deferral(pair(0xaa, 0xbb), 21);
        let parsed = PatchTable::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parser_tolerates_comments_and_blanks() {
        let text = "# comment\n\n  pad 0000000a 5\n# more\ndefer 1 2 3\n";
        let t = PatchTable::from_text(text).unwrap();
        assert_eq!(t.pad_for(site(10)), 5);
        assert_eq!(t.deferral_for(pair(1, 2)), 3);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = PatchTable::from_text("pad 1 2\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn parse_errors_carry_the_offending_line() {
        let err = PatchTable::from_text("pad 1 6\n  pad zz 5\ndefer 1 2 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.content, "  pad zz 5", "verbatim line, not trimmed");
        let msg = err.to_string();
        assert!(
            msg.contains("line 2") && msg.contains("bad site hash") && msg.contains("pad zz 5"),
            "message must name line, reason, and content: {msg}"
        );
        let err = PatchTable::from_text("pad 1 6\ndefer 1 2 oops").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("defer 1 2 oops"));
    }

    #[test]
    fn parser_rejects_bad_fields() {
        assert!(PatchTable::from_text("pad zz 5").is_err());
        assert!(PatchTable::from_text("pad 1 -2").is_err());
        assert!(PatchTable::from_text("defer 1 2").is_err());
    }

    #[test]
    fn epoch_succession_is_monotone_and_round_trips() {
        let mut isolated = PatchTable::new();
        isolated.add_pad(site(1), 6);
        let e1 = PatchEpoch::genesis().succeed(&isolated);
        assert_eq!(e1.number, 1);
        let mut more = PatchTable::new();
        more.add_pad(site(1), 3); // smaller: join keeps 6
        more.add_deferral(pair(2, 3), 50);
        let e2 = e1.succeed(&more);
        assert_eq!(e2.number, 2);
        assert_eq!(e2.patches.pad_for(site(1)), 6);
        assert!(e2.covers(&e1.patches), "epochs only grow");
        assert!(e2.covers(&more));
        assert!(!e1.covers(&e2.patches));
        let parsed = PatchEpoch::from_text(&e2.to_text()).unwrap();
        assert_eq!(parsed, e2);
        // A plain patch file reads as epoch 0.
        let plain = PatchEpoch::from_text(&e2.patches.to_text()).unwrap();
        assert_eq!(plain.number, 0);
        assert_eq!(plain.patches, e2.patches);
        // A corrupt epoch line is a parse error naming the line.
        let err = PatchEpoch::from_text("# epoch banana\n").unwrap_err();
        assert!(err.to_string().contains("bad epoch number"), "{err}");
        // Past line 1, "# epoch ..." is an ordinary comment, not a header.
        let commented = PatchEpoch::from_text("pad 1 6\n# epoch notes: merged by hand\n").unwrap();
        assert_eq!(commented.number, 0);
        assert_eq!(commented.patches.pad_for(site(1)), 6);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("xt_patch_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("patches.txt");
        let mut t = PatchTable::new();
        t.add_pad(site(3), 12);
        t.save(&path).unwrap();
        assert_eq!(PatchTable::load(&path).unwrap(), t);
        fs::remove_file(&path).unwrap();
    }
}
