//! Bug reports from runtime patches — the paper's §9 future work:
//! "we plan to develop a tool to process runtime patches into bug reports
//! with suggested fixes."
//!
//! A pad entry encodes *where* (the allocation site's calling-context
//! hash) and *how much* (the overflow extent); a deferral entry encodes
//! the (allocation, deallocation) pair and the measured prematurity. That
//! is enough to draft an actionable report, especially when a symbol map
//! from site hashes to human names is available.

use std::collections::HashMap;
use std::fmt::Write as _;

use xt_alloc::SiteHash;

use crate::PatchTable;

/// Optional symbolication: maps site hashes to human-readable names
/// (function names, file:line, workload labels).
#[derive(Clone, Debug, Default)]
pub struct SiteNames {
    names: HashMap<SiteHash, String>,
}

impl SiteNames {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        SiteNames::default()
    }

    /// Registers a name for a site.
    pub fn insert(&mut self, site: SiteHash, name: impl Into<String>) {
        self.names.insert(site, name.into());
    }

    /// Renders a site: its name if known, the raw hash otherwise.
    #[must_use]
    pub fn render(&self, site: SiteHash) -> String {
        match self.names.get(&site) {
            Some(name) => format!("{name} ({site})"),
            None => site.to_string(),
        }
    }
}

/// Renders a patch table as a bug report with suggested fixes.
///
/// # Example
///
/// ```
/// use xt_alloc::SiteHash;
/// use xt_patch::{render_bug_report, PatchTable, SiteNames};
///
/// let mut patches = PatchTable::new();
/// patches.add_pad(SiteHash::from_raw(0xAB), 6);
/// let mut names = SiteNames::new();
/// names.insert(SiteHash::from_raw(0xAB), "store_entry (cache.c:217)");
/// let report = render_bug_report(&patches, &names);
/// assert!(report.contains("buffer overflow"));
/// assert!(report.contains("cache.c:217"));
/// assert!(report.contains("6 byte"));
/// ```
#[must_use]
pub fn render_bug_report(patches: &PatchTable, names: &SiteNames) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BUG REPORT — generated from Exterminator runtime patches"
    );
    let _ = writeln!(
        out,
        "{} error(s): {} buffer overflow(s), {} dangling pointer(s)\n",
        patches.len(),
        patches.pads().count(),
        patches.deferrals().count()
    );
    for (i, (site, pad)) in patches.pads().enumerate() {
        let _ = writeln!(out, "[O{i}] HEAP BUFFER OVERFLOW");
        let _ = writeln!(out, "  allocation site: {}", names.render(site));
        let _ = writeln!(
            out,
            "  evidence: objects from this site overflow their allocation by up to {pad} byte(s)."
        );
        let _ = writeln!(
            out,
            "  suggested fix: the size computed at this allocation site is at least {pad} \
             byte(s) short of what the code writes. Either grow the request by {pad} byte(s) \
             or fix the write loop / length computation that runs past the end."
        );
        let _ = writeln!(
            out,
            "  applied mitigation: the correcting allocator pads every allocation from this \
             site by {pad} byte(s), which contains the overflow.\n"
        );
    }
    for (i, (pair, ticks)) in patches.deferrals().enumerate() {
        // The iterative patch is 2×(T−τ)+1, so the measured prematurity is
        // at least (ticks − 1) / 2 allocations.
        let prematurity = ticks.saturating_sub(1) / 2;
        let _ = writeln!(out, "[D{i}] DANGLING POINTER (premature free)");
        let _ = writeln!(out, "  allocation site:   {}", names.render(pair.alloc));
        let _ = writeln!(out, "  deallocation site: {}", names.render(pair.free));
        let _ = writeln!(
            out,
            "  evidence: objects with this allocation/deallocation pair are still used at \
             least {prematurity} allocation(s) after being freed."
        );
        let _ = writeln!(
            out,
            "  suggested fix: move the free at the deallocation site after the last use of \
             the object, or clear the remaining references before freeing."
        );
        let _ = writeln!(
            out,
            "  applied mitigation: the correcting allocator defers frees from this pair by \
             {ticks} allocation(s).\n"
        );
    }
    if patches.is_empty() {
        let _ = writeln!(out, "no errors recorded — nothing to report.");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::SitePair;

    fn site(n: u32) -> SiteHash {
        SiteHash::from_raw(n)
    }

    #[test]
    fn empty_report_says_so() {
        let report = render_bug_report(&PatchTable::new(), &SiteNames::new());
        assert!(report.contains("nothing to report"));
        assert!(report.contains("0 error(s)"));
    }

    #[test]
    fn overflow_report_contains_pad_and_fix() {
        let mut patches = PatchTable::new();
        patches.add_pad(site(0xAA), 36);
        let report = render_bug_report(&patches, &SiteNames::new());
        assert!(report.contains("HEAP BUFFER OVERFLOW"));
        assert!(report.contains("36 byte(s)"));
        assert!(report.contains("suggested fix"));
        assert!(report.contains("site:000000aa"));
    }

    #[test]
    fn dangling_report_recovers_prematurity() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(site(1), site(2)), 21); // 2×10+1
        let report = render_bug_report(&patches, &SiteNames::new());
        assert!(report.contains("DANGLING POINTER"));
        assert!(report.contains("at least 10 allocation(s)"));
        assert!(report.contains("defers frees from this pair by 21"));
    }

    #[test]
    fn symbolication_is_used_when_available() {
        let mut patches = PatchTable::new();
        patches.add_pad(site(7), 6);
        let mut names = SiteNames::new();
        names.insert(site(7), "storeEntry (store.c:421)");
        let report = render_bug_report(&patches, &names);
        assert!(report.contains("storeEntry (store.c:421)"));
    }

    #[test]
    fn report_counts_both_kinds() {
        let mut patches = PatchTable::new();
        patches.add_pad(site(1), 4);
        patches.add_pad(site(2), 8);
        patches.add_deferral(SitePair::new(site(3), site(4)), 9);
        let report = render_bug_report(&patches, &SiteNames::new());
        assert!(report.contains("3 error(s): 2 buffer overflow(s), 1 dangling pointer(s)"));
    }
}
