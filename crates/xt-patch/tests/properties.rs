//! Property tests: the patch-table merge is a join-semilattice, and the
//! text format round-trips — the guarantees collaborative correction
//! (§6.4) rests on.

use proptest::prelude::*;

use xt_alloc::{SiteHash, SitePair};
use xt_patch::PatchTable;

fn table_strategy() -> impl Strategy<Value = PatchTable> {
    let pads = proptest::collection::vec((0u32..64, 1u32..5000), 0..12);
    let defers = proptest::collection::vec(((0u32..64, 0u32..64), 1u64..100_000), 0..12);
    (pads, defers).prop_map(|(pads, defers)| {
        let mut t = PatchTable::new();
        for (site, pad) in pads {
            t.add_pad(SiteHash::from_raw(site), pad);
        }
        for ((a, f), ticks) in defers {
            t.add_deferral(
                SitePair::new(SiteHash::from_raw(a), SiteHash::from_raw(f)),
                ticks,
            );
        }
        t
    })
}

fn merged(a: &PatchTable, b: &PatchTable) -> PatchTable {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// Merge is commutative: users can exchange patches in any order.
    #[test]
    fn merge_commutes(a in table_strategy(), b in table_strategy()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merge is associative: any gossip topology converges.
    #[test]
    fn merge_associates(a in table_strategy(), b in table_strategy(), c in table_strategy()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// Merge is idempotent: re-applying a patch file changes nothing.
    #[test]
    fn merge_idempotent(a in table_strategy()) {
        prop_assert_eq!(merged(&a, &a), a);
    }

    /// Merge only grows protection: every pad/deferral in either input is
    /// covered (≥) in the output — "the result ... covers all observed
    /// errors".
    #[test]
    fn merge_is_monotone(a in table_strategy(), b in table_strategy()) {
        let m = merged(&a, &b);
        for (site, pad) in a.pads().chain(b.pads()) {
            prop_assert!(m.pad_for(site) >= pad);
        }
        for (pair, ticks) in a.deferrals().chain(b.deferrals()) {
            prop_assert!(m.deferral_for(pair) >= ticks);
        }
    }

    /// The empty table is the identity.
    #[test]
    fn empty_is_identity(a in table_strategy()) {
        prop_assert_eq!(merged(&a, &PatchTable::new()), a.clone());
        prop_assert_eq!(merged(&PatchTable::new(), &a), a);
    }

    /// Text serialization round-trips exactly.
    #[test]
    fn text_round_trips(a in table_strategy()) {
        prop_assert_eq!(PatchTable::from_text(&a.to_text()).unwrap(), a);
    }

    /// Escalation dominates merge: the compounded deferral is always at
    /// least what a plain merge would give, and pads are identical.
    #[test]
    fn escalate_dominates_merge(a in table_strategy(), b in table_strategy()) {
        let plain = merged(&a, &b);
        let mut esc = a.clone();
        esc.escalate(&b);
        for (site, pad) in plain.pads() {
            prop_assert_eq!(esc.pad_for(site), pad);
        }
        for (pair, ticks) in plain.deferrals() {
            prop_assert!(esc.deferral_for(pair) >= ticks);
        }
    }
}
