//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p xt-analyze --release -- --deny [--root PATH] [--report PATH]
//! ```
//!
//! Prints the findings report (including the pragma-justification
//! inventory) to stdout and, with `--report`, writes the same bytes to a
//! file for CI artifact upload. With `--deny`, exits 1 when any
//! unsuppressed finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage("--report needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Find the workspace root: the given root, or the nearest ancestor
    // containing `crates/` (so the binary works from a crate directory).
    let mut ws = root.clone();
    while !ws.join("crates").is_dir() {
        if !ws.pop() {
            eprintln!("xt-analyze: no `crates/` directory found under or above {root:?}");
            return ExitCode::from(2);
        }
    }

    let analysis = match xt_analyze::analyze_workspace(&ws) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xt-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = analysis.render();
    print!("{rendered}");
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, &rendered) {
            eprintln!("xt-analyze: cannot write report to {p:?}: {e}");
            return ExitCode::from(2);
        }
    }
    if deny && !analysis.is_clean() {
        eprintln!(
            "xt-analyze: {} unsuppressed finding(s) — failing (--deny)",
            analysis.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("xt-analyze: {err}");
    }
    eprintln!("usage: xt-analyze [--deny] [--root PATH] [--report PATH]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
