//! The determinism rule family: hash iteration, wall-clock reads, and
//! observation identifiers inside deterministic-surface functions.
//!
//! Hash typing is name-based: struct fields (workspace-wide) and `let`
//! bindings whose declared/constructed type names `HashMap`/`HashSet`
//! classify their names as **hash** (iterating the name iterates a hash
//! container) or **wrapped** (the hash container sits inside another
//! container, e.g. `Vec<Mutex<HashMap<..>>>`, so iterating the name
//! itself is deterministic but its *elements* are hash containers —
//! loop variables over a wrapped name become hash-classified).

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::model::{Field, SourceFile};
use crate::report::{Finding, Rule};
use crate::surface::{FnKey, Surface};

const ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "keys", "values", "into_iter", "drain"];

/// Type wrappers that are transparent for hash classification.
const TRANSPARENT: [&str; 10] = [
    "Arc", "Rc", "Box", "Mutex", "RwLock", "Option", "Cell", "RefCell", "mut", "dyn",
];

/// How a name relates to hash containers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HashClass {
    /// The name *is* a hash container (possibly behind Arc/Mutex/...).
    Hash,
    /// The name is a non-hash container whose elements are hash
    /// containers.
    Wrapped,
}

/// Classifies a field type text (tokens joined by spaces).
fn classify_ty(ty: &str) -> Option<HashClass> {
    if !ty.contains("HashMap") && !ty.contains("HashSet") {
        return None;
    }
    for word in ty.split_whitespace() {
        if word == "HashMap" || word == "HashSet" {
            return Some(HashClass::Hash);
        }
        if word.chars().next().is_some_and(|c| c.is_alphabetic())
            && !TRANSPARENT.contains(&word)
            && word != "&"
        {
            // First substantive type name is not a hash container and
            // not transparent: the hash sits inside it.
            return Some(HashClass::Wrapped);
        }
    }
    None
}

/// Workspace-wide hash-classified field names.
pub struct HashNames {
    hash: BTreeSet<String>,
    wrapped: BTreeSet<String>,
}

pub fn collect_hash_fields(files: &[SourceFile]) -> HashNames {
    let mut hash = BTreeSet::new();
    let mut wrapped = BTreeSet::new();
    for file in files {
        for Field { name, ty } in &file.fields {
            match classify_ty(ty) {
                Some(HashClass::Hash) => {
                    hash.insert(name.clone());
                }
                Some(HashClass::Wrapped) => {
                    wrapped.insert(name.clone());
                }
                None => {}
            }
        }
    }
    HashNames { hash, wrapped }
}

/// Runs hash-iter and time-source over every deterministic-surface
/// function.
pub fn determinism_rules(
    files: &[SourceFile],
    surface: &Surface,
    hash_fields: &HashNames,
    out: &mut Vec<Finding>,
) {
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            let key: FnKey = (fi, gi);
            if f.is_test || !surface.contains(key) {
                continue;
            }
            hash_iter_fn(file, f.sig.clone(), f.body.clone(), hash_fields, out);
            time_source_fn(file, f.body.clone(), out);
        }
    }
}

/// Per-function hash-iter scan: seeds local hash names from `let`
/// statements and loop variables, then flags iteration methods whose
/// receiver chain mentions a hash name and `for` loops directly over a
/// hash name.
fn hash_iter_fn(
    file: &SourceFile,
    sig: std::ops::Range<usize>,
    body: std::ops::Range<usize>,
    globals: &HashNames,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let mut hash: BTreeSet<String> = globals.hash.clone();
    let mut wrapped: BTreeSet<String> = globals.wrapped.clone();

    // Pass 0: parameters. `m: &HashMap<..>` classifies `m` exactly like
    // a field would — split the parameter list on top-level commas and
    // classify each `name: ty` segment.
    if let Some(open) = (sig.start..sig.end).find(|&k| toks[k].is_punct('(')) {
        let classify_seg =
            |a: usize, b: usize, hash: &mut BTreeSet<String>, wrapped: &mut BTreeSet<String>| {
                let Some(colon) = (a..b).find(|&k| toks[k].is_punct(':')) else {
                    return;
                };
                let Some(name) = (a..colon)
                    .rev()
                    .find(|&k| toks[k].kind == TokKind::Ident)
                    .map(|k| toks[k].text.clone())
                else {
                    return;
                };
                let text: Vec<&str> = (colon + 1..b).map(|k| toks[k].text.as_str()).collect();
                match classify_ty(&text.join(" ")) {
                    Some(HashClass::Hash) => {
                        hash.insert(name);
                    }
                    Some(HashClass::Wrapped) => {
                        wrapped.insert(name);
                    }
                    None => {}
                }
            };
        let mut depth = 1usize;
        let mut angle = 0usize;
        let mut seg_start = open + 1;
        let mut j = open + 1;
        while j < sig.end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    classify_seg(seg_start, j, &mut hash, &mut wrapped);
                    break;
                }
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 && !toks[j - 1].is_punct('-') {
                angle -= 1;
            } else if t.is_punct(',') && depth == 1 && angle == 0 {
                classify_seg(seg_start, j, &mut hash, &mut wrapped);
                seg_start = j + 1;
            }
            j += 1;
        }
    }

    // Pass 1: local bindings. `let x ... = ... HashMap/HashSet ... ;`
    // classifies `x`; `for x in <expr naming a wrapped name>` makes `x`
    // hash (the element of a wrapped container is the hash container).
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        if t.is_ident("let") {
            // Binding pattern: idents up to the `:` type annotation or
            // `=` at paren depth 0.
            let mut names = Vec::new();
            let mut j = i + 1;
            let mut depth = 0usize;
            while j < body.end {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && (t.is_punct(':') || t.is_punct('=') || t.is_punct(';')) {
                    break;
                } else if t.kind == TokKind::Ident
                    && !TRANSPARENT.contains(&t.text.as_str())
                    && t.text != "Some"
                    && t.text != "Ok"
                    && t.text != "Err"
                {
                    names.push(t.text.clone());
                }
                j += 1;
            }
            let stmt_end = statement_end(toks, j, body.end);
            let mentions_hash_ty =
                (j..stmt_end).any(|k| toks[k].is_ident("HashMap") || toks[k].is_ident("HashSet"));
            if mentions_hash_ty {
                // Type/RHS position decides hash vs wrapped.
                let text: Vec<&str> = (j..stmt_end)
                    .filter(|&k| toks[k].kind == TokKind::Ident)
                    .map(|k| toks[k].text.as_str())
                    .collect();
                let class = classify_ty(&text.join(" ")).unwrap_or(HashClass::Hash);
                for n in &names {
                    match class {
                        HashClass::Hash => {
                            hash.insert(n.clone());
                        }
                        HashClass::Wrapped => {
                            wrapped.insert(n.clone());
                        }
                    }
                }
            } else {
                // No explicit hash type, but the RHS mentions a
                // hash-classified name (e.g. the guard of a locked
                // shard): the binding inherits the class.
                let inherits = (j..stmt_end)
                    .any(|k| toks[k].kind == TokKind::Ident && hash.contains(&toks[k].text));
                if inherits {
                    for n in &names {
                        hash.insert(n.clone());
                    }
                }
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("for") {
            // Collect loop-pattern names up to `in`, then the iterated
            // expression up to `{`.
            let mut names = Vec::new();
            let mut j = i + 1;
            while j < body.end && !toks[j].is_ident("in") {
                if toks[j].kind == TokKind::Ident {
                    names.push(toks[j].text.clone());
                }
                j += 1;
            }
            let expr_start = j + 1;
            let mut k = expr_start;
            let mut depth = 0usize;
            while k < body.end {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct('{') {
                    break;
                }
                k += 1;
            }
            let over_wrapped = (expr_start..k)
                .any(|m| toks[m].kind == TokKind::Ident && wrapped.contains(&toks[m].text));
            if over_wrapped {
                for n in &names {
                    hash.insert(n.clone());
                }
            }
            i = expr_start;
            continue;
        }
        i += 1;
    }

    // Pass 2: flag iteration sites. A mention counts unless it is a
    // self-qualified access to a *wrapped* field (`self.seen` where
    // `seen: Vec<Mutex<HashMap<..>>>`): iterating the outer container is
    // deterministic, and `self.` can only mean the field even when a
    // local (e.g. a loop variable over the shards) shadows the name.
    let counts = |k: usize| -> bool {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !hash.contains(&t.text) {
            return false;
        }
        let self_qualified = k >= 2 && toks[k - 1].is_punct('.') && toks[k - 2].is_ident("self");
        !(self_qualified && wrapped.contains(&t.text))
    };
    let mut flagged_lines = BTreeSet::new();
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        // `.iter()` family whose receiver chain mentions a hash name.
        if i > body.start
            && t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let start = chain_start(toks, i - 1, body.start);
            let mentions = (start..i - 1).find(|&k| counts(k));
            if let Some(k) = mentions {
                if flagged_lines.insert(t.line) {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: t.line,
                        offset: t.offset,
                        rule: Rule::HashIter,
                        message: format!(
                            "hash-container iteration (`{}` via `.{}()`) in a \
                             deterministic-surface function — iteration order is \
                             nondeterministic",
                            toks[k].text, t.text
                        ),
                    });
                }
            }
        }
        // `for x in <expr over a hash name>`.
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < body.end && !toks[j].is_ident("in") {
                j += 1;
            }
            let expr_start = j + 1;
            let mut k = expr_start;
            let mut depth = 0usize;
            while k < body.end {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct('{') {
                    break;
                }
                k += 1;
            }
            let mention = (expr_start..k.min(body.end)).find(|&m| counts(m));
            if let Some(m) = mention {
                let site = &toks[m];
                if flagged_lines.insert(site.line) {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: site.line,
                        offset: site.offset,
                        rule: Rule::HashIter,
                        message: format!(
                            "`for` loop over hash container `{}` in a \
                             deterministic-surface function — iteration order is \
                             nondeterministic",
                            site.text
                        ),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Start of the postfix chain whose final `.` is at `dot` — same shape
/// as the lock receiver walk but tolerant of intermediate calls.
fn chain_start(toks: &[Tok], dot: usize, floor: usize) -> usize {
    let mut j = dot;
    loop {
        if j <= floor {
            return j;
        }
        let k = j - 1;
        let elem_start = if toks[k].is_punct(')') || toks[k].is_punct(']') {
            let mut depth = 0usize;
            let mut b = k;
            loop {
                if toks[b].is_punct(')') || toks[b].is_punct(']') {
                    depth += 1;
                } else if toks[b].is_punct('(') || toks[b].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if b == floor {
                    break;
                }
                b -= 1;
            }
            // A call or index: the ident before the group belongs to the
            // same chain element.
            if b > floor && toks[b - 1].kind == TokKind::Ident {
                b -= 1;
            }
            b
        } else if toks[k].kind == TokKind::Ident || toks[k].kind == TokKind::Num {
            k
        } else {
            return j;
        };
        j = elem_start;
        if j > floor && toks[j - 1].is_punct('.') {
            j -= 1;
            continue;
        }
        return j;
    }
}

fn statement_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(';') {
            return i;
        }
        i += 1;
    }
    end
}

/// Wall-clock and thread-identity reads inside a surface function.
fn time_source_fn(file: &SourceFile, body: std::ops::Range<usize>, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                offset: t.offset,
                rule: Rule::TimeSource,
                message: "`Instant::now()` in a deterministic-surface function — timing must \
                          stay observation-only"
                    .to_string(),
            });
        } else if t.is_ident("SystemTime") {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                offset: t.offset,
                rule: Rule::TimeSource,
                message: "`SystemTime` in a deterministic-surface function — wall-clock values \
                          must not reach deterministic output"
                    .to_string(),
            });
        } else if t.is_ident("current")
            && i >= body.start + 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
            && (i..body.end.min(i + 8)).any(|k| toks[k].is_ident("id"))
        {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                offset: t.offset,
                rule: Rule::TimeSource,
                message: "`thread::current().id()` in a deterministic-surface function — \
                          thread identity is scheduling-dependent"
                    .to_string(),
            });
        }
        i += 1;
    }
}

/// The observation-only rule: no identifier imported from `xt-obs`, and
/// no access to an obs-typed field, inside a deterministic-surface
/// function (signature included). `xt-obs` itself is exempt.
pub fn observation_rule(files: &[SourceFile], surface: &Surface, out: &mut Vec<Finding>) {
    for (fi, file) in files.iter().enumerate() {
        if file.crate_name == "xt-obs" {
            continue;
        }
        // Field names declared in *this* file whose type names one of
        // this file's xt-obs imports (e.g. `publish_hist: Histogram`).
        // Scoped per file so a count field that happens to be called
        // `obs` elsewhere doesn't collide.
        let mut obs_fields: BTreeSet<&str> = BTreeSet::new();
        for Field { name, ty } in &file.fields {
            if ty.split_whitespace().any(|w| file.obs_imports.contains(w)) {
                obs_fields.insert(name.as_str());
            }
        }
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test || !surface.contains((fi, gi)) {
                continue;
            }
            let mut flagged = BTreeSet::new();
            let range = f.sig.start..f.body.end.max(f.sig.end);
            for k in range {
                let t = &file.toks[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let imported = file.obs_imports.contains(&t.text);
                let field_access =
                    k > 0 && file.toks[k - 1].is_punct('.') && obs_fields.contains(t.text.as_str());
                if (imported || field_access) && flagged.insert((t.line, t.text.clone())) {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: t.line,
                        offset: t.offset,
                        rule: Rule::ObsInDet,
                        message: format!(
                            "`{}` ({}) in a deterministic-surface function — metrics are \
                             observation-only and must not reach deterministic output",
                            t.text,
                            if imported {
                                "imported from xt-obs"
                            } else {
                                "obs-typed field"
                            }
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;
    use crate::surface;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| parse_file(p, s)).collect();
        let surf = surface::compute(&files);
        let hash = collect_hash_fields(&files);
        let mut out = Vec::new();
        determinism_rules(&files, &surf, &hash, &mut out);
        observation_rule(&files, &surf, &mut out);
        out
    }

    #[test]
    fn hash_iter_in_digest_flagged() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn deterministic_digest(&self) -> u128 {
                let mut counts: HashMap<u64, u64> = HashMap::new();
                for (k, v) in counts.iter() { }
                0
            }
            "#,
        )]);
        assert!(out.iter().any(|f| f.rule == Rule::HashIter), "{out:?}");
    }

    #[test]
    fn hash_iter_outside_surface_is_fine() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            "fn routing(&self) { let m: HashMap<u64, u64> = HashMap::new(); m.iter(); }",
        )]);
        assert!(out.is_empty());
    }

    #[test]
    fn vec_of_mutex_hashmap_field_iteration_is_fine_but_elements_flag() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            r#"
            struct S { seen: Vec<Mutex<HashMap<u64, W>>> }
            fn export_snapshot(&self) {
                for shard in self.seen.iter() {
                    let m = shard.lock().unwrap_or_else(PoisonError::into_inner);
                    for (k, v) in m.iter() { }
                }
            }
            "#,
        )]);
        // Exactly one finding: the inner map iteration, not the Vec walk.
        let hash: Vec<&Finding> = out.iter().filter(|f| f.rule == Rule::HashIter).collect();
        assert_eq!(hash.len(), 1, "{out:?}");
        assert!(hash[0].message.contains('m') || hash[0].message.contains("shard"));
    }

    #[test]
    fn btreemap_iteration_is_always_fine() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            "fn encode(&self) { let m: BTreeMap<u64, u64> = BTreeMap::new(); for x in m.iter() {} }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn time_sources_in_surface_flagged() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn publish(&self) {
                let t = Instant::now();
                let s = SystemTime::now();
                let id = thread::current().id();
            }
            fn routing(&self) { let t = Instant::now(); }
            "#,
        )]);
        let ts: Vec<&Finding> = out.iter().filter(|f| f.rule == Rule::TimeSource).collect();
        assert_eq!(ts.len(), 3, "{out:?}");
    }

    #[test]
    fn obs_import_in_surface_flagged() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            r#"
            use xt_obs::Histogram;
            struct S { publish_hist: Histogram, plain: u64 }
            fn publish(&self) { self.publish_hist.record(1); let x = self.plain; }
            fn routing(&self, h: &Histogram) { }
            "#,
        )]);
        let obs: Vec<&Finding> = out.iter().filter(|f| f.rule == Rule::ObsInDet).collect();
        assert_eq!(obs.len(), 1, "{out:?}");
        assert!(obs[0].message.contains("publish_hist"));
    }

    #[test]
    fn reachable_callee_inherits_surface() {
        let out = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn state_digest(&self) -> u128 { self.walk() }
            fn walk(&self) -> u128 { let m: HashSet<u64> = HashSet::new(); for x in m.iter() {} 0 }
            "#,
        )]);
        assert!(out.iter().any(|f| f.rule == Rule::HashIter), "{out:?}");
    }
}
