//! `xt-analyze` — the workspace static-analysis pass that enforces the
//! three house invariants at CI time:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `hash-iter` | `HashMap`/`HashSet` iteration (`iter`/`iter_mut`/`keys`/`values`/`into_iter`/`drain`, and `for` loops) inside a deterministic-surface function — iteration order would leak scheduler/seed nondeterminism into pinned bytes |
//! | `time-source` | `Instant::now()`, `SystemTime`, or `thread::current().id()` inside a deterministic-surface function — timing and thread identity must stay observation-only |
//! | `lock-order` | a cycle in the static lock-order graph built from every `Mutex`/`RwLock` acquisition across the workspace — a potential ABBA deadlock |
//! | `lock-poison` | `.lock()`/`.read()`/`.write()` (or a condvar `.wait(..)`) whose `Result` is consumed by bare `.unwrap()`/`.expect(..)` in non-test code instead of the `PoisonError::into_inner` recovery idiom |
//! | `obs-in-det` | any identifier imported from `xt-obs`, or any obs-typed field access, inside a deterministic-surface function — metrics never feed outcome bytes |
//! | `bad-pragma` | a malformed `xt-analyze:` pragma (never suppressible) |
//!
//! # The deterministic surface
//!
//! A function is on the surface when its name or enclosing module
//! matches the seed vocabulary in [`surface::SURFACE_SEEDS`]
//! (`digest`, `fold`, `encode`, `to_text`, `publish`, `snapshot`,
//! `outcome`, `canonical`) — unless the name is observation-exempt
//! ([`surface::OBSERVATION_EXEMPT`]: `metrics`, `counters`, `health`,
//! `stats`, `observability`) — plus everything transitively callable
//! from a seeded function. To extend the surface when a new byte-pinned
//! encoder appears, either name it with one of the seed substrings
//! (preferred — the convention is self-enforcing) or add a new seed to
//! `SURFACE_SEEDS` with a test in `surface.rs`.
//!
//! # Pragmas
//!
//! A finding is suppressed only by an inline pragma on the same or the
//! preceding line:
//!
//! ```text
//! // xt-analyze: allow(hash-iter) -- entries are sorted before encoding
//! ```
//!
//! The justification after `--` is mandatory; a pragma without one (or
//! naming an unknown rule) is itself a `bad-pragma` finding, and
//! `bad-pragma` cannot be allowed away. Every pragma is listed in the
//! report's justification inventory with whether it actually suppressed
//! anything, so stale pragmas are visible.
//!
//! # Running
//!
//! ```text
//! cargo run -p xt-analyze --release -- --deny [--root PATH] [--report PATH]
//! ```
//!
//! `--deny` exits non-zero on any unsuppressed finding; CI runs it on
//! every push and uploads the report artifact. The same analysis is
//! available as a library via [`analyze_sources`] (used by the fixture
//! tests) and [`analyze_workspace`].
//!
//! Like `crates/proptest` and `crates/criterion`, the crate is a
//! dependency-free offline stand-in: a hand-rolled lexer and token-level
//! scanners, no `syn`, no rustc plugin, no network.

pub mod lexer;
pub mod locks;
pub mod model;
pub mod report;
pub mod rules;
pub mod surface;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use model::SourceFile;
pub use report::{Analysis, Finding, PragmaUse, Rule};

/// Analyzes in-memory `(path, source)` pairs — the library entry point
/// the fixture tests use. Paths should look workspace-relative
/// (`crates/<name>/src/...`) so crate attribution works.
pub fn analyze_sources(sources: &[(String, String)]) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| model::parse_file(p, s))
        .collect();
    analyze_files(files)
}

/// Walks `root/crates/*/src/**/*.rs` (sorted, so the scan order — and
/// therefore the report — is deterministic) and analyzes the workspace.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();
    let mut sources = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(&p)?));
    }
    Ok(analyze_sources(&sources))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Tracks which pragmas suppressed something, for the inventory.
struct Suppressor {
    /// (path, line, rules, justification, used)
    pragmas: Vec<(String, u32, Vec<Rule>, String, bool)>,
}

impl Suppressor {
    fn new(files: &[SourceFile]) -> Suppressor {
        let mut pragmas = Vec::new();
        for file in files {
            for p in &file.pragmas {
                pragmas.push((
                    file.path.clone(),
                    p.line,
                    p.rules.clone(),
                    p.justification.clone(),
                    false,
                ));
            }
        }
        Suppressor { pragmas }
    }

    /// `true` (and marks the pragma used) when a pragma on the finding's
    /// line or the line above allows its rule.
    fn suppresses(&mut self, path: &str, line: u32, rule: Rule) -> bool {
        if !rule.suppressible() {
            return false;
        }
        let mut hit = false;
        for (p_path, p_line, rules, _, used) in &mut self.pragmas {
            if p_path == path && (*p_line == line || *p_line + 1 == line) && rules.contains(&rule) {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    fn into_inventory(self) -> Vec<PragmaUse> {
        self.pragmas
            .into_iter()
            .map(|(path, line, rules, justification, used)| PragmaUse {
                path,
                line,
                rules,
                justification,
                used,
            })
            .collect()
    }
}

/// The full pipeline over parsed files: surface → rules → lock pass →
/// pragma application → cycle detection → sorted report.
fn analyze_files(files: Vec<SourceFile>) -> Analysis {
    let surf = surface::compute(&files);
    let hash_fields = rules::collect_hash_fields(&files);

    let mut raw: Vec<Finding> = Vec::new();
    rules::determinism_rules(&files, &surf, &hash_fields, &mut raw);
    rules::observation_rule(&files, &surf, &mut raw);
    let lock = locks::analyze(&files);
    raw.extend(lock.poison);
    for file in &files {
        for e in &file.pragma_errors {
            raw.push(Finding {
                path: file.path.clone(),
                line: e.line,
                offset: e.offset,
                rule: Rule::BadPragma,
                message: format!("malformed xt-analyze pragma: {}", e.reason),
            });
        }
    }

    let mut supp = Suppressor::new(&files);
    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };

    // Lock-order edges are pragma-filtered *before* cycle detection, so
    // one justified edge removes the whole reported inversion instead of
    // requiring a pragma at every edge of the cycle.
    let kept_edges: Vec<locks::Edge> = lock
        .edges
        .into_iter()
        .filter(|e| !supp.suppresses(&e.path, e.line, Rule::LockOrder))
        .collect();
    raw.extend(locks::cycle_findings(&kept_edges));

    for f in raw {
        if supp.suppresses(&f.path, f.line, f.rule) {
            analysis.suppressed.push(f);
        } else {
            analysis.findings.push(f);
        }
    }
    analysis.pragmas = supp.into_inventory();
    analysis.finalize();
    analysis
}

/// Convenience for tests: the distinct rules present in a finding list.
pub fn rules_hit(findings: &[Finding]) -> BTreeSet<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, body: &str) -> (String, String) {
        (path.to_string(), body.to_string())
    }

    #[test]
    fn pragma_suppresses_and_is_counted() {
        let a = analyze_sources(&[src(
            "crates/d/src/lib.rs",
            r#"
            fn encode(&self) {
                let m: HashMap<u64, u64> = HashMap::new();
                // xt-analyze: allow(hash-iter) -- sorted into a Vec before use
                for x in m.iter() {}
            }
            "#,
        )]);
        assert!(a.is_clean(), "{:?}", a.findings);
        assert_eq!(a.suppressed.len(), 1);
        assert_eq!(a.pragmas.len(), 1);
        assert!(a.pragmas[0].used);
        assert_eq!(a.pragmas[0].justification, "sorted into a Vec before use");
    }

    #[test]
    fn missing_justification_is_bad_pragma() {
        let a = analyze_sources(&[src(
            "crates/d/src/lib.rs",
            "// xt-analyze: allow(hash-iter)\nfn f() {}",
        )]);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, Rule::BadPragma);
    }

    #[test]
    fn bad_pragma_cannot_be_allowed_away() {
        let a = analyze_sources(&[src(
            "crates/d/src/lib.rs",
            "// xt-analyze: allow(bad-pragma) -- nice try\nfn f() {}",
        )]);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, Rule::BadPragma);
        assert!(a.findings[0].message.contains("cannot be suppressed"));
    }

    #[test]
    fn unused_pragma_is_inventoried_as_unused() {
        let a = analyze_sources(&[src(
            "crates/d/src/lib.rs",
            "// xt-analyze: allow(hash-iter) -- no longer needed\nfn f() {}",
        )]);
        assert!(a.is_clean());
        assert_eq!(a.pragmas.len(), 1);
        assert!(!a.pragmas[0].used);
        assert!(a.render().contains("[UNUSED]"));
    }

    #[test]
    fn lock_order_pragma_removes_the_cycle() {
        let body = r#"
            fn ab(&self) {
                let g = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
            }
            fn ba(&self) {
                let g = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
                // xt-analyze: allow(lock-order) -- beta->alpha only at shutdown, single-threaded
                let h = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
            }
        "#;
        let a = analyze_sources(&[src("crates/d/src/lib.rs", body)]);
        assert!(a.is_clean(), "{:?}", a.findings);
        assert!(a.pragmas[0].used);
    }

    #[test]
    fn findings_sorted_by_path_line_rule() {
        let a = analyze_sources(&[
            src(
                "crates/b/src/lib.rs",
                "fn encode(&self) { let t = Instant::now(); let m: HashMap<u8,u8> = HashMap::new(); m.iter(); }",
            ),
            src(
                "crates/a/src/lib.rs",
                "fn digest(&self) { let s = SystemTime::now(); }",
            ),
        ]);
        let keys: Vec<(&str, Rule)> = a
            .findings
            .iter()
            .map(|f| (f.path.as_str(), f.rule))
            .collect();
        assert_eq!(
            keys,
            [
                ("crates/a/src/lib.rs", Rule::TimeSource),
                ("crates/b/src/lib.rs", Rule::HashIter),
                ("crates/b/src/lib.rs", Rule::TimeSource),
            ]
        );
    }
}
