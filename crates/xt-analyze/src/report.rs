//! Findings, suppression accounting, and the rendered report.

use std::fmt;

/// The rule families the analyzer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` iteration inside a deterministic-surface
    /// function.
    HashIter,
    /// `Instant::now`/`SystemTime`/`thread::current().id()` inside a
    /// deterministic-surface function.
    TimeSource,
    /// A cycle in the static lock-order graph.
    LockOrder,
    /// `.lock().unwrap()`/`.expect(` in non-test service code without
    /// `PoisonError::into_inner` recovery.
    LockPoison,
    /// An identifier imported from `xt-obs` inside a
    /// deterministic-surface function.
    ObsInDet,
    /// A malformed `xt-analyze:` pragma (not suppressible).
    BadPragma,
}

impl Rule {
    pub const ALL: [Rule; 6] = [
        Rule::HashIter,
        Rule::TimeSource,
        Rule::LockOrder,
        Rule::LockPoison,
        Rule::ObsInDet,
        Rule::BadPragma,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::TimeSource => "time-source",
            Rule::LockOrder => "lock-order",
            Rule::LockPoison => "lock-poison",
            Rule::ObsInDet => "obs-in-det",
            Rule::BadPragma => "bad-pragma",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// `bad-pragma` is the one rule a pragma cannot silence.
    pub fn suppressible(self) -> bool {
        self != Rule::BadPragma
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic. Ordering is the pinned report order:
/// (path, line, rule, offset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub offset: u32,
    pub rule: Rule,
    pub message: String,
}

impl Finding {
    fn sort_key(&self) -> (&str, u32, Rule, u32) {
        (&self.path, self.line, self.rule, self.offset)
    }
}

/// A pragma that participated in the run, with whether it actually
/// suppressed anything (unused pragmas are reported so stale
/// suppressions get cleaned up).
#[derive(Clone, Debug)]
pub struct PragmaUse {
    pub path: String,
    pub line: u32,
    pub rules: Vec<Rule>,
    pub justification: String,
    pub used: bool,
}

/// The full result of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (path, line, rule, offset).
    pub findings: Vec<Finding>,
    /// Findings silenced by a pragma, same ordering.
    pub suppressed: Vec<Finding>,
    /// Every pragma seen, with its justification and use count.
    pub pragmas: Vec<PragmaUse>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Sorts all finding lists into the pinned deterministic order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.findings.dedup();
        self.suppressed
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.suppressed.dedup();
        self.pragmas
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The human/CI report: findings first, then the pragma-justification
    /// inventory, then a summary line. Byte-stable run-to-run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("xt-analyze report\n=================\n\n");
        if self.findings.is_empty() {
            out.push_str("no unsuppressed findings\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!(
                    "{}:{} [{}] (byte {}) {}\n",
                    f.path, f.line, f.rule, f.offset, f.message
                ));
            }
        }
        out.push_str(&format!(
            "\npragma inventory ({} total)\n---------------------------\n",
            self.pragmas.len()
        ));
        for p in &self.pragmas {
            let rules: Vec<&str> = p.rules.iter().map(|r| r.name()).collect();
            out.push_str(&format!(
                "{}:{} allow({}) {} -- {}\n",
                p.path,
                p.line,
                rules.join(","),
                if p.used { "[used]" } else { "[UNUSED]" },
                p.justification
            ));
        }
        out.push_str(&format!(
            "\n{} file(s) scanned, {} finding(s), {} suppressed, {} pragma(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.pragmas.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
        assert!(!Rule::BadPragma.suppressible());
    }

    #[test]
    fn finalize_orders_by_path_line_rule_offset() {
        let f = |path: &str, line: u32, rule: Rule, offset: u32| Finding {
            path: path.to_string(),
            line,
            offset,
            rule,
            message: String::new(),
        };
        let mut a = Analysis {
            findings: vec![
                f("b.rs", 1, Rule::HashIter, 0),
                f("a.rs", 9, Rule::TimeSource, 5),
                f("a.rs", 9, Rule::HashIter, 9),
                f("a.rs", 2, Rule::ObsInDet, 1),
            ],
            ..Analysis::default()
        };
        a.finalize();
        let got: Vec<(&str, u32, Rule)> = a
            .findings
            .iter()
            .map(|f| (f.path.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            got,
            [
                ("a.rs", 2, Rule::ObsInDet),
                ("a.rs", 9, Rule::HashIter),
                ("a.rs", 9, Rule::TimeSource),
                ("b.rs", 1, Rule::HashIter),
            ]
        );
    }

    #[test]
    fn render_is_stable_and_lists_pragmas() {
        let mut a = Analysis::default();
        a.pragmas.push(PragmaUse {
            path: "x.rs".to_string(),
            line: 3,
            rules: vec![Rule::HashIter],
            justification: "sorted before encoding".to_string(),
            used: true,
        });
        a.files_scanned = 1;
        a.finalize();
        let r1 = a.render();
        let r2 = a.render();
        assert_eq!(r1, r2);
        assert!(r1.contains("no unsuppressed findings"));
        assert!(r1.contains("allow(hash-iter) [used] -- sorted before encoding"));
    }
}
