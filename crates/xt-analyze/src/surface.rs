//! Deterministic-surface computation: which functions must stay free of
//! nondeterminism.
//!
//! A function is **seeded** onto the surface when its name (or its
//! enclosing module's name) contains one of [`SURFACE_SEEDS`] — the
//! digest/outcome/snapshot/encode vocabulary the workspace uses for
//! byte-pinned output. Names matching [`OBSERVATION_EXEMPT`] are
//! excluded: `metrics_snapshot` and friends are observation surfaces by
//! design and may read clocks. The full surface is the seed set plus
//! every workspace function transitively callable from it, resolved by
//! bare name over the token streams (a deliberate over-approximation —
//! see the stoplist below for how ubiquitous names are kept from gluing
//! the whole graph together).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::model::SourceFile;

/// Substrings that seed a function (or module) onto the deterministic
/// surface. Extend this list when a new byte-pinned surface appears —
/// see the crate docs.
pub const SURFACE_SEEDS: &[&str] = &[
    "digest",
    "fold",
    "encode",
    "to_text",
    "publish",
    "snapshot",
    "outcome",
    "canonical",
    // The event-loop server's incremental frame parser: the bytes a
    // partially-buffered connection cuts into frames must be classified
    // identically on every replica of the same stream, so the prefix
    // parser sits on the deterministic surface with the whole-buffer
    // decoders it mirrors.
    "parse_prefix",
];

/// Name substrings that mark an *observation* surface: these may match a
/// seed (`metrics_snapshot`) but are exempt — timing and metrics are
/// their whole point, and by the house rule their output never feeds a
/// digest.
pub const OBSERVATION_EXEMPT: &[&str] =
    &["metrics", "counters", "health", "stats", "observability"];

/// Method/function names never treated as workspace-call edges: they are
/// ubiquitous (std prelude, iterator adapters, channel/thread APIs) and
/// resolving them by bare name would glue every function to every other.
pub(crate) const CALL_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "drop",
    "fmt",
    "from",
    "into",
    "eq",
    "ne",
    "hash",
    "cmp",
    "partial_cmp",
    "next",
    "get",
    "get_mut",
    "insert",
    "push",
    "pop",
    "remove",
    "contains",
    "contains_key",
    "extend",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "ok_or",
    "ok_or_else",
    "filter",
    "collect",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "drain",
    "wait",
    "wait_timeout",
    "notify_one",
    "notify_all",
    "send",
    "recv",
    "try_recv",
    "join",
    "spawn",
    "flush",
    "write",
    "write_all",
    "read",
    "read_exact",
    "lock",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "clamp",
    "min",
    "max",
    "abs",
    "take",
    "replace",
    "swap",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "binary_search",
    "position",
    "find",
    "any",
    "all",
    "count",
    "sum",
    "product",
    "zip",
    "rev",
    "chain",
    "enumerate",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "starts_with",
    "ends_with",
    "split",
    "trim",
    "parse",
    "format",
    "print",
    "println",
    "eprintln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "matches",
    "vec",
    "with_capacity",
    "reserve",
    "truncate",
    "clear",
    "resize",
    "copy_from_slice",
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "wrapping_add",
    "wrapping_mul",
    "rotate_left",
    "rotate_right",
    "saturating_sub",
    "saturating_add",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "open",
    "close",
    "path",
    "exists",
    "create",
];

/// A function key: (file index in the scan, function index in the file).
pub type FnKey = (usize, usize);

/// The computed surface: which functions are deterministic-surface, and
/// why (for diagnostics).
pub struct Surface {
    members: BTreeSet<FnKey>,
}

impl Surface {
    pub fn contains(&self, key: FnKey) -> bool {
        self.members.contains(&key)
    }
}

/// `true` if `name` contains a surface seed and is not observation-exempt.
pub fn is_seed_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if OBSERVATION_EXEMPT.iter().any(|e| lower.contains(e)) {
        return false;
    }
    SURFACE_SEEDS.iter().any(|s| lower.contains(s))
}

/// `true` if `name` is observation-exempt (blocks both seeding and
/// propagation *into* the function).
fn is_exempt_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    OBSERVATION_EXEMPT.iter().any(|e| lower.contains(e))
}

/// Computes the deterministic surface over all files: seed by name, then
/// close over workspace calls (BFS).
pub fn compute(files: &[SourceFile]) -> Surface {
    // Name → all workspace functions with that name. Bare-name
    // resolution over-approximates, which is the safe direction for a
    // lint; the stoplist keeps it from degenerating.
    let mut by_name: BTreeMap<&str, Vec<FnKey>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
    }

    let mut members: BTreeSet<FnKey> = BTreeSet::new();
    let mut queue: Vec<FnKey> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test || is_exempt_name(&f.name) {
                continue;
            }
            let module_seeded = f
                .module
                .split("::")
                .any(|m| is_seed_name(m) && !is_exempt_name(m));
            if (is_seed_name(&f.name) || module_seeded) && members.insert((fi, gi)) {
                queue.push((fi, gi));
            }
        }
    }

    while let Some((fi, gi)) = queue.pop() {
        let file = &files[fi];
        let f = &file.functions[gi];
        for callee in callees(file, f.body.clone()) {
            if CALL_STOPLIST.contains(&callee) || is_exempt_name(callee) {
                continue;
            }
            if let Some(targets) = by_name.get(callee) {
                for &t in targets {
                    if t != (fi, gi) && members.insert(t) {
                        queue.push(t);
                    }
                }
            }
        }
    }

    Surface { members }
}

/// Called names inside a token range: an identifier immediately followed
/// by `(`, excluding macro invocations (`name!`) and definitions
/// (`fn name(`).
fn callees(file: &SourceFile, range: std::ops::Range<usize>) -> BTreeSet<&str> {
    let toks = &file.toks;
    let mut out = BTreeSet::new();
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > range.start && toks[i - 1].is_ident("fn"))
        {
            out.insert(t.text.as_str());
        }
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            // Macro: skip the name so `println!(...)` is not a call edge.
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn surface_names(files: &[SourceFile]) -> Vec<String> {
        let s = compute(files);
        let mut names = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                if s.contains((fi, gi)) {
                    names.push(f.name.clone());
                }
            }
        }
        names
    }

    #[test]
    fn seeds_by_name_and_module() {
        let files = vec![parse_file(
            "crates/demo/src/lib.rs",
            r#"
            pub fn deterministic_digest() -> u128 { mix(0) }
            fn mix(h: u128) -> u128 { h }
            fn unrelated() {}
            mod snapshot {
                pub fn restore() {}
            }
            "#,
        )];
        let names = surface_names(&files);
        assert!(names.contains(&"deterministic_digest".to_string()));
        assert!(names.contains(&"mix".to_string()), "callee closure");
        assert!(names.contains(&"restore".to_string()), "module seeding");
        assert!(!names.contains(&"unrelated".to_string()));
    }

    #[test]
    fn observation_names_are_exempt() {
        let files = vec![parse_file(
            "crates/demo/src/lib.rs",
            "pub fn metrics_snapshot() -> u64 { 0 }\npub fn health_digest() {}",
        )];
        assert!(surface_names(&files).is_empty());
    }

    #[test]
    fn stoplist_blocks_ubiquitous_names() {
        let files = vec![parse_file(
            "crates/demo/src/lib.rs",
            "pub fn encode(v: &[u8]) { v.iter(); }\npub fn iter() {}",
        )];
        let names = surface_names(&files);
        assert!(names.contains(&"encode".to_string()));
        assert!(!names.contains(&"iter".to_string()));
    }

    #[test]
    fn tests_never_join_the_surface() {
        let files = vec![parse_file(
            "crates/demo/src/lib.rs",
            "#[cfg(test)]\nmod tests { fn digest_helper() {} }",
        )];
        assert!(surface_names(&files).is_empty());
    }
}
