//! A minimal Rust lexer: just enough structure for the rule passes.
//!
//! Produces a flat token stream (identifiers, single-character
//! punctuation, literals) plus the line comments, each carrying its
//! source line and byte offset so diagnostics can point at the exact
//! site. Deliberately not a parser: the scanners in
//! [`model`](crate::model) pattern-match over this stream, the same
//! offline stand-in approach as `crates/proptest`/`crates/criterion` —
//! no `syn`, no compiler plugin, no network.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `publish`, ...).
    Ident,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String literal (raw/byte included); text is not retained.
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier/punctuation text; empty for string literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Byte offset into the file.
    pub offset: u32,
}

impl Tok {
    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `//` line comment (doc comments included), whole line text.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub offset: u32,
}

/// Lexes `src` into tokens and line comments. Never panics on malformed
/// input — unterminated literals simply run to end of file.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    offset: start as u32,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, rustc-style.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (ni, nl) = skip_string(b, i, line);
                toks.push(tok(TokKind::Str, "", line, i));
                line = nl;
                i = ni;
            }
            b'r' | b'b' if raw_or_byte_string(b, i).is_some() => {
                let (kind, ni, nl) = raw_or_byte_string(b, i).expect("checked above");
                toks.push(tok(kind, "", line, i));
                line = nl;
                i = ni;
            }
            b'\'' => {
                // Lifetime or char literal. A backslash or a
                // single-char-then-quote shape means char.
                if b.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 3; // skip quote, backslash, escaped char
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    toks.push(tok(TokKind::Char, "", line, i));
                    i = (j + 1).min(b.len());
                } else if is_ident_start(b.get(i + 1).copied().unwrap_or(0))
                    && b.get(i + 2) != Some(&b'\'')
                {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    toks.push(tok(TokKind::Lifetime, &src[i..j], line, i));
                    i = j;
                } else {
                    // 'x' or an odd quote: consume to the closing quote.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                        j += 1;
                    }
                    toks.push(tok(TokKind::Char, "", line, i));
                    i = if j < b.len() && b[j] == b'\'' {
                        j + 1
                    } else {
                        j
                    };
                }
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(tok(TokKind::Ident, &src[i..j], line, i));
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (is_ident_continue(b[j])) {
                    j += 1;
                }
                // A fraction: `1.5`, but not the range `1..5` or a method
                // call on a literal.
                if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                    j += 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                }
                toks.push(tok(TokKind::Num, &src[i..j], line, i));
                i = j;
            }
            _ => {
                toks.push(tok(TokKind::Punct, &src[i..i + 1], line, i));
                i += 1;
            }
        }
    }
    (toks, comments)
}

fn tok(kind: TokKind, text: &str, line: u32, offset: usize) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        offset: offset as u32,
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Skips a plain `"..."` string starting at `i`; returns (next index,
/// line after the literal).
fn skip_string(b: &[u8], i: usize, mut line: u32) -> (usize, u32) {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, line),
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, line)
}

/// Recognizes `r"..."`, `r#"..."#` (any number of `#`), `b"..."`,
/// `br#"..."#`, and `b'x'` starting at `i`. Returns `(kind, next index,
/// next line)` or `None` if the prefix is just an identifier.
fn raw_or_byte_string(b: &[u8], i: usize) -> Option<(TokKind, usize, u32)> {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None;
        }
        j += 1;
        let mut lines = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                lines += 1;
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((TokKind::Str, k, lines));
                }
            }
            j += 1;
        }
        Some((TokKind::Str, j, lines))
    } else if b[i] == b'b' && j < b.len() && b[j] == b'"' {
        let (nj, _) = skip_string(b, j, 0);
        Some((TokKind::Str, nj, 0))
    } else if b[i] == b'b' && j < b.len() && b[j] == b'\'' {
        let mut k = j + 1;
        if k < b.len() && b[k] == b'\\' {
            k += 2;
        }
        while k < b.len() && b[k] != b'\'' {
            k += 1;
        }
        Some((TokKind::Char, (k + 1).min(b.len()), 0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_positions() {
        let (toks, comments) = lex("fn foo() { x.iter(); } // xt-analyze: note\n");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "foo", "x", "iter"]);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("xt-analyze"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].offset, 0);
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_derail() {
        let src = "let s = r#\"quote \" inside\"#; fn f<'a>(x: &'a str) -> char { 'x' }";
        let (toks, _) = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("char")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn multiline_strings_keep_line_numbers_right() {
        let src = "let s = \"line\nbreak\";\nfn g() {}";
        let (toks, _) = lex(src);
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let (toks, _) = lex("0..10 1.5e3 0xFF_u32 x.0");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e3", "0xFF_u32", "0"]);
    }
}
