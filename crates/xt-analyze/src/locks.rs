//! Lock-discipline analysis: the static lock-order graph and the
//! poison-recovery lint.
//!
//! Acquisitions are recognized syntactically — `recv.lock()`,
//! `recv.read()`, `recv.write()` with **empty** argument lists (io
//! `read`/`write` always take a buffer, so the empty parens
//! discriminate). The receiver chain is resolved to a lock name: the
//! last plain field access before any method call, so
//! `self.shards.get(i).expect(..)` names `shards` and
//! `self.slot.cell.lock()` names `cell`. A receiver that is just a
//! function parameter stays symbolic ([`LockId::Param`]) and is
//! substituted with the caller's argument at each call site — that is
//! how guard-returning helpers like `lock_recovering(&self.publish_lock)`
//! keep per-lock identity instead of collapsing into one node.
//!
//! Edges `A → B` are recorded when a guard for `A` is provably held
//! (bound by `let` with only `unwrap`/`expect`/`unwrap_or_else` chained
//! after the acquisition, not yet dropped or scope-closed) at a point
//! that acquires `B` — directly or through a workspace call whose
//! transitive acquire set is non-empty. Cycles among the concrete nodes
//! are reported as `lock-order` findings, one per participating edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::model::SourceFile;
use crate::report::{Finding, Rule};
use crate::surface::CALL_STOPLIST;

/// A lock identity during analysis.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockId {
    /// A named lock field, qualified by crate.
    Concrete { krate: String, name: String },
    /// "Whatever lock the caller passes as parameter `i`."
    Param(usize),
}

/// One directed lock-order edge with its source site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: u32,
    pub offset: u32,
}

/// Result of the lock pass: raw order edges (cycle detection happens
/// after pragma filtering) and poison-lint findings.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    pub edges: Vec<Edge>,
    pub poison: Vec<Finding>,
}

const ACQ_METHODS: [&str; 3] = ["lock", "read", "write"];
const RECOVERY_CHAIN: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

fn is_acq_at(toks: &[Tok], i: usize) -> bool {
    i > 0
        && toks[i].kind == TokKind::Ident
        && ACQ_METHODS.contains(&toks[i].text.as_str())
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// Skips backward over one balanced `(...)`/`[...]` group ending at
/// `close`; returns the index of the opening token.
fn balanced_back(toks: &[Tok], close: usize) -> usize {
    let (open_c, close_c) = match toks[close].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        _ => return close,
    };
    let mut depth = 0usize;
    let mut i = close;
    loop {
        if toks[i].is_punct(close_c) {
            depth += 1;
        } else if toks[i].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Start index of the postfix receiver chain whose final `.` is at
/// `dot` (e.g. for `self.shards.get(i).expect(..).lock()`, the index of
/// `self`).
fn receiver_start(toks: &[Tok], dot: usize, floor: usize) -> usize {
    let mut j = dot;
    loop {
        if j <= floor {
            return j;
        }
        let k = j - 1;
        let elem_start = if toks[k].is_punct(')') || toks[k].is_punct(']') {
            let mut b = balanced_back(toks, k);
            // A call (`expect("idx")`) or index: the ident before the
            // group belongs to the same chain element.
            if b > floor && toks[b - 1].kind == TokKind::Ident {
                b -= 1;
            }
            b
        } else if toks[k].kind == TokKind::Ident || toks[k].kind == TokKind::Num {
            k
        } else {
            return j;
        };
        j = elem_start;
        if j > floor && toks[j - 1].is_punct('.') {
            j -= 1;
            continue;
        }
        return j;
    }
}

/// Resolves an expression (receiver chain or call argument) to a lock
/// identity: last plain field before any method call; a lone parameter
/// name stays symbolic; a lone local alias resolves through the alias
/// map.
fn lock_id_of(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    krate: &str,
    params: &[String],
    aliases: &BTreeMap<String, String>,
) -> Option<LockId> {
    let mut fields: Vec<&str> = Vec::new();
    let mut idents = 0usize;
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            idents += 1;
            let next_open = toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('(') && i + 1 < range.end);
            if !next_open && t.text != "self" && t.text != "mut" {
                fields.push(&t.text);
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            // Skip the group: its contents are indices/arguments, not
            // part of the field path.
            let mut depth = 0usize;
            while i < range.end {
                if toks[i].is_punct('(') || toks[i].is_punct('[') {
                    depth += 1;
                } else if toks[i].is_punct(')') || toks[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        }
        i += 1;
    }
    let last = fields.last()?;
    if idents == 1 {
        if let Some(pi) = params.iter().position(|p| p == last) {
            return Some(LockId::Param(pi));
        }
    }
    let name = aliases
        .get(*last)
        .cloned()
        .unwrap_or_else(|| last.to_string());
    Some(LockId::Concrete {
        krate: krate.to_string(),
        name,
    })
}

/// One workspace call site inside a function body.
struct CallSite {
    callee: String,
    /// Lock candidates for each argument, in order.
    args: Vec<Option<LockId>>,
    /// `recv.callee(..)` (method style) vs `callee(..)`.
    method_style: bool,
    tok: usize,
}

/// Direct acquisitions and workspace calls of one function.
struct FnScan {
    acqs: Vec<(LockId, usize)>,
    calls: Vec<CallSite>,
}

fn scan_fn(file: &SourceFile, fidx: usize, fn_table: &BTreeSet<&str>) -> FnScan {
    let f = &file.functions[fidx];
    let toks = &file.toks;
    let aliases = collect_aliases(file, fidx);
    let mut out = FnScan {
        acqs: Vec::new(),
        calls: Vec::new(),
    };
    let mut i = f.body.start;
    while i < f.body.end {
        if is_acq_at(toks, i) {
            let start = receiver_start(toks, i - 1, f.body.start);
            if let Some(id) = lock_id_of(toks, start..i - 1, &file.crate_name, &f.params, &aliases)
            {
                out.acqs.push((id, i));
            }
            i += 3;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !(i > f.body.start && toks[i - 1].is_ident("fn"))
            && !CALL_STOPLIST.contains(&t.text.as_str())
            && fn_table.contains(t.text.as_str())
        {
            let method_style = i > f.body.start && toks[i - 1].is_punct('.');
            let close = matching_close(toks, i + 1, f.body.end);
            let args = split_args(toks, i + 2, close)
                .into_iter()
                .map(|r| lock_id_of(toks, r, &file.crate_name, &f.params, &aliases))
                .collect();
            out.calls.push(CallSite {
                callee: t.text.clone(),
                args,
                method_style,
                tok: i,
            });
        }
        i += 1;
    }
    out
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('(') || toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(')') || toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Top-level comma-separated argument ranges in `(start..close)`.
fn split_args(toks: &[Tok], start: usize, close: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut s = start;
    let mut i = start;
    while i < close {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            out.push(s..i);
            s = i + 1;
        }
        i += 1;
    }
    if s < close {
        out.push(s..close);
    }
    out
}

/// Local aliases: `for x in <expr>` and simple `let x = <expr>;` where
/// the expression resolves to a field name — so shard loops
/// (`for shard in &self.seen`) keep naming the `seen` lock.
fn collect_aliases(file: &SourceFile, fidx: usize) -> BTreeMap<String, String> {
    let f = &file.functions[fidx];
    let toks = &file.toks;
    let empty = BTreeMap::new();
    let mut aliases = BTreeMap::new();
    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        let (bind_at, expr_start, terminator) = if t.is_ident("for") {
            // `for <ident> in <expr> {`
            let Some(bind) = toks.get(i + 1).filter(|b| b.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            if !toks.get(i + 2).is_some_and(|n| n.is_ident("in")) {
                i += 1;
                continue;
            }
            let _ = bind;
            (i + 1, i + 3, '{')
        } else if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
            && !toks.get(i + 3).is_some_and(|n| n.is_punct('='))
        {
            (i + 1, i + 3, ';')
        } else {
            i += 1;
            continue;
        };
        let mut j = expr_start;
        let mut depth = 0usize;
        while j < f.body.end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(terminator) {
                break;
            }
            j += 1;
        }
        // Only alias when the expression has no acquisition of its own
        // (those are guards, handled separately).
        let has_acq = (expr_start..j).any(|k| is_acq_at(toks, k));
        if !has_acq {
            if let Some(LockId::Concrete { name, .. }) =
                lock_id_of(toks, expr_start..j, &file.crate_name, &[], &empty)
            {
                aliases.insert(toks[bind_at].text.clone(), name);
            }
        }
        i = bind_at + 1;
    }
    aliases
}

/// Substitutes a callee's acquire set into the caller's context.
fn substitute(
    callee_set: &BTreeSet<LockId>,
    callee_has_self: bool,
    call: &CallSite,
) -> BTreeSet<LockId> {
    let mut out = BTreeSet::new();
    for id in callee_set {
        match id {
            LockId::Concrete { .. } => {
                out.insert(id.clone());
            }
            LockId::Param(i) => {
                let shift = usize::from(callee_has_self && call.method_style);
                if let Some(Some(arg)) = i.checked_sub(shift).and_then(|ai| call.args.get(ai)) {
                    out.insert(arg.clone());
                }
            }
        }
    }
    out
}

/// Runs the whole lock pass over all files.
pub fn analyze(files: &[SourceFile]) -> LockAnalysis {
    // Function name table (non-test) for call resolution.
    let mut fn_table: BTreeSet<&str> = BTreeSet::new();
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if !f.is_test {
                fn_table.insert(f.name.as_str());
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
    }

    // Per-function scans and direct acquire sets.
    let mut scans: BTreeMap<(usize, usize), FnScan> = BTreeMap::new();
    let mut acquire: BTreeMap<(usize, usize), BTreeSet<LockId>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let scan = scan_fn(file, gi, &fn_table);
            let set: BTreeSet<LockId> = scan.acqs.iter().map(|(id, _)| id.clone()).collect();
            scans.insert((fi, gi), scan);
            acquire.insert((fi, gi), set);
        }
    }

    // Fixpoint: close acquire sets over workspace calls.
    for _ in 0..16 {
        let mut changed = false;
        let keys: Vec<(usize, usize)> = scans.keys().copied().collect();
        for key in keys {
            let mut add = BTreeSet::new();
            for call in &scans[&key].calls {
                for &(cfi, cgi) in by_name.get(call.callee.as_str()).into_iter().flatten() {
                    let callee = &files[cfi].functions[cgi];
                    let callee_has_self = callee.params.first().is_some_and(|p| p == "self");
                    if let Some(set) = acquire.get(&(cfi, cgi)) {
                        add.extend(substitute(set, callee_has_self, call));
                    }
                }
            }
            let set = acquire.get_mut(&key).expect("scanned above");
            for id in add {
                changed |= set.insert(id);
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = LockAnalysis::default();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            emit_edges(
                files,
                fi,
                gi,
                &scans[&(fi, gi)],
                &acquire,
                &by_name,
                &mut out.edges,
            );
            poison_lint(file, f.body.clone(), &mut out.poison);
        }
        // Non-test scope outside functions has no statements to lint.
        let _ = fi;
    }
    out.edges.sort();
    out.edges.dedup();
    out.poison
        .sort_by(|a, b| (&a.path, a.line, a.offset).cmp(&(&b.path, b.line, b.offset)));
    out.poison.dedup();
    out
}

fn concrete(id: &LockId) -> Option<String> {
    match id {
        LockId::Concrete { krate, name } => Some(format!("{krate}::{name}")),
        LockId::Param(_) => None,
    }
}

/// Walks one function body tracking held guards and emitting order
/// edges at each later acquisition point.
#[allow(clippy::too_many_arguments)]
fn emit_edges(
    files: &[SourceFile],
    fi: usize,
    gi: usize,
    scan: &FnScan,
    acquire: &BTreeMap<(usize, usize), BTreeSet<LockId>>,
    by_name: &BTreeMap<&str, Vec<(usize, usize)>>,
    edges: &mut Vec<Edge>,
) {
    let file = &files[fi];
    let f = &file.functions[gi];
    let toks = &file.toks;

    // Acquisition points in token order: direct acqs and calls with
    // non-empty (substituted) acquire sets. A point is `guardable` when
    // binding it with `let` can actually hold a lock — a direct
    // acquisition, or a call to a fn whose signature returns a
    // `*Guard` type (e.g. `lock_recovering`); a call that merely locks
    // internally releases before returning.
    let mut points: Vec<(usize, Vec<LockId>, bool)> = Vec::new();
    for (id, tok) in &scan.acqs {
        points.push((*tok, vec![id.clone()], true));
    }
    for call in &scan.calls {
        let mut ids = BTreeSet::new();
        let mut returns_guard = false;
        for &(cfi, cgi) in by_name.get(call.callee.as_str()).into_iter().flatten() {
            let callee = &files[cfi].functions[cgi];
            let callee_has_self = callee.params.first().is_some_and(|p| p == "self");
            if let Some(set) = acquire.get(&(cfi, cgi)) {
                ids.extend(substitute(set, callee_has_self, call));
            }
            returns_guard |= files[cfi].toks[callee.sig.clone()]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("Guard"));
        }
        if !ids.is_empty() {
            points.push((call.tok, ids.into_iter().collect(), returns_guard));
        }
    }
    points.sort_by_key(|(tok, ..)| *tok);

    // Linear walk: depth tracking, guard stack, drop() handling.
    let mut guards: Vec<(String, Vec<String>, usize)> = Vec::new(); // (name, locks, depth)
    let mut depth = 0usize;
    let mut pi = 0usize;
    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.2 <= depth);
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.0 != name.text);
            }
        }
        while pi < points.len() && points[pi].0 == i {
            let (ptok, ids, guardable) = &points[pi];
            let concrete_ids: Vec<String> = ids.iter().filter_map(concrete).collect();
            for (_, held, _) in &guards {
                for from in held {
                    for to in &concrete_ids {
                        if from != to {
                            edges.push(Edge {
                                from: from.clone(),
                                to: to.clone(),
                                path: file.path.clone(),
                                line: toks[*ptok].line,
                                offset: toks[*ptok].offset,
                            });
                        }
                    }
                }
            }
            if *guardable {
                if let Some(bind) = guard_binding(toks, f.body.start, *ptok, f.body.end) {
                    guards.push((bind, concrete_ids.clone(), depth));
                }
            }
            pi += 1;
        }
        i += 1;
    }
}

/// If the acquisition/call at `at` is bound into a guard —
/// `let <name> = ...<acq>()[.unwrap()|.expect(..)|.unwrap_or_else(..)]*;`
/// — returns the guard name.
fn guard_binding(toks: &[Tok], floor: usize, at: usize, end: usize) -> Option<String> {
    // Backward: the statement must start with `let`, with no `;`/braces
    // in between.
    let mut s = at;
    let mut name = None;
    while s > floor {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if toks.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut j = s + 1;
        while j < at {
            let t = &toks[j];
            if t.is_punct('=') {
                break;
            }
            if t.kind == TokKind::Ident && t.text != "mut" {
                name = Some(t.text.clone());
            }
            j += 1;
        }
    }
    let name = name?;
    // Forward: skip to the close paren of the acquisition/call, then
    // allow only recovery-chain links before `;`.
    let open = (at..end).find(|&k| toks[k].is_punct('('))?;
    let mut i = matching_close(toks, open, end) + 1;
    loop {
        let t = toks.get(i)?;
        if t.is_punct(';') {
            return Some(name);
        }
        if t.is_punct('?') {
            i += 1;
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| RECOVERY_CHAIN.contains(&n.text.as_str()))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            i = matching_close(toks, i + 2, end) + 1;
            continue;
        }
        return None;
    }
}

/// The poison lint: `.lock()/.read()/.write()` (empty parens) or
/// condvar `.wait(..)/.wait_timeout(..)` whose `Result` is consumed by
/// bare `.unwrap()`/`.expect(` instead of `PoisonError::into_inner`
/// recovery.
fn poison_lint(file: &SourceFile, body: std::ops::Range<usize>, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut i = body.start;
    while i < body.end {
        let after = if is_acq_at(toks, i) {
            Some((i + 3, toks[i].text.clone()))
        } else if i > body.start
            && toks[i - 1].is_punct('.')
            && (toks[i].is_ident("wait") || toks[i].is_ident("wait_timeout"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let close = matching_close(toks, i + 1, body.end);
            Some((close + 1, toks[i].text.clone()))
        } else {
            None
        };
        if let Some((j, method)) = after {
            if toks.get(j).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(j + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
            {
                let site = &toks[j + 1];
                out.push(Finding {
                    path: file.path.clone(),
                    line: site.line,
                    offset: site.offset,
                    rule: Rule::LockPoison,
                    message: format!(
                        "`.{method}(..).{}` without poison recovery — use \
                         `.unwrap_or_else(PoisonError::into_inner)`",
                        site.text
                    ),
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Cycle detection over concrete edges (call after pragma filtering).
/// Every edge that participates in a strongly connected component (or a
/// self-loop) becomes a `lock-order` finding at the edge's site.
pub fn cycle_findings(edges: &[Edge]) -> Vec<Finding> {
    // Mutual-reachability SCCs; the graphs here are tiny.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    let reach = |start: &str| -> BTreeSet<&str> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for &m in adj.get(n).into_iter().flatten() {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen
    };
    let mut findings = Vec::new();
    for e in edges {
        // The edge is cyclic iff its target can reach its source (a
        // self-loop trivially qualifies).
        let cyclic = e.from == e.to || reach(&e.to).contains(e.from.as_str());
        if cyclic {
            findings.push(Finding {
                path: e.path.clone(),
                line: e.line,
                offset: e.offset,
                rule: Rule::LockOrder,
                message: format!(
                    "lock-order cycle: acquiring `{}` while holding `{}`",
                    e.to, e.from
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn run(srcs: &[(&str, &str)]) -> LockAnalysis {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| parse_file(p, s)).collect();
        analyze(&files)
    }

    #[test]
    fn poison_unwrap_flagged_recovery_not() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn bad(&self) { let g = self.state.lock().unwrap(); }
            fn worse(&self) { let g = self.state.lock().expect("poisoned"); }
            fn good(&self) { let g = self.state.lock().unwrap_or_else(PoisonError::into_inner); }
            "#,
        )]);
        assert_eq!(a.poison.len(), 2);
        assert!(a.poison[0].message.contains("into_inner"));
    }

    #[test]
    fn condvar_wait_unwrap_flagged() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            "fn w(&self) { let g = self.cv.wait(g).unwrap(); }",
        )]);
        assert_eq!(a.poison.len(), 1);
        assert!(a.poison[0].message.contains("wait"));
    }

    #[test]
    fn test_code_is_exempt_from_poison_lint() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            "#[cfg(test)] mod tests { fn t(&self) { let g = self.m.lock().unwrap(); } }",
        )]);
        assert!(a.poison.is_empty());
    }

    #[test]
    fn order_edge_and_cycle() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn ab(&self) {
                let g = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
            }
            fn ba(&self) {
                let g = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
            }
            "#,
        )]);
        assert_eq!(a.edges.len(), 2);
        let cyc = cycle_findings(&a.edges);
        assert_eq!(cyc.len(), 2, "both edges participate in the cycle");
        assert!(cyc[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn ab(&self) {
                let g = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
            }
            fn ab2(&self) {
                let g = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
            }
            "#,
        )]);
        assert!(cycle_findings(&a.edges).is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn f(&self) {
                let g = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
                drop(g);
                let h = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
            }
            fn r(&self) {
                let g = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
            }
            "#,
        )]);
        // f() contributes no alpha→beta edge, so r()'s beta→alpha edge
        // alone is acyclic.
        assert!(cycle_findings(&a.edges).is_empty());
    }

    #[test]
    fn guard_returning_helper_substitutes_parameter() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn lock_recovering(&self, m: &Mutex<u64>) -> MutexGuard<'_, u64> {
                m.lock().unwrap_or_else(PoisonError::into_inner)
            }
            fn ab(&self) {
                let g = self.lock_recovering(&self.alpha);
                let h = self.lock_recovering(&self.beta);
            }
            fn ba(&self) {
                let g = self.lock_recovering(&self.beta);
                let h = self.lock_recovering(&self.alpha);
            }
            "#,
        )]);
        let cyc = cycle_findings(&a.edges);
        assert_eq!(cyc.len(), 2, "edges: {:?}", a.edges);
        assert!(cyc[0].message.contains("d::alpha") || cyc[0].message.contains("d::beta"));
    }

    #[test]
    fn field_path_names_last_field_and_skips_method_args() {
        let a = run(&[(
            "crates/d/src/lib.rs",
            r#"
            fn f(&self) {
                let g = self.slot.cell.lock().unwrap_or_else(PoisonError::into_inner);
                let h = self.shards.get(i).expect("idx").lock().unwrap_or_else(PoisonError::into_inner);
            }
            "#,
        )]);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].from, "d::cell");
        assert_eq!(a.edges[0].to, "d::shards");
    }
}
