//! Structural model of one source file: functions (with body token
//! ranges and test-ness), struct fields (with type text), `use` imports,
//! and `xt-analyze` suppression pragmas.
//!
//! The scanner is a linear pattern-match over the token stream from
//! [`lexer`](crate::lexer) — it understands just enough item structure
//! (modules, `fn` headers, `struct` fields, `use` trees, attributes) to
//! scope the rules, and records everything else as opaque body tokens.

use std::collections::BTreeSet;

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::report::Rule;

/// A parsed `// xt-analyze: allow(<rules>) -- <justification>` pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    pub line: u32,
    pub offset: u32,
    pub rules: Vec<Rule>,
    pub justification: String,
}

/// A comment that names `xt-analyze:` but does not parse as a pragma.
#[derive(Clone, Debug)]
pub struct PragmaError {
    pub line: u32,
    pub offset: u32,
    pub reason: String,
}

/// One named struct field and the raw text of its declared type.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: String,
}

/// One `fn` item (free, inherent, trait, or nested inside another body).
#[derive(Clone, Debug)]
pub struct Function {
    pub name: String,
    /// Enclosing module path within the file (`""` at the root).
    pub module: String,
    /// Parameter names, `self` included, in declaration order.
    pub params: Vec<String>,
    /// Token index range of the body, braces excluded. Empty for
    /// bodyless trait declarations.
    pub body: std::ops::Range<usize>,
    /// Token index range from the `fn` keyword to the body brace —
    /// the signature, scanned by the observation-only rule so imported
    /// types in parameter/return position count too.
    pub sig: std::ops::Range<usize>,
    pub line: u32,
    pub offset: u32,
    /// Inside `#[cfg(test)]`/`#[test]` scope: rules skip it.
    pub is_test: bool,
}

/// Everything the rule passes need to know about one file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate the file belongs to (`crates/<name>/...` → `<name>`).
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub functions: Vec<Function>,
    /// Identifiers this file imports from `xt_obs` (aliases resolved to
    /// the local name).
    pub obs_imports: BTreeSet<String>,
    pub fields: Vec<Field>,
    pub pragmas: Vec<Pragma>,
    pub pragma_errors: Vec<PragmaError>,
}

/// Parses one file. Never fails: unparseable stretches are skipped, the
/// rules simply see less structure.
pub fn parse_file(path: &str, src: &str) -> SourceFile {
    let (toks, comments) = lex(src);
    let crate_name = crate_of(path);
    let mut file = SourceFile {
        path: path.to_string(),
        crate_name,
        toks,
        functions: Vec::new(),
        obs_imports: BTreeSet::new(),
        fields: Vec::new(),
        pragmas: Vec::new(),
        pragma_errors: Vec::new(),
    };
    parse_pragmas(&comments, &mut file);
    let end = file.toks.len();
    let mut scanner = Scanner { file: &mut file };
    scanner.items(0, end, "", false);
    file
}

/// `crates/<name>/src/...` → `<name>`; anything else keeps its first
/// path segment so fixtures can fabricate crate names.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

struct Scanner<'a> {
    file: &'a mut SourceFile,
}

impl Scanner<'_> {
    /// Scans `[i, end)` for items; `module` is the enclosing module path
    /// and `in_test` whether a `#[cfg(test)]` scope encloses it.
    fn items(&mut self, mut i: usize, end: usize, module: &str, in_test: bool) {
        let mut attr_test = false;
        while i < end {
            let t = &self.file.toks[i];
            if t.is_punct('#') {
                let (is_test, ni) = self.attribute(i, end);
                attr_test |= is_test;
                i = ni;
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "mod" => {
                    let test_here = in_test || attr_test;
                    attr_test = false;
                    if let Some((name, open)) = self.ident_then_brace(i + 1, end) {
                        let close = self.match_brace(open, end);
                        let sub = if module.is_empty() {
                            name
                        } else {
                            format!("{module}::{name}")
                        };
                        self.items(open + 1, close, &sub, test_here);
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    let test_here = in_test || attr_test;
                    attr_test = false;
                    i = self.function(i, end, module, test_here);
                }
                "struct" => {
                    attr_test = false;
                    i = self.structure(i, end);
                }
                "use" => {
                    attr_test = false;
                    i = self.use_tree(i, end);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// Consumes `#[...]` (or `#![...]`) at `i`; reports whether it
    /// mentions `test` (covers `#[test]` and `#[cfg(test)]`).
    fn attribute(&self, mut i: usize, end: usize) -> (bool, usize) {
        i += 1; // '#'
        if i < end && self.file.toks[i].is_punct('!') {
            i += 1;
        }
        if i >= end || !self.file.toks[i].is_punct('[') {
            return (false, i);
        }
        let mut depth = 0usize;
        let mut is_test = false;
        while i < end {
            let t = &self.file.toks[i];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return (is_test, i + 1);
                }
            } else if t.is_ident("test") {
                is_test = true;
            }
            i += 1;
        }
        (is_test, i)
    }

    /// After `mod`, expects `name {`; returns `(name, index of '{')`.
    fn ident_then_brace(&self, i: usize, end: usize) -> Option<(String, usize)> {
        let name = self.file.toks.get(i).filter(|t| t.kind == TokKind::Ident)?;
        if i + 1 < end && self.file.toks[i + 1].is_punct('{') {
            Some((name.text.clone(), i + 1))
        } else {
            None
        }
    }

    /// Index of the `}` matching the `{` at `open` (or `end`).
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            let t = &self.file.toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end
    }

    /// Parses a `fn` item starting at the `fn` keyword; records it and
    /// returns the index to continue from (just past the header — the
    /// body is re-scanned so nested items are recorded too).
    fn function(&mut self, fn_idx: usize, end: usize, module: &str, is_test: bool) -> usize {
        let mut i = fn_idx + 1;
        let Some(name_tok) = self.file.toks.get(i).filter(|t| t.kind == TokKind::Ident) else {
            // `fn $name` in a macro definition, or a bare `fn` pointer
            // type: nothing to record.
            return fn_idx + 1;
        };
        let name = name_tok.text.clone();
        let (line, offset) = (name_tok.line, name_tok.offset);
        i += 1;
        // Generic parameters.
        if i < end && self.file.toks[i].is_punct('<') {
            let mut depth = 0usize;
            while i < end {
                let t = &self.file.toks[i];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Parameter list.
        let mut params = Vec::new();
        if i < end && self.file.toks[i].is_punct('(') {
            let mut depth = 0usize;
            while i < end {
                let t = &self.file.toks[i];
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if depth == 1 && t.is_ident("self") {
                    params.push("self".to_string());
                } else if depth == 1
                    && t.kind == TokKind::Ident
                    && self.file.toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && !self.file.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    params.push(t.text.clone());
                }
                i += 1;
            }
        }
        // Return type / where clause up to the body (or `;`).
        let mut depth = 0usize;
        let mut body = 0..0;
        let mut body_close = i;
        while i < end {
            let t = &self.file.toks[i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                body_close = i;
                break;
            } else if depth == 0 && t.is_punct('{') {
                let close = self.match_brace(i, end);
                body = (i + 1)..close;
                body_close = close;
                break;
            }
            i += 1;
        }
        let has_body = body.end > body.start;
        self.file.functions.push(Function {
            name,
            module: module.to_string(),
            params,
            body: body.clone(),
            sig: fn_idx..if has_body { body.start } else { body_close },
            line,
            offset,
            is_test,
        });
        // Continue scanning *inside* the body so nested fns (digest
        // helpers are commonly written that way) get their own records;
        // the stray closing brace is skipped harmlessly.
        if has_body {
            body.start
        } else {
            body_close.max(fn_idx) + 1
        }
    }

    /// Parses `struct Name { field: Type, ... }` and records fields.
    fn structure(&mut self, struct_idx: usize, end: usize) -> usize {
        let mut i = struct_idx + 1;
        if self
            .file
            .toks
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .is_none()
        {
            return i;
        }
        i += 1;
        // Generics.
        if i < end && self.file.toks[i].is_punct('<') {
            let mut depth = 0usize;
            while i < end {
                let t = &self.file.toks[i];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Unit / tuple struct: nothing to record.
        if i >= end || !self.file.toks[i].is_punct('{') {
            return i;
        }
        let close = self.match_brace(i, end);
        let mut j = i + 1;
        while j < close {
            let t = &self.file.toks[j];
            if t.is_punct('#') {
                let (_, nj) = self.attribute(j, close);
                j = nj;
                continue;
            }
            if t.is_ident("pub") {
                j += 1;
                if j < close && self.file.toks[j].is_punct('(') {
                    let mut depth = 0usize;
                    while j < close {
                        let t = &self.file.toks[j];
                        if t.is_punct('(') {
                            depth += 1;
                        } else if t.is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                continue;
            }
            if t.kind == TokKind::Ident
                && self.file.toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                let name = t.text.clone();
                let mut ty = String::new();
                let mut k = j + 2;
                let mut depth = 0i32;
                while k < close {
                    let t = &self.file.toks[k];
                    if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&t.text);
                    k += 1;
                }
                self.file.fields.push(Field { name, ty });
                j = k + 1;
            } else {
                j += 1;
            }
        }
        close + 1
    }

    /// Parses a `use` item, collecting identifiers imported from
    /// `xt_obs`. Returns the index just past the terminating `;`.
    fn use_tree(&mut self, use_idx: usize, end: usize) -> usize {
        let mut stop = use_idx + 1;
        while stop < end && !self.file.toks[stop].is_punct(';') {
            stop += 1;
        }
        let toks = &self.file.toks[use_idx + 1..stop];
        let mut leaves = Vec::new();
        collect_use_leaves(toks, &mut leaves);
        if toks.first().is_some_and(|t| t.is_ident("xt_obs")) {
            for leaf in leaves {
                self.file.obs_imports.insert(leaf);
            }
        }
        stop + 1
    }
}

/// Leaf names (alias-resolved) of a `use` tree body, `use` and `;`
/// stripped. `a::b::{C, D as E}` → `["C", "E"]`.
fn collect_use_leaves(toks: &[Tok], out: &mut Vec<String>) {
    // Split on top-level commas, then take each piece's trailing
    // identifier (after `as` if present), recursing into `{...}` groups.
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut pieces = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            pieces.push(&toks[start..i]);
            start = i + 1;
        }
    }
    pieces.push(&toks[start..]);
    for piece in pieces {
        if piece.is_empty() {
            continue;
        }
        // `... :: { group }` — recurse into the braces.
        if let Some(open) = piece.iter().position(|t| t.is_punct('{')) {
            let close = piece.len()
                - 1
                - piece
                    .iter()
                    .rev()
                    .position(|t| t.is_punct('}'))
                    .unwrap_or(0);
            if close > open {
                collect_use_leaves(&piece[open + 1..close], out);
            }
            continue;
        }
        // `path as Alias` → Alias; otherwise the last identifier.
        let mut leaf = None;
        let mut iter = piece.iter().peekable();
        while let Some(t) = iter.next() {
            if t.is_ident("as") {
                if let Some(alias) = iter.next() {
                    leaf = Some(alias.text.clone());
                }
                break;
            }
            if t.kind == TokKind::Ident {
                leaf = Some(t.text.clone());
            }
        }
        if let Some(leaf) = leaf {
            if leaf != "self" && leaf != "*" {
                out.push(leaf);
            }
        }
    }
}

/// The pragma marker inside a line comment.
const PRAGMA_MARK: &str = "xt-analyze:";

fn parse_pragmas(comments: &[Comment], file: &mut SourceFile) {
    for c in comments {
        // Doc comments talk *about* pragmas; only plain `//` comments
        // carry them.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = c.text.find(PRAGMA_MARK) else {
            continue;
        };
        let rest = c.text[pos + PRAGMA_MARK.len()..].trim();
        match parse_pragma_body(rest) {
            Ok((rules, justification)) => file.pragmas.push(Pragma {
                line: c.line,
                offset: c.offset,
                rules,
                justification,
            }),
            Err(reason) => file.pragma_errors.push(PragmaError {
                line: c.line,
                offset: c.offset,
                reason,
            }),
        }
    }
}

/// `allow(rule[, rule]) -- justification` → (rules, justification).
fn parse_pragma_body(rest: &str) -> Result<(Vec<Rule>, String), String> {
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(<rule>) -- <justification>`".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` rule list".to_string())?;
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::from_name(name) {
            Some(rule) if rule.suppressible() => rules.push(rule),
            Some(rule) => {
                return Err(format!("rule `{}` cannot be suppressed", rule.name()));
            }
            None => return Err(format!("unknown rule `{name}`")),
        }
    }
    if rules.is_empty() {
        return Err("empty rule list in `allow(...)`".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err("justification required: `allow(<rule>) -- <why this is sound>`".to_string());
    }
    Ok((rules, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_modules_and_testness() {
        let src = r#"
            pub fn outer(x: u64, map: &str) -> u64 { x }
            mod inner {
                fn helper(&self) {}
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn a_test() {}
            }
        "#;
        let f = parse_file("crates/demo/src/lib.rs", src);
        let names: Vec<(&str, &str, bool)> = f
            .functions
            .iter()
            .map(|x| (x.name.as_str(), x.module.as_str(), x.is_test))
            .collect();
        assert_eq!(
            names,
            [
                ("outer", "", false),
                ("helper", "inner", false),
                ("a_test", "tests", true),
            ]
        );
        assert_eq!(f.functions[0].params, ["x", "map"]);
        assert_eq!(f.crate_name, "demo");
    }

    #[test]
    fn nested_fns_are_recorded() {
        let src = "fn digest() -> u128 { fn fold(h: u128) -> u128 { h } fold(0) }";
        let f = parse_file("crates/demo/src/lib.rs", src);
        let names: Vec<&str> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["digest", "fold"]);
    }

    #[test]
    fn struct_fields_with_types() {
        let src = "struct S { pub seen: Vec<Mutex<HashMap<u64, W>>>, hist: Arc<Histogram> }";
        let f = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(f.fields.len(), 2);
        assert_eq!(f.fields[0].name, "seen");
        assert!(f.fields[0].ty.contains("HashMap"));
        assert_eq!(f.fields[1].name, "hist");
    }

    #[test]
    fn obs_imports_with_aliases_and_groups() {
        let src = "use xt_obs::{Histogram, Registry as Reg};\nuse std::collections::HashMap;";
        let f = parse_file("crates/demo/src/lib.rs", src);
        assert!(f.obs_imports.contains("Histogram"));
        assert!(f.obs_imports.contains("Reg"));
        assert!(!f.obs_imports.contains("HashMap"));
    }

    #[test]
    fn pragmas_parse_and_reject_missing_justification() {
        let src = "\n// xt-analyze: allow(hash-iter) -- sorted before encoding\nfn x() {}\n// xt-analyze: allow(hash-iter)\n";
        let f = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(f.pragmas.len(), 1);
        assert_eq!(f.pragmas[0].line, 2);
        assert_eq!(f.pragmas[0].justification, "sorted before encoding");
        assert_eq!(f.pragma_errors.len(), 1);
        assert!(f.pragma_errors[0].reason.contains("justification"));
    }
}
