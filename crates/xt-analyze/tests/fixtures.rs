//! Fixture-driven integration tests: one known-bad and one known-good
//! source per rule family, run through the full [`xt_analyze`] pipeline
//! exactly as the CLI would, plus pragma-suppression behaviour and the
//! self-check that the shipped workspace is clean under `--deny`.

use xt_analyze::{analyze_sources, Rule};

/// Runs the analyzer over in-memory fixtures and returns the rules of
/// all unsuppressed findings (sorted, deduplicated by the pipeline).
fn rules_of(sources: &[(&str, &str)]) -> Vec<Rule> {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&owned)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

// ---- hash-iter ---------------------------------------------------------

#[test]
fn bad_hash_iteration_in_digest_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::HashMap;
        pub fn fold_digest(m: &HashMap<u64, u64>) -> u64 {
            let mut acc = 0u64;
            for (k, v) in m.iter() {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
            }
            acc
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::HashIter]);
}

#[test]
fn good_btree_iteration_in_digest_is_clean() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::BTreeMap;
        pub fn fold_digest(m: &BTreeMap<u64, u64>) -> u64 {
            let mut acc = 0u64;
            for (k, v) in m.iter() {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ v);
            }
            acc
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

#[test]
fn hash_iteration_off_the_surface_is_clean() {
    // Same iteration, but the function is not digest/outcome vocabulary
    // and nothing on the surface calls it.
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::HashMap;
        pub fn debug_dump(m: &HashMap<u64, u64>) -> usize {
            let mut n = 0;
            for _ in m.iter() { n += 1; }
            n
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

#[test]
fn surface_closure_reaches_helpers() {
    // The seed function calls a helper; the helper's hash iteration is
    // flagged even though the helper's own name is innocent.
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::HashSet;
        pub fn outcome_bytes(s: &HashSet<u64>) -> Vec<u8> {
            let mut out = Vec::new();
            accumulate(s, &mut out);
            out
        }
        fn accumulate(s: &HashSet<u64>, out: &mut Vec<u8>) {
            for v in s.iter() {
                out.extend(v.to_le_bytes());
            }
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::HashIter]);
}

// ---- time-source -------------------------------------------------------

#[test]
fn bad_clock_read_on_the_surface_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::time::Instant;
        pub fn encode_header(out: &mut Vec<u8>) {
            let t = Instant::now();
            out.push(t.elapsed().subsec_nanos() as u8);
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::TimeSource]);
}

#[test]
fn good_clock_read_in_metrics_code_is_clean() {
    // `metrics_*` names are observation-exempt by design.
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::time::Instant;
        pub fn metrics_tick() -> u128 {
            Instant::now().elapsed().as_nanos()
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

#[test]
fn thread_id_on_the_surface_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        pub fn snapshot_tag() -> String {
            format!("{:?}", std::thread::current().id())
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::TimeSource]);
}

// ---- lock-order --------------------------------------------------------

#[test]
fn bad_lock_order_cycle_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::Mutex;
        pub struct S { a: Mutex<u64>, b: Mutex<u64> }
        impl S {
            pub fn forward(&self) -> u64 {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga + *gb
            }
            pub fn backward(&self) -> u64 {
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga - *gb
            }
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::LockOrder, Rule::LockOrder]);
}

#[test]
fn good_consistent_lock_order_is_clean() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::Mutex;
        pub struct S { a: Mutex<u64>, b: Mutex<u64> }
        impl S {
            pub fn sum(&self) -> u64 {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga + *gb
            }
            pub fn diff(&self) -> u64 {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga - *gb
            }
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

#[test]
fn cross_function_lock_order_cycle_is_flagged() {
    // `forward` holds `a` while calling a helper that takes `b`;
    // `backward` does the reverse directly. The cycle spans a call edge.
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::Mutex;
        pub struct S { a: Mutex<u64>, b: Mutex<u64> }
        impl S {
            pub fn forward(&self) -> u64 {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga + self.tail()
            }
            fn tail(&self) -> u64 {
                *self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            pub fn backward(&self) -> u64 {
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *ga - *gb
            }
        }
        "#,
    )]);
    assert!(
        rules.contains(&Rule::LockOrder),
        "expected a lock-order finding, got: {rules:?}"
    );
}

// ---- lock-poison -------------------------------------------------------

#[test]
fn bad_unrecovered_lock_unwrap_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::Mutex;
        pub fn bump(m: &Mutex<u64>) {
            *m.lock().unwrap() += 1;
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::LockPoison]);
}

#[test]
fn good_poison_recovery_is_clean() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::{Mutex, PoisonError};
        pub fn bump(m: &Mutex<u64>) {
            *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

#[test]
fn lock_unwrap_in_test_code_is_clean() {
    // Tests may unwrap freely: a poisoned lock should fail the test.
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::sync::Mutex;
        #[cfg(test)]
        mod tests {
            #[test]
            fn bump() {
                let m = super::Mutex::new(0u64);
                *m.lock().unwrap() += 1;
            }
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

// ---- obs-in-det --------------------------------------------------------

#[test]
fn bad_metrics_use_on_the_surface_is_flagged() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use xt_obs::Counter;
        pub fn encode_frame(c: &Counter, out: &mut Vec<u8>) {
            out.extend(Counter::default().get().to_le_bytes());
        }
        "#,
    )]);
    // Both the signature mention and the body mention are flagged.
    assert!(
        !rules.is_empty() && rules.iter().all(|&r| r == Rule::ObsInDet),
        "expected obs-in-det findings, got: {rules:?}"
    );
}

#[test]
fn good_metrics_use_off_the_surface_is_clean() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use xt_obs::Counter;
        pub fn record_arrival(c: &Counter) {
            c.incr();
        }
        "#,
    )]);
    assert!(rules.is_empty(), "unexpected findings: {rules:?}");
}

// ---- pragmas -----------------------------------------------------------

#[test]
fn pragma_with_justification_suppresses_and_is_counted() {
    let owned = vec![(
        "crates/demo/src/lib.rs".to_string(),
        r#"
        use std::collections::HashMap;
        pub fn fold_digest(m: &HashMap<u64, u64>) -> u64 {
            let mut acc = 0u64;
            // xt-analyze: allow(hash-iter) -- commutative xor-fold; order cannot matter
            for (k, v) in m.iter() {
                acc ^= k ^ v;
            }
            acc
        }
        "#
        .to_string(),
    )];
    let analysis = analyze_sources(&owned);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    assert_eq!(analysis.suppressed.len(), 1);
    assert_eq!(analysis.pragmas.len(), 1);
    assert!(analysis.pragmas[0].used);
    assert_eq!(
        analysis.pragmas[0].justification,
        "commutative xor-fold; order cannot matter"
    );
}

#[test]
fn pragma_without_justification_is_an_error() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::HashMap;
        pub fn fold_digest(m: &HashMap<u64, u64>) -> u64 {
            let mut acc = 0u64;
            // xt-analyze: allow(hash-iter)
            for (k, v) in m.iter() {
                acc ^= k ^ v;
            }
            acc
        }
        "#,
    )]);
    // The malformed pragma is itself a finding AND fails to suppress.
    assert_eq!(rules, vec![Rule::BadPragma, Rule::HashIter]);
}

#[test]
fn pragma_for_the_wrong_rule_does_not_suppress() {
    let rules = rules_of(&[(
        "crates/demo/src/lib.rs",
        r#"
        use std::collections::HashMap;
        pub fn fold_digest(m: &HashMap<u64, u64>) -> u64 {
            let mut acc = 0u64;
            // xt-analyze: allow(time-source) -- wrong rule on purpose
            for (k, v) in m.iter() {
                acc ^= k ^ v;
            }
            acc
        }
        "#,
    )]);
    assert_eq!(rules, vec![Rule::HashIter]);
}

// ---- deterministic output ----------------------------------------------

#[test]
fn report_is_byte_stable_across_runs() {
    let owned = vec![
        (
            "crates/b/src/lib.rs".to_string(),
            "use std::time::Instant;\npub fn encode_b() { let _ = Instant::now(); }\n".to_string(),
        ),
        (
            "crates/a/src/lib.rs".to_string(),
            "use std::time::Instant;\npub fn encode_a() { let _ = Instant::now(); }\n".to_string(),
        ),
    ];
    let first = analyze_sources(&owned).render();
    let second = analyze_sources(&owned).render();
    assert_eq!(first, second);
    let a = first.find("crates/a/src/lib.rs").expect("a reported");
    let b = first.find("crates/b/src/lib.rs").expect("b reported");
    assert!(a < b, "findings must sort by path:\n{first}");
}
