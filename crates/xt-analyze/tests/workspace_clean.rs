//! Self-check: the shipped workspace passes its own analyzer under
//! `--deny`. Any regression — a new hash iteration on a digest path, a
//! clock read feeding an outcome, a lock-order inversion, a pragma
//! without justification — fails this test before it reaches CI.

use std::path::Path;

#[test]
fn shipped_workspace_is_clean_under_deny() {
    // CARGO_MANIFEST_DIR = crates/xt-analyze → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let analysis = xt_analyze::analyze_workspace(root).expect("workspace scan");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously small scan ({} files) — wrong root?",
        analysis.files_scanned
    );
    assert!(
        analysis.is_clean(),
        "unsuppressed findings in the shipped tree:\n{}",
        analysis.render()
    );
    // Every pragma in the tree must pull its weight: an unused pragma is
    // stale documentation and must be deleted, not shipped.
    let unused: Vec<_> = analysis.pragmas.iter().filter(|p| !p.used).collect();
    assert!(unused.is_empty(), "unused pragmas: {unused:?}");
}
