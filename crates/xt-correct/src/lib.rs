//! The correcting memory allocator (paper §6.3, Fig. 6).
//!
//! [`CorrectingHeap`] wraps any [`Heap`] and applies the runtime patches
//! produced by error isolation:
//!
//! * **Pads.** On `malloc`, the allocation site is looked up in the pad
//!   table and the request is enlarged by the pad, containing any finite
//!   forward overflow from that site.
//! * **Deferrals.** On `free`, the (allocation site, deallocation site)
//!   pair is looked up in the deferral table; a hit pushes the pointer onto
//!   a priority queue instead of releasing it. Every subsequent `malloc`
//!   first drains all queue entries that have come due on the allocation
//!   clock — exactly Fig. 6's loop.
//! * **Hot reload.** [`CorrectingHeap::reload_patches`] swaps in a new
//!   patch table at any time, which is how Exterminator fixes errors in a
//!   *running* process without interrupting execution (§3.4).
//!
//! Corrections impose no extra execution-time work beyond the table lookups
//! — the cost is space (pad bytes, deferred *drag*), which
//! [`CorrectionStats`] accounts for and §7.3 measures.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{FreeOutcome, Heap, SiteHash, SitePair};
//! use xt_correct::CorrectingHeap;
//! use xt_diehard::{DieHardConfig, DieHardHeap};
//! use xt_patch::PatchTable;
//!
//! # fn main() -> Result<(), xt_alloc::HeapError> {
//! let mut patches = PatchTable::new();
//! let site = SiteHash::from_raw(0xA110C);
//! patches.add_pad(site, 6); // the Squid patch: 6 extra bytes
//!
//! let inner = DieHardHeap::new(DieHardConfig::with_seed(1));
//! let mut heap = CorrectingHeap::new(inner, patches);
//! let p = heap.malloc(10, site)?;
//! // The object can safely take a 6-byte overflow now.
//! assert!(heap.usable_size(p).unwrap() >= 16);
//! assert_eq!(heap.stats().pads_applied, 1);
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use xt_alloc::{AllocTime, FreeOutcome, Heap, HeapError, SiteHash, SitePair};
use xt_arena::{Addr, Arena};
use xt_patch::PatchTable;

/// One queued deallocation: released when the clock reaches `due`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct DeferredFree {
    due: AllocTime,
    ptr: Addr,
    site: SiteHash,
}

/// Space-overhead accounting for applied corrections (§7.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorrectionStats {
    /// Allocations that received a pad.
    pub pads_applied: u64,
    /// Total pad bytes added across all allocations.
    pub bytes_padded: u64,
    /// Maximum pad bytes attached to simultaneously-live objects.
    pub peak_padded_bytes: u64,
    /// Frees pushed through the deferral queue.
    pub frees_deferred: u64,
    /// Total *drag*: Σ (object bytes × ticks of deferral actually served).
    pub total_drag_bytes_ticks: u64,
    /// Maximum bytes parked in the deferral queue at once.
    pub peak_deferred_bytes: u64,
}

/// The correcting allocator: pads + deferrals over any inner [`Heap`].
#[derive(Debug)]
pub struct CorrectingHeap<H> {
    inner: H,
    patches: PatchTable,
    queue: BinaryHeap<Reverse<DeferredFree>>,
    /// Pointers currently parked in the queue, to keep app-level double
    /// frees of a deferred object benign.
    parked: HashSet<Addr>,
    stats: CorrectionStats,
    live_padded_bytes: u64,
    parked_bytes: u64,
}

impl<H: Heap> CorrectingHeap<H> {
    /// Wraps `inner`, applying `patches`.
    #[must_use]
    pub fn new(inner: H, patches: PatchTable) -> Self {
        CorrectingHeap {
            inner,
            patches,
            queue: BinaryHeap::new(),
            parked: HashSet::new(),
            stats: CorrectionStats::default(),
            live_padded_bytes: 0,
            parked_bytes: 0,
        }
    }

    /// Wraps `inner` with no patches (they can be hot-loaded later).
    #[must_use]
    pub fn unpatched(inner: H) -> Self {
        Self::new(inner, PatchTable::new())
    }

    /// The wrapped allocator.
    #[must_use]
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Mutable access to the wrapped allocator (e.g. to poll DieFast
    /// signals or arm breakpoints).
    pub fn inner_mut(&mut self) -> &mut H {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner heap.
    #[must_use]
    pub fn into_inner(self) -> H {
        self.inner
    }

    /// The active patch table.
    #[must_use]
    pub fn patches(&self) -> &PatchTable {
        &self.patches
    }

    /// Hot-reloads the patch table (§3.4: "subsequent allocations in the
    /// same process will be patched on-the-fly without interrupting
    /// execution").
    pub fn reload_patches(&mut self, patches: PatchTable) {
        self.patches = patches;
    }

    /// Space-overhead statistics.
    #[must_use]
    pub fn stats(&self) -> CorrectionStats {
        self.stats
    }

    /// Number of frees currently parked in the deferral queue.
    #[must_use]
    pub fn deferred_len(&self) -> usize {
        self.queue.len()
    }

    /// Releases every queue entry due at or before `now`.
    fn drain_due(&mut self, now: AllocTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.due > now {
                break;
            }
            let Reverse(entry) = self.queue.pop().expect("peeked entry");
            self.parked.remove(&entry.ptr);
            if let Some(size) = self.inner.usable_size(entry.ptr) {
                self.parked_bytes = self.parked_bytes.saturating_sub(size as u64);
            }
            self.inner.free(entry.ptr, entry.site);
        }
    }

    /// Immediately releases all deferred frees regardless of due time
    /// (used at orderly shutdown; not part of the paper's algorithm).
    pub fn flush_deferred(&mut self) {
        self.drain_due(AllocTime::from_raw(u64::MAX));
    }
}

impl<H: Heap> Heap for CorrectingHeap<H> {
    /// `correcting_malloc` (Fig. 6): free deferred objects that have come
    /// due, look up the pad for this allocation site, and forward the
    /// padded request.
    fn malloc(&mut self, size: usize, site: SiteHash) -> Result<Addr, HeapError> {
        // The inner malloc will advance the clock to `now + 1`; entries due
        // then are released first, exactly like Fig. 6's `clock++` followed
        // by the drain loop.
        self.drain_due(self.inner.clock() + 1);
        let pad = self.patches.pad_for(site) as usize;
        let ptr = self.inner.malloc(size + pad, site)?;
        if pad > 0 {
            self.stats.pads_applied += 1;
            self.stats.bytes_padded += pad as u64;
            self.live_padded_bytes += pad as u64;
            self.stats.peak_padded_bytes = self.stats.peak_padded_bytes.max(self.live_padded_bytes);
        }
        Ok(ptr)
    }

    /// `correcting_free` (Fig. 6): look up the (alloc site, free site)
    /// deferral; either free now or park the pointer until its due time.
    fn free(&mut self, ptr: Addr, site: SiteHash) -> FreeOutcome {
        if self.parked.contains(&ptr) {
            // The application freed an object whose release is already
            // scheduled; like any double free, this is benign.
            return FreeOutcome::DoubleFreeIgnored;
        }
        let Some(alloc_site) = self.inner.alloc_site_of(ptr) else {
            return self.inner.free(ptr, site);
        };
        let pad = self.patches.pad_for(alloc_site) as u64;
        if pad > 0 {
            self.live_padded_bytes = self.live_padded_bytes.saturating_sub(pad);
        }
        let defer = self.patches.deferral_for(SitePair::new(alloc_site, site));
        if defer == 0 {
            return self.inner.free(ptr, site);
        }
        let due = self.inner.clock() + defer;
        let size = self.inner.usable_size(ptr).unwrap_or(0) as u64;
        self.queue.push(Reverse(DeferredFree { due, ptr, site }));
        self.parked.insert(ptr);
        self.stats.frees_deferred += 1;
        self.stats.total_drag_bytes_ticks += size * defer;
        self.parked_bytes += size;
        self.stats.peak_deferred_bytes = self.stats.peak_deferred_bytes.max(self.parked_bytes);
        FreeOutcome::Deferred { until: due }
    }

    fn arena(&self) -> &Arena {
        self.inner.arena()
    }

    fn arena_mut(&mut self) -> &mut Arena {
        self.inner.arena_mut()
    }

    fn clock(&self) -> AllocTime {
        self.inner.clock()
    }

    fn usable_size(&self, ptr: Addr) -> Option<usize> {
        self.inner.usable_size(ptr)
    }

    fn alloc_site_of(&self, ptr: Addr) -> Option<SiteHash> {
        self.inner.alloc_site_of(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_diehard::{DieHardConfig, DieHardHeap};

    const ALLOC_SITE: SiteHash = SiteHash::from_raw(0xA1);
    const FREE_SITE: SiteHash = SiteHash::from_raw(0xF1);

    fn heap_with(patches: PatchTable) -> CorrectingHeap<DieHardHeap> {
        CorrectingHeap::new(DieHardHeap::new(DieHardConfig::with_seed(5)), patches)
    }

    #[test]
    fn pads_enlarge_only_patched_sites() {
        let mut patches = PatchTable::new();
        patches.add_pad(ALLOC_SITE, 20);
        let mut h = heap_with(patches);
        let padded = h.malloc(16, ALLOC_SITE).unwrap();
        let plain = h.malloc(16, FREE_SITE).unwrap();
        // 16 + 20 = 36 → 64-byte class; unpatched stays in the 16-byte class.
        assert_eq!(h.usable_size(padded), Some(64));
        assert_eq!(h.usable_size(plain), Some(16));
        assert_eq!(h.stats().pads_applied, 1);
        assert_eq!(h.stats().bytes_padded, 20);
    }

    #[test]
    fn overflow_into_pad_is_contained() {
        let mut patches = PatchTable::new();
        patches.add_pad(ALLOC_SITE, 6);
        let mut h = heap_with(patches);
        let p = h.malloc(10, ALLOC_SITE).unwrap();
        // The application overflows 6 bytes past its requested 10: all
        // writes stay inside the padded slot.
        h.arena_mut().write_bytes(p, &[7u8; 16]).unwrap();
        assert_eq!(h.free(p, FREE_SITE), FreeOutcome::Freed);
    }

    #[test]
    fn matching_frees_are_deferred_until_due() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 3);
        let mut h = heap_with(patches);
        let p = h.malloc(16, ALLOC_SITE).unwrap();
        h.arena_mut().write_u64(p, 42).unwrap();
        let outcome = h.free(p, FREE_SITE);
        assert_eq!(
            outcome,
            FreeOutcome::Deferred {
                until: AllocTime::from_raw(4)
            }
        );
        // The "dangling" pointer still reads valid data...
        assert_eq!(h.arena().read_u64(p).unwrap(), 42);
        assert_eq!(h.deferred_len(), 1);
        // ...until 3 more allocations pass.
        h.malloc(16, FREE_SITE).unwrap(); // t2
        h.malloc(16, FREE_SITE).unwrap(); // t3
        assert_eq!(h.deferred_len(), 1, "not due yet");
        h.malloc(16, FREE_SITE).unwrap(); // t4 → due
        assert_eq!(h.deferred_len(), 0);
        assert_eq!(h.inner().live_objects(), 3);
    }

    #[test]
    fn non_matching_site_pairs_free_immediately() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 10);
        let mut h = heap_with(patches);
        let p = h.malloc(16, ALLOC_SITE).unwrap();
        // Freed from a different site: no deferral.
        assert_eq!(h.free(p, SiteHash::from_raw(0x99)), FreeOutcome::Freed);
        assert_eq!(h.deferred_len(), 0);
    }

    #[test]
    fn double_free_of_parked_pointer_is_benign() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 5);
        let mut h = heap_with(patches);
        let p = h.malloc(16, ALLOC_SITE).unwrap();
        assert!(h.free(p, FREE_SITE).accepted());
        assert_eq!(h.free(p, FREE_SITE), FreeOutcome::DoubleFreeIgnored);
        assert_eq!(h.deferred_len(), 1, "still parked exactly once");
    }

    #[test]
    fn hot_reload_applies_to_subsequent_allocations() {
        let mut h = heap_with(PatchTable::new());
        let before = h.malloc(16, ALLOC_SITE).unwrap();
        assert_eq!(h.usable_size(before), Some(16));
        let mut patches = PatchTable::new();
        patches.add_pad(ALLOC_SITE, 17);
        h.reload_patches(patches);
        let after = h.malloc(16, ALLOC_SITE).unwrap();
        assert_eq!(h.usable_size(after), Some(64), "patched on the fly");
    }

    #[test]
    fn flush_releases_everything() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 1_000_000);
        let mut h = heap_with(patches);
        for _ in 0..10 {
            let p = h.malloc(16, ALLOC_SITE).unwrap();
            h.free(p, FREE_SITE);
        }
        assert_eq!(h.deferred_len(), 10);
        h.flush_deferred();
        assert_eq!(h.deferred_len(), 0);
        assert_eq!(h.inner().live_objects(), 0);
    }

    #[test]
    fn drag_accounting_matches_paper_example() {
        // §6.2's example: one 256-byte object deferred for 4 deallocations…
        // here we check the bytes × ticks bookkeeping directly.
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 4);
        let mut h = heap_with(patches);
        let p = h.malloc(256, ALLOC_SITE).unwrap();
        h.free(p, FREE_SITE);
        assert_eq!(h.stats().frees_deferred, 1);
        assert_eq!(h.stats().total_drag_bytes_ticks, 256 * 4);
        assert_eq!(h.stats().peak_deferred_bytes, 256);
    }

    #[test]
    fn works_with_multiple_queued_deadlines() {
        let mut patches = PatchTable::new();
        patches.add_deferral(SitePair::new(ALLOC_SITE, FREE_SITE), 2);
        patches.add_deferral(SitePair::new(ALLOC_SITE, SiteHash::from_raw(0xF2)), 6);
        let mut h = heap_with(patches);
        let a = h.malloc(16, ALLOC_SITE).unwrap();
        let b = h.malloc(16, ALLOC_SITE).unwrap();
        h.free(a, FREE_SITE); // due t4
        h.free(b, SiteHash::from_raw(0xF2)); // due t8
        h.malloc(16, FREE_SITE).unwrap(); // t3
        h.malloc(16, FREE_SITE).unwrap(); // t4 → a released
        assert_eq!(h.deferred_len(), 1);
        for _ in 0..4 {
            h.malloc(16, FREE_SITE).unwrap(); // t5..t8 → b released
        }
        assert_eq!(h.deferred_len(), 0);
    }

    #[test]
    fn unpatched_wrapper_is_transparent() {
        let mut h = CorrectingHeap::unpatched(DieHardHeap::new(DieHardConfig::with_seed(6)));
        let p = h.malloc(32, ALLOC_SITE).unwrap();
        assert_eq!(h.alloc_site_of(p), Some(ALLOC_SITE));
        assert_eq!(h.free(p, FREE_SITE), FreeOutcome::Freed);
        assert_eq!(h.stats(), CorrectionStats::default());
        let _ = h.into_inner();
    }
}
