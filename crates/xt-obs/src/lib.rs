//! Lock-cheap service observability.
//!
//! Every long-lived service in this reproduction (the pool front-end,
//! the fleet aggregation service, the network front door) needs the
//! same three instruments:
//!
//! - **monotonic [`Counter`]s** and **[`Gauge`]s** — single atomics,
//!   wait-free on the hot path;
//! - **[`Histogram`]s** — fixed power-of-two latency buckets with
//!   atomic per-bucket counts, an exact atomic max, and lock-free
//!   recording. Two histograms over the same scheme **merge** by
//!   bucket-wise addition, so per-shard or per-connection histograms
//!   fold into one fleet-wide distribution without coordination;
//! - a **[`Registry`]** of named instruments whose [`RegistrySnapshot`]
//!   renders deterministically (name-sorted, fixed formatting), so two
//!   snapshots of identical state produce identical text.
//!
//! Timing data is *observability only*: it must never feed the
//! deterministic outcome digests the rest of the workspace pins —
//! nothing in this crate is consumed by any digest path.
//!
//! The crate also hosts [`TokenBucket`], the deterministic admission
//! controller the fleet service uses for per-client rate limiting.
//! Refill is driven by *attempts* (logical ticks), not wall-clock
//! time, with a seeded initial phase — so identical request sequences
//! produce identical admit/reject decisions on every run, which is
//! what lets rate-limit behaviour be tested exactly and keeps the
//! house determinism invariant intact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of power-of-two histogram buckets. Bucket `i` holds values
/// whose bit length is `i` (bucket 0: the value 0; bucket `i`:
/// `[2^(i-1), 2^i)`); the last bucket absorbs everything larger.
/// 40 buckets cover nanosecond latencies up to `2^39` ns ≈ 550 s.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The bucket a value lands in: its bit length, clamped to the last
/// bucket.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, used as the percentile
/// estimate for samples that landed there.
#[inline]
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A monotonic counter. Wait-free increment; never decrements.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, live
/// connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over power-of-two nanosecond
/// buckets. Recording is lock-free: one relaxed bucket increment plus
/// an atomic `fetch_max` for the exact maximum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample (typically a latency in nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough point-in-time snapshot. Concurrent
    /// recorders may land between bucket reads; counts are monotone so
    /// the snapshot is always a valid (possibly slightly stale)
    /// distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot: mergeable, and the thing
/// percentiles are computed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact maximum recorded sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges another snapshot into this one: bucket-wise addition
    /// plus max-of-maxes. Associative, commutative, count-preserving —
    /// the property tests pin all three.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
    }

    /// The estimated value at quantile `q` in `[0, 1]`: the upper
    /// bound of the bucket where the cumulative count crosses
    /// `ceil(q * count)`, clamped to the exact max. Returns 0 for an
    /// empty histogram. Monotone in `q` by construction, and never
    /// exceeds [`max`](Self::max) — so `p50 <= p95 <= p99 <= max`
    /// always holds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without float rounding surprises at q = 1.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A named collection of instruments. Instrument creation takes a
/// lock (cold path, once per instrument per component); recording
/// through the returned `Arc` handles touches only atomics.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.lock().gauges.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.lock().histograms.entry(name.to_string()).or_default())
    }

    /// A point-in-time snapshot of every instrument, name-sorted.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time, name-sorted snapshot of a whole registry.
///
/// Deterministic by construction: rendering the same snapshot twice
/// gives identical text, and two snapshots of identical instrument
/// states are equal. The network layer ships this type over the wire
/// (the encoding lives with the other wire codecs in `xt-net`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// True if no instrument was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prefixes every instrument name with `prefix` — how a server
    /// namespaces the registries of its layered components before
    /// merging them into one wire snapshot.
    #[must_use]
    pub fn prefixed(mut self, prefix: &str) -> Self {
        for (name, _) in &mut self.counters {
            *name = format!("{prefix}{name}");
        }
        for (name, _) in &mut self.gauges {
            *name = format!("{prefix}{name}");
        }
        for (name, _) in &mut self.histograms {
            *name = format!("{prefix}{name}");
        }
        self
    }

    /// Merges `other` into this snapshot. Same-named counters and
    /// histograms aggregate (sum / bucket-wise merge); same-named
    /// gauges keep the later value. The result stays name-sorted.
    pub fn merge(&mut self, other: RegistrySnapshot) {
        fn merge_sorted<V>(
            dst: &mut Vec<(String, V)>,
            src: Vec<(String, V)>,
            fold: impl Fn(&mut V, V),
        ) {
            for (name, value) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
                    Ok(i) => fold(&mut dst[i].1, value),
                    Err(i) => dst.insert(i, (name, value)),
                }
            }
        }
        merge_sorted(&mut self.counters, other.counters, |a, b| *a += b);
        merge_sorted(&mut self.gauges, other.gauges, |a, b| *a = b);
        merge_sorted(&mut self.histograms, other.histograms, |a, b| a.merge(&b));
    }

    /// The histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Deterministic text rendering: one line per instrument, sorted
    /// by kind then name, fixed formatting. Histogram lines report
    /// count, p50/p95/p99 and max in microseconds (latencies are
    /// recorded in nanoseconds).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge     {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} p50={}us p95={}us p99={}us max={}us",
                h.count(),
                h.p50() / 1_000,
                h.p95() / 1_000,
                h.p99() / 1_000,
                h.max / 1_000,
            );
        }
        out
    }
}

/// Configuration for a deterministic [`TokenBucket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenBucketConfig {
    /// Bucket capacity: how many requests a quiet client may burst.
    pub burst: u32,
    /// Refill rate numerator: `refill_num / refill_den` tokens are
    /// earned per *attempt* (the logical tick), so a client's
    /// steady-state admitted fraction converges to this ratio.
    pub refill_num: u32,
    /// Refill rate denominator (must be nonzero).
    pub refill_den: u32,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        // Burst 32, then 1 admit per 8 attempts in steady state.
        TokenBucketConfig {
            burst: 32,
            refill_num: 1,
            refill_den: 8,
        }
    }
}

/// A deterministic token bucket.
///
/// Unlike wall-clock buckets, refill here is driven by **attempts**:
/// every call to [`try_admit`](Self::try_admit) advances an integer
/// accumulator by `refill_num`; each time it crosses `refill_den` a
/// token is minted (capped at `burst`). The `seed` only sets the
/// accumulator's initial phase, de-synchronising many clients' mint
/// points without introducing nondeterminism: the same seed and the
/// same attempt sequence always yield the same admit/reject sequence.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    config: TokenBucketConfig,
    tokens: u32,
    acc: u64,
    admitted: u64,
    rejected: u64,
}

impl TokenBucket {
    /// A full bucket whose refill phase is derived from `seed`.
    #[must_use]
    pub fn new(config: TokenBucketConfig, seed: u64) -> Self {
        let den = u64::from(config.refill_den.max(1));
        TokenBucket {
            config,
            tokens: config.burst,
            acc: splitmix_finalize(seed) % den,
            admitted: 0,
            rejected: 0,
        }
    }

    /// One admission attempt: refills by the per-attempt rate, then
    /// spends a token if one is available.
    pub fn try_admit(&mut self) -> bool {
        let den = u64::from(self.config.refill_den.max(1));
        self.acc += u64::from(self.config.refill_num);
        if self.acc >= den {
            let minted = u32::try_from(self.acc / den).unwrap_or(u32::MAX);
            self.acc %= den;
            self.tokens = self.tokens.saturating_add(minted).min(self.config.burst);
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> u32 {
        self.tokens
    }

    /// Attempts admitted over this bucket's lifetime.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Attempts rejected over this bucket's lifetime.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

/// SplitMix64 finalizer (the workspace's house seed-mixing function).
#[must_use]
fn splitmix_finalize(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let reg = Registry::new();
        let c = reg.counter("jobs");
        c.add(3);
        c.incr();
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(c.get(), 4);
        assert_eq!(g.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs"), Some(4));
        assert_eq!(snap.gauges, vec![("depth".to_string(), 3)]);
    }

    #[test]
    fn same_name_returns_the_same_instrument() {
        let reg = Registry::new();
        reg.counter("a").incr();
        reg.counter("a").incr();
        assert_eq!(reg.counter("a").get(), 2);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = Histogram::default();
        for v in [100u64, 200, 300, 400, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max, 10_000);
        assert!(s.p50() >= 100, "p50 {} below every sample", s.p50());
        assert!(s.p99() <= s.max);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!((s.p50(), s.p95(), s.p99(), s.max), (0, 0, 0, 0));
    }

    #[test]
    fn render_text_is_deterministic_and_sorted() {
        let reg = Registry::new();
        reg.counter("z/last").add(1);
        reg.counter("a/first").add(2);
        reg.histogram("m/mid").record(1_500);
        let a = reg.snapshot();
        let b = reg.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.render_text(), b.render_text());
        let text = a.render_text();
        assert!(text.find("a/first").unwrap() < text.find("z/last").unwrap());
        assert!(text.contains("histogram m/mid count=1"));
    }

    #[test]
    fn prefixed_merge_namespaces_components() {
        let fleet = Registry::new();
        fleet.counter("reports").add(7);
        let net = Registry::new();
        net.counter("frames_in").add(2);
        let mut merged = fleet.snapshot().prefixed("fleet/");
        merged.merge(net.snapshot().prefixed("net/"));
        assert_eq!(merged.counter("fleet/reports"), Some(7));
        assert_eq!(merged.counter("net/frames_in"), Some(2));
    }

    #[test]
    fn merge_aggregates_same_named_instruments() {
        let a = Registry::new();
        a.counter("n").add(1);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("n").add(2);
        b.histogram("h").record(1_000_000);
        let mut m = a.snapshot();
        m.merge(b.snapshot());
        assert_eq!(m.counter("n"), Some(3));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max, 1_000_000);
    }

    #[test]
    fn token_bucket_burst_then_steady_state() {
        let config = TokenBucketConfig {
            burst: 4,
            refill_num: 1,
            refill_den: 4,
        };
        let mut bucket = TokenBucket::new(config, 0);
        // The burst is admitted (refill may stretch it by the odd
        // minted token, never shrink it).
        let first: Vec<bool> = (0..4).map(|_| bucket.try_admit()).collect();
        assert!(first.iter().all(|&ok| ok), "burst must admit: {first:?}");
        // Long steady state converges to the refill ratio.
        let admitted = (0..4000).filter(|_| bucket.try_admit()).count();
        let ratio = admitted as f64 / 4000.0;
        assert!(
            (ratio - 0.25).abs() < 0.01,
            "steady-state admit ratio {ratio} far from 1/4"
        );
        assert_eq!(bucket.admitted() + bucket.rejected(), 4004);
    }

    #[test]
    fn token_bucket_is_deterministic_per_seed() {
        let config = TokenBucketConfig::default();
        let run = |seed: u64| -> Vec<bool> {
            let mut b = TokenBucket::new(config, seed);
            (0..200).map(|_| b.try_admit()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same decisions");
        // Different seeds shift the mint phase but not the rate.
        let a = run(1).iter().filter(|&&x| x).count();
        let b = run(2).iter().filter(|&&x| x).count();
        assert!((a as i64 - b as i64).abs() <= 1);
    }
}
