//! Property tests for the observability primitives: histogram merge
//! is associative, order-insensitive, and count-preserving; quantiles
//! are ordered and bounded; empty snapshots never panic; and the
//! deterministic token bucket admits bursts, rejects floods, and
//! counts both exactly.

use proptest::prelude::*;

use xt_obs::{Histogram, HistogramSnapshot, TokenBucket, TokenBucketConfig};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        a in samples_strategy(),
        b in samples_strategy(),
        c in samples_strategy(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_order_insensitive(a in samples_strategy(), b in samples_strategy()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_preserves_counts_and_equals_pooled_recording(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        // Merging per-shard histograms is indistinguishable from
        // recording every sample into one histogram.
        let pooled: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&pooled));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(samples in samples_strategy()) {
        let s = snapshot_of(&samples);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        prop_assert!(p99 <= s.max, "p99 {p99} > max {}", s.max);
        if let Some(&min) = samples.iter().min() {
            // Every quantile estimate sits within the recorded range.
            prop_assert!(s.quantile(0.0) <= s.max);
            prop_assert!(s.max >= min);
        }
    }

    #[test]
    fn empty_histogram_snapshot_never_panics(q in 0.0f64..=1.0) {
        let s = HistogramSnapshot::default();
        prop_assert_eq!(s.count(), 0);
        prop_assert_eq!(s.quantile(q), 0);
        prop_assert_eq!(s.max, 0);
        let mut merged = s.clone();
        merged.merge(&HistogramSnapshot::default());
        prop_assert_eq!(merged, s);
    }

    #[test]
    fn token_bucket_decisions_replay_exactly(
        seed in any::<u64>(),
        burst in 1u32..64,
        num in 1u32..8,
        den in 1u32..16,
        attempts in 1usize..500,
    ) {
        let config = TokenBucketConfig { burst, refill_num: num, refill_den: den };
        let run = || {
            let mut bucket = TokenBucket::new(config, seed);
            (0..attempts).map(|_| bucket.try_admit()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn token_bucket_counters_partition_attempts(
        seed in any::<u64>(),
        attempts in 0usize..2000,
    ) {
        let mut bucket = TokenBucket::new(TokenBucketConfig::default(), seed);
        let admitted = (0..attempts).filter(|_| bucket.try_admit()).count() as u64;
        prop_assert_eq!(bucket.admitted(), admitted);
        prop_assert_eq!(bucket.admitted() + bucket.rejected(), attempts as u64);
        // Steady-state ceiling: burst plus the refill earnings, with
        // one bucket's slack for the seeded initial phase.
        let config = TokenBucketConfig::default();
        let earned = (attempts as u64 * u64::from(config.refill_num))
            / u64::from(config.refill_den);
        prop_assert!(
            admitted <= u64::from(config.burst) + earned + 1,
            "admitted {admitted} exceeds burst {} + earned {earned} + 1",
            config.burst
        );
    }
}

#[test]
fn flood_is_rejected_while_quiet_burst_is_not() {
    let config = TokenBucketConfig {
        burst: 16,
        refill_num: 1,
        refill_den: 8,
    };
    // A flooding client: far more attempts than its refill covers.
    let mut flood = TokenBucket::new(config, 1);
    let flood_admitted = (0..1024).filter(|_| flood.try_admit()).count();
    assert!(flood.rejected() > 800, "flood mostly rejected");
    assert!(flood_admitted < 200);
    // A well-behaved client staying inside its burst: never rejected.
    let mut quiet = TokenBucket::new(config, 2);
    for _ in 0..16 {
        assert!(quiet.try_admit(), "in-burst client must be admitted");
    }
    assert_eq!(quiet.rejected(), 0);
}
