//! Seed-deterministic memory-error injection (paper §7.2).
//!
//! The paper evaluates Exterminator by injecting faults with "the fault
//! injector that accompanies the DieHard distribution": buffer overflows
//! and dangling-pointer errors triggered deterministically from a random
//! seed, so that the same seed produces the same error in every (re-)run —
//! the property iterative mode's replay depends on.
//!
//! [`FaultyHeap`] wraps any [`Heap`] and injects:
//!
//! * **Buffer overflows** — when the trigger allocation completes, the
//!   injector performs the buggy application's write: `delta` bytes
//!   starting immediately past the object's *requested* size. Unpatched,
//!   this tramples whatever the randomized layout put there; once the
//!   correcting allocator pads the site, the same write lands inside the
//!   enlarged object and is contained (which is how experiments verify
//!   patches).
//! * **Dangling frees** — the trigger allocation's object is freed
//!   `lag` allocations later through [`INJECTED_FREE_SITE`], while the
//!   application continues to use it. The application's own eventual free
//!   becomes a benign double free.
//!
//! Injection happens *between* the application and the allocator stack, so
//! pads and deferrals below observe exactly what they would observe from a
//! genuinely buggy program.

use std::fmt;

use xt_alloc::{AllocTime, FreeOutcome, Heap, HeapError, SiteHash};
use xt_arena::{Addr, Arena, MemFault, Rng};

/// The synthetic deallocation site of injected premature frees.
pub const INJECTED_FREE_SITE: SiteHash = SiteHash::from_raw(0xFA17_FEED);

/// What kind of error to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Write `delta` bytes of `fill` starting at the end of the trigger
    /// object's requested extent.
    BufferOverflow {
        /// Overflow length in bytes (the paper uses 4, 20, and 36).
        delta: u32,
        /// Byte value written (a stand-in for application data).
        fill: u8,
    },
    /// Free the trigger object `lag` allocations after its creation.
    DanglingFree {
        /// Allocations between creation and the premature free.
        lag: u64,
    },
}

/// A fault to inject: a kind plus the allocation ordinal that triggers it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The error to inject.
    pub kind: FaultKind,
    /// Fires when the allocation with this clock value completes.
    pub trigger: AllocTime,
}

impl FaultSpec {
    /// Chooses a random trigger in `[lo, hi)` from `seed` — the same seed
    /// always yields the same fault, as with the DieHard injector.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn random(kind: FaultKind, seed: u64, lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty trigger range");
        let mut rng = Rng::new(seed ^ 0xFA_u64.rotate_left(32));
        FaultSpec {
            kind,
            trigger: AllocTime::from_raw(lo + rng.below(hi - lo)),
        }
    }
}

/// A record of what the injector actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedEvent {
    /// The overflow write landed.
    OverflowWritten {
        /// Clock at the write.
        at: AllocTime,
        /// The overflowing object.
        culprit: Addr,
        /// First byte written.
        start: Addr,
        /// Bytes written.
        len: u32,
    },
    /// The overflow write faulted (ran off the miniheap) and the simulated
    /// process would have crashed; the fault is recorded, not swallowed.
    OverflowFaulted {
        /// Clock at the attempted write.
        at: AllocTime,
        /// The fault the write produced.
        fault: MemFault,
    },
    /// The premature free was issued.
    PrematureFree {
        /// Clock at the free.
        at: AllocTime,
        /// The object freed early.
        ptr: Addr,
        /// What the underlying allocator did with it.
        outcome: FreeOutcome,
    },
    /// The application freed the target before the premature free came
    /// due, so the injection was cancelled (a benign injector seed — the
    /// paper discards these).
    DanglingCancelled {
        /// Clock at the application's own free.
        at: AllocTime,
        /// The object that was freed normally.
        ptr: Addr,
    },
    /// The application's own (original) free of the dangled object was
    /// suppressed: a dangling bug *moves* a free earlier, it does not add
    /// a second one.
    AppFreeSuppressed {
        /// Clock at the suppressed free.
        at: AllocTime,
        /// The dangled object.
        ptr: Addr,
    },
}

impl fmt::Display for InjectedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedEvent::OverflowWritten {
                at,
                culprit,
                start,
                len,
            } => write!(f, "overflow of {len}B from {culprit} at {start} ({at})"),
            InjectedEvent::OverflowFaulted { at, fault } => {
                write!(f, "overflow faulted at {at}: {fault}")
            }
            InjectedEvent::PrematureFree { at, ptr, outcome } => {
                write!(f, "premature free of {ptr} at {at} ({outcome:?})")
            }
            InjectedEvent::DanglingCancelled { at, ptr } => {
                write!(
                    f,
                    "dangling injection cancelled at {at} ({ptr} freed normally)"
                )
            }
            InjectedEvent::AppFreeSuppressed { at, ptr } => {
                write!(f, "application free of dangled {ptr} suppressed at {at}")
            }
        }
    }
}

/// A heap wrapper that injects one memory error per run.
///
/// # Example
///
/// ```
/// use xt_alloc::{AllocTime, Heap, SiteHash};
/// use xt_diehard::{DieHardConfig, DieHardHeap};
/// use xt_faults::{FaultKind, FaultSpec, FaultyHeap};
///
/// # fn main() -> Result<(), xt_alloc::HeapError> {
/// let spec = FaultSpec {
///     kind: FaultKind::BufferOverflow { delta: 6, fill: 0xEE },
///     trigger: AllocTime::from_raw(2),
/// };
/// let mut heap = FaultyHeap::new(DieHardHeap::new(DieHardConfig::with_seed(1)), Some(spec));
/// let _a = heap.malloc(16, SiteHash::from_raw(1))?; // clock 1: nothing
/// let _b = heap.malloc(16, SiteHash::from_raw(2))?; // clock 2: overflow!
/// assert_eq!(heap.events().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultyHeap<H> {
    inner: H,
    spec: Option<FaultSpec>,
    pending_free: Option<(Addr, AllocTime)>,
    /// Once the premature free has fired, the application's own free of
    /// this pointer is suppressed (the bug *moved* the free, §7.2).
    dangled: Option<Addr>,
    events: Vec<InjectedEvent>,
}

impl<H: Heap> FaultyHeap<H> {
    /// Wraps `inner`, injecting `spec` (or nothing if `None`).
    #[must_use]
    pub fn new(inner: H, spec: Option<FaultSpec>) -> Self {
        FaultyHeap {
            inner,
            spec,
            pending_free: None,
            dangled: None,
            events: Vec::new(),
        }
    }

    /// The wrapped heap.
    #[must_use]
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Mutable access to the wrapped heap.
    pub fn inner_mut(&mut self) -> &mut H {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner heap.
    #[must_use]
    pub fn into_inner(self) -> H {
        self.inner
    }

    /// Everything the injector has done so far.
    #[must_use]
    pub fn events(&self) -> &[InjectedEvent] {
        &self.events
    }

    /// The configured fault.
    #[must_use]
    pub fn spec(&self) -> Option<FaultSpec> {
        self.spec
    }

    fn fire_dangling_if_due(&mut self) {
        let now = self.inner.clock();
        if let Some((ptr, due)) = self.pending_free {
            if now >= due {
                let outcome = self.inner.free(ptr, INJECTED_FREE_SITE);
                self.events.push(InjectedEvent::PrematureFree {
                    at: now,
                    ptr,
                    outcome,
                });
                self.pending_free = None;
                self.dangled = Some(ptr);
            }
        }
    }
}

impl<H: Heap> Heap for FaultyHeap<H> {
    fn malloc(&mut self, size: usize, site: SiteHash) -> Result<Addr, HeapError> {
        let ptr = self.inner.malloc(size, site)?;
        let now = self.inner.clock();
        match self.spec {
            Some(FaultSpec {
                kind: FaultKind::BufferOverflow { delta, fill },
                trigger,
            }) if now == trigger => {
                // The buggy write: `delta` bytes past the requested end.
                let start = ptr + size as u64;
                let bytes = vec![fill; delta as usize];
                match self.inner.arena_mut().write_bytes(start, &bytes) {
                    Ok(()) => self.events.push(InjectedEvent::OverflowWritten {
                        at: now,
                        culprit: ptr,
                        start,
                        len: delta,
                    }),
                    Err(fault) => self
                        .events
                        .push(InjectedEvent::OverflowFaulted { at: now, fault }),
                }
            }
            Some(FaultSpec {
                kind: FaultKind::DanglingFree { lag },
                trigger,
            }) if now == trigger => {
                self.pending_free = Some((ptr, now + lag));
            }
            _ => {}
        }
        self.fire_dangling_if_due();
        Ok(ptr)
    }

    fn free(&mut self, ptr: Addr, site: SiteHash) -> FreeOutcome {
        let now = self.inner.clock();
        // The app freed the target before the injection came due: cancel
        // the injection (benign seed) and free normally.
        if self.pending_free.is_some_and(|(p, _)| p == ptr) {
            self.pending_free = None;
            self.events
                .push(InjectedEvent::DanglingCancelled { at: now, ptr });
            return self.inner.free(ptr, site);
        }
        // The app's original free of the dangled object: suppressed, since
        // the injected bug *moved* this free earlier.
        if self.dangled == Some(ptr) {
            self.dangled = None;
            self.events
                .push(InjectedEvent::AppFreeSuppressed { at: now, ptr });
            return FreeOutcome::Freed;
        }
        self.inner.free(ptr, site)
    }

    fn arena(&self) -> &Arena {
        self.inner.arena()
    }

    fn arena_mut(&mut self) -> &mut Arena {
        self.inner.arena_mut()
    }

    fn clock(&self) -> AllocTime {
        self.inner.clock()
    }

    fn usable_size(&self, ptr: Addr) -> Option<usize> {
        self.inner.usable_size(ptr)
    }

    fn alloc_site_of(&self, ptr: Addr) -> Option<SiteHash> {
        self.inner.alloc_site_of(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_diehard::{DieHardConfig, DieHardHeap, SlotState};

    const SITE: SiteHash = SiteHash::from_raw(0x11);

    fn heap(spec: Option<FaultSpec>) -> FaultyHeap<DieHardHeap> {
        FaultyHeap::new(DieHardHeap::new(DieHardConfig::with_seed(7)), spec)
    }

    #[test]
    fn no_spec_is_transparent() {
        let mut h = heap(None);
        let p = h.malloc(16, SITE).unwrap();
        assert_eq!(h.free(p, SITE), FreeOutcome::Freed);
        assert!(h.events().is_empty());
    }

    #[test]
    fn overflow_fires_exactly_once_at_trigger() {
        let spec = FaultSpec {
            kind: FaultKind::BufferOverflow {
                delta: 4,
                fill: 0xEE,
            },
            trigger: AllocTime::from_raw(3),
        };
        let mut h = heap(Some(spec));
        let mut ptrs = Vec::new();
        for _ in 0..10 {
            ptrs.push(h.malloc(16, SITE).unwrap());
        }
        let events = h.events();
        assert_eq!(events.len(), 1);
        match events[0] {
            InjectedEvent::OverflowWritten {
                at, culprit, len, ..
            } => {
                assert_eq!(at, AllocTime::from_raw(3));
                assert_eq!(culprit, ptrs[2]);
                assert_eq!(len, 4);
                // The bytes really are in the next slot.
                assert_eq!(h.arena().read_bytes(ptrs[2] + 16, 4).unwrap(), &[0xEE; 4]);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn overflow_at_miniheap_edge_faults_without_corruption() {
        // A huge delta shoots past the miniheap's mapped region: the event
        // records the fault (the simulated app would crash).
        let spec = FaultSpec {
            kind: FaultKind::BufferOverflow {
                delta: 1 << 20,
                fill: 1,
            },
            trigger: AllocTime::from_raw(1),
        };
        let mut h = heap(Some(spec));
        h.malloc(16, SITE).unwrap();
        assert!(matches!(
            h.events()[0],
            InjectedEvent::OverflowFaulted { .. }
        ));
    }

    #[test]
    fn dangling_free_fires_after_lag() {
        let spec = FaultSpec {
            kind: FaultKind::DanglingFree { lag: 5 },
            trigger: AllocTime::from_raw(2),
        };
        let mut h = heap(Some(spec));
        let mut ptrs = Vec::new();
        for _ in 0..6 {
            ptrs.push(h.malloc(16, SITE).unwrap());
        }
        assert!(h.events().is_empty(), "not due until clock 7");
        let _ = h.malloc(16, SITE).unwrap(); // clock 7
        let events = h.events();
        assert_eq!(
            events[0],
            InjectedEvent::PrematureFree {
                at: AllocTime::from_raw(7),
                ptr: ptrs[1],
                outcome: FreeOutcome::Freed,
            }
        );
        // The victim slot really is free now.
        let loc = h.inner().location_of(ptrs[1]).unwrap();
        assert_eq!(h.inner().meta(loc).state, SlotState::Free);
        assert_eq!(h.inner().meta(loc).free_site, INJECTED_FREE_SITE);
        // The app's own (original) free is suppressed — the bug moved it
        // earlier; it must never free a recycled slot out from under a new
        // owner.
        let before = h.inner().live_objects();
        assert_eq!(h.free(ptrs[1], SITE), FreeOutcome::Freed);
        assert_eq!(h.inner().live_objects(), before, "suppressed free acted");
        assert!(matches!(
            h.events().last(),
            Some(InjectedEvent::AppFreeSuppressed { .. })
        ));
    }

    #[test]
    fn app_free_before_due_cancels_injection() {
        let spec = FaultSpec {
            kind: FaultKind::DanglingFree { lag: 50 },
            trigger: AllocTime::from_raw(1),
        };
        let mut h = heap(Some(spec));
        let p = h.malloc(16, SITE).unwrap();
        // The app frees the target before the injection comes due.
        assert_eq!(h.free(p, SITE), FreeOutcome::Freed);
        assert!(matches!(
            h.events().last(),
            Some(InjectedEvent::DanglingCancelled { .. })
        ));
        // Time passes; the cancelled injection must never fire.
        for _ in 0..100 {
            h.malloc(16, SITE).unwrap();
        }
        assert!(!h
            .events()
            .iter()
            .any(|e| matches!(e, InjectedEvent::PrematureFree { .. })));
    }

    #[test]
    fn random_spec_is_deterministic_per_seed() {
        let kind = FaultKind::DanglingFree { lag: 10 };
        let a = FaultSpec::random(kind, 42, 100, 5000);
        let b = FaultSpec::random(kind, 42, 100, 5000);
        let c = FaultSpec::random(kind, 43, 100, 5000);
        assert_eq!(a, b);
        assert_ne!(a.trigger, c.trigger);
        assert!(a.trigger >= AllocTime::from_raw(100));
        assert!(a.trigger < AllocTime::from_raw(5000));
    }

    #[test]
    #[should_panic(expected = "empty trigger range")]
    fn random_spec_validates_range() {
        let _ = FaultSpec::random(FaultKind::DanglingFree { lag: 1 }, 1, 5, 5);
    }
}
