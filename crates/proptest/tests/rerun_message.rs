//! The failure contract: a failing property names its deterministic case
//! index and a copy-paste rerun command (ROADMAP: there is no shrinking,
//! so the rerun path must be one paste).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    // Deliberately not #[test]: invoked below under catch_unwind.
    fn always_fails_on_big_x(x in 50u64..100) {
        prop_assert!(x < 50, "x was {}", x);
    }
}

#[test]
fn failure_names_case_index_and_rerun_command() {
    let panic = std::panic::catch_unwind(always_fails_on_big_x)
        .expect_err("property must fail: every generated x is >= 50");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    assert!(
        msg.contains("property always_fails_on_big_x failed at case 0"),
        "missing deterministic case index: {msg}"
    );
    assert!(
        msg.contains("x was "),
        "missing the prop_assert message: {msg}"
    );
    assert!(
        msg.contains("cargo test -p proptest always_fails_on_big_x"),
        "missing copy-paste rerun command: {msg}"
    );
    assert!(
        msg.contains("deterministically"),
        "must explain why the rerun reproduces: {msg}"
    );
}

proptest! {
    /// And the passing path stays silent (the macro change must not
    /// affect successful runs).
    #[test]
    fn passing_properties_still_pass(x in 0u64..50) {
        prop_assert!(x < 50);
    }
}
