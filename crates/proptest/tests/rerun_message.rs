//! The failure contract: a failing property names its deterministic case
//! index, a *minimal* failing case found by the greedy halving shrink,
//! and a copy-paste rerun command.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    // Deliberately not #[test]: invoked below under catch_unwind.
    fn always_fails_on_big_x(x in 50u64..100) {
        prop_assert!(x < 50, "x was {}", x);
    }
}

#[test]
fn failure_names_case_index_and_rerun_command() {
    let panic = std::panic::catch_unwind(always_fails_on_big_x)
        .expect_err("property must fail: every generated x is >= 50");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    assert!(
        msg.contains("property always_fails_on_big_x failed at case 0"),
        "missing deterministic case index: {msg}"
    );
    assert!(
        msg.contains("x was "),
        "missing the prop_assert message: {msg}"
    );
    assert!(
        msg.contains("cargo test -p proptest always_fails_on_big_x"),
        "missing copy-paste rerun command: {msg}"
    );
    assert!(
        msg.contains("deterministically"),
        "must explain why the rerun reproduces: {msg}"
    );
}

proptest! {
    /// And the passing path stays silent (the macro change must not
    /// affect successful runs).
    #[test]
    fn passing_properties_still_pass(x in 0u64..50) {
        prop_assert!(x < 50);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    // Deliberately not #[test]: invoked below under catch_unwind. Fails
    // for every x >= 10, so the halving search must walk the failing
    // value down to exactly 10.
    fn fails_above_threshold(x in 0u64..1000, pad in 0u64..4) {
        let _ = pad;
        prop_assert!(x < 10, "x was {}", x);
    }
}

#[test]
fn failure_shrinks_to_the_minimal_case_by_halving() {
    let panic = std::panic::catch_unwind(fails_above_threshold)
        .expect_err("property must fail: most generated x are >= 10");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    assert!(
        msg.contains("minimal failing inputs after"),
        "missing shrink report: {msg}"
    );
    // The greedy halving search on `0..1000` terminates exactly at the
    // threshold: 10 is the smallest failing value, so the minimal tuple
    // is (10, 0).
    assert!(
        msg.contains("(halving search): (10, 0)"),
        "shrink did not reach the minimal case: {msg}"
    );
    assert!(
        msg.contains("minimal case failure: x was 10"),
        "minimal case's own failure message missing: {msg}"
    );
}

proptest! {
    /// Signed ranges spanning zero must generate in-range (no
    /// sign-extension mis-sizing, no overflow panic in debug builds).
    #[test]
    fn negative_start_ranges_generate_in_range(x in -100i8..100, y in -1000i64..=1000) {
        prop_assert!((-100..100).contains(&x));
        prop_assert!((-1000..=1000).contains(&y));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    // Not #[test]: invoked under catch_unwind. Shrinking over a signed
    // range must halve toward the range *start* (-100), not toward zero,
    // and must not overflow while doing so.
    fn fails_above_signed_threshold(x in -100i8..100) {
        prop_assert!(x < 50, "x was {}", x);
    }
}

#[test]
fn signed_ranges_shrink_to_the_threshold_without_overflow() {
    let panic = std::panic::catch_unwind(fails_above_signed_threshold)
        .expect_err("property must fail: some generated x is >= 50");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    assert!(
        msg.contains("minimal case failure: x was 50"),
        "signed shrink did not reach the threshold: {msg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    // Not #[test]: vectors shrink toward their minimum length while the
    // failure persists.
    fn fails_on_long_vectors(v in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assert!(v.len() < 2, "len was {}", v.len());
    }
}

/// A post-map wrapper the strategy cannot invert: shrinking must happen
/// on the *source* vector, with each candidate re-mapped.
#[derive(Clone, Debug, PartialEq)]
struct Batch(Vec<u16>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    // Not #[test]: invoked under catch_unwind. The mapped-strategy shrink
    // regression — before sources were retained, `prop_map`ped strategies
    // could not shrink at all and the report named whatever case was
    // generated first.
    fn fails_on_mapped_batches(
        b in proptest::collection::vec(0u16..100, 2..32).prop_map(Batch)
    ) {
        prop_assert!(b.0.len() < 2, "batch len was {}", b.0.len());
    }
}

#[test]
fn mapped_strategies_shrink_their_source() {
    let panic = std::panic::catch_unwind(fails_on_mapped_batches)
        .expect_err("property must fail: every generated batch has len >= 2");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    // The source vec shrinks to the minimum length (2) and both elements
    // halve to the range minimum (0); the minimal counterexample is the
    // *mapped* value realized from that minimal source.
    assert!(
        msg.contains("minimal case failure: batch len was 2"),
        "mapped strategy did not shrink to the minimal failing length: {msg}"
    );
    assert!(
        msg.contains("(Batch([0, 0]),)"),
        "mapped strategy did not re-map the minimal source: {msg}"
    );
}

#[test]
fn vectors_shrink_toward_minimal_length() {
    let panic = std::panic::catch_unwind(fails_on_long_vectors)
        .expect_err("property must fail for any vector of length >= 2");
    let msg = panic
        .downcast_ref::<String>()
        .expect("panic payload is the formatted message")
        .clone();
    // Minimal failing length is 2; elements shrink toward 0 as well.
    assert!(
        msg.contains("minimal case failure: len was 2"),
        "vector did not shrink to the minimal failing length: {msg}"
    );
}
