//! Deterministic randomness and per-test configuration.

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An explicit `prop_assert*` failure, with its message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: enough to exercise the state spaces these suites probe
    /// while keeping unoptimized (`cargo test`) runtimes reasonable.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator, seeded deterministically from the test name so
/// every run of a property replays the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds a generator from a test's name (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `[0, n)` for widths up to 2^64 (so inclusive
    /// ranges over the full `u64` domain work).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128(0)");
        (u128::from(self.next_u64()) | (u128::from(self.next_u64()) << 64)) % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::from_name("y").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
