//! Value-generation strategies: ranges, tuples, maps, unions, `any`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree, but generation is split
/// into two phases so that shrinking can operate on *inputs* rather than
/// outputs: [`Strategy::generate_source`] draws a [`Strategy::Source`] —
/// the retained generation witness — and [`Strategy::realize`] turns a
/// source into the finished value. For primitive strategies the source
/// *is* the value; for [`prop_map`](Strategy::prop_map) the source is the
/// *pre-map* value, which is why mapped strategies shrink: the runner
/// shrinks the source through the underlying strategy and re-maps each
/// candidate, never needing to invert the transform.
///
/// Shrinking itself is a lightweight greedy search rather than a tree
/// walk: [`Strategy::shrink_source`] proposes *simpler* source candidates
/// (a halving search toward the strategy's minimum for integers, shorter
/// prefixes for collections, per-component candidates for tuples), and
/// the test runner keeps adopting candidates while they keep failing.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// The retained generation witness shrinking operates on. For
    /// primitive strategies this is `Self::Value`; mapped strategies
    /// retain their *source* strategy's witness instead.
    type Source: Clone;

    /// Draws one generation source.
    fn generate_source(&self, rng: &mut TestRng) -> Self::Source;

    /// Turns a source into the finished value. Must be deterministic: the
    /// same source always realizes to the same value.
    fn realize(&self, source: &Self::Source) -> Self::Value;

    /// Proposes simpler source candidates for a failing case, most
    /// aggressive first. An empty vector means this strategy cannot
    /// shrink (the default).
    fn shrink_source(&self, source: &Self::Source) -> Vec<Self::Source> {
        let _ = source;
        Vec::new()
    }

    /// Generates one finished value (source draw + realize).
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let source = self.generate_source(rng);
        self.realize(&source)
    }

    /// Transforms generated values through `f`. The mapped strategy keeps
    /// `self` as its source strategy, so shrinking works by shrinking the
    /// pre-map value and re-applying `f` — no inversion required.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Source: 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Ties a case-runner closure's argument type to `strategy`'s value type,
/// so the `proptest!` macro can define the closure before the first value
/// exists (plain `|values: &_|` closures cannot be inferred from their
/// body alone).
pub fn case_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), crate::test_runner::TestCaseError>,
{
    run
}

/// A type-erased generation source: the concrete `Strategy::Source` of
/// whichever strategy produced it, behind `Rc<dyn Any>` so boxed
/// strategies can round-trip their own sources through shrinking.
#[derive(Clone)]
pub struct ErasedSource(Rc<dyn std::any::Any>);

impl ErasedSource {
    fn downcast<T: 'static>(&self) -> &T {
        self.0
            .downcast_ref()
            .expect("erased source realized by the strategy that drew it")
    }
}

/// Object-safe strategy surface working on [`ErasedSource`]s; the bridge
/// between the associated-`Source` trait and `dyn` boxing.
trait ErasedStrategy<V> {
    fn generate_source_erased(&self, rng: &mut TestRng) -> ErasedSource;
    fn realize_erased(&self, source: &ErasedSource) -> V;
    fn shrink_source_erased(&self, source: &ErasedSource) -> Vec<ErasedSource>;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S
where
    S::Source: 'static,
{
    fn generate_source_erased(&self, rng: &mut TestRng) -> ErasedSource {
        ErasedSource(Rc::new(self.generate_source(rng)))
    }

    fn realize_erased(&self, source: &ErasedSource) -> S::Value {
        self.realize(source.downcast::<S::Source>())
    }

    fn shrink_source_erased(&self, source: &ErasedSource) -> Vec<ErasedSource> {
        self.shrink_source(source.downcast::<S::Source>())
            .into_iter()
            .map(|s| ErasedSource(Rc::new(s)))
            .collect()
    }
}

/// A type-erased strategy ([`Strategy::boxed`]). Unlike the old alias for
/// `Box<dyn Strategy>`, this carries the inner strategy's source through
/// an [`ErasedSource`], so boxed strategies shrink too.
pub struct BoxedStrategy<V> {
    inner: Box<dyn ErasedStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    type Source = ErasedSource;

    fn generate_source(&self, rng: &mut TestRng) -> ErasedSource {
        self.inner.generate_source_erased(rng)
    }

    fn realize(&self, source: &ErasedSource) -> V {
        self.inner.realize_erased(source)
    }

    fn shrink_source(&self, source: &ErasedSource) -> Vec<ErasedSource> {
        self.inner.shrink_source_erased(source)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    /// The *pre-map* witness: shrink the input, re-map the output.
    type Source = S::Source;

    fn generate_source(&self, rng: &mut TestRng) -> S::Source {
        self.inner.generate_source(rng)
    }

    fn realize(&self, source: &S::Source) -> T {
        (self.f)(self.inner.realize(source))
    }

    fn shrink_source(&self, source: &S::Source) -> Vec<S::Source> {
        self.inner.shrink_source(source)
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof!
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    /// Which option was picked, plus that option's own source. Shrinking
    /// stays within the picked option (switching alternatives mid-shrink
    /// would change what failure is being minimized).
    type Source = (usize, ErasedSource);

    fn generate_source(&self, rng: &mut TestRng) -> (usize, ErasedSource) {
        let pick = rng.below(self.options.len() as u64) as usize;
        (pick, self.options[pick].generate_source(rng))
    }

    fn realize(&self, source: &(usize, ErasedSource)) -> V {
        self.options[source.0].realize(&source.1)
    }

    fn shrink_source(&self, source: &(usize, ErasedSource)) -> Vec<(usize, ErasedSource)> {
        self.options[source.0]
            .shrink_source(&source.1)
            .into_iter()
            .map(|s| (source.0, s))
            .collect()
    }
}

/// Halving-search shrink candidates for an integer `v` toward `lo`: the
/// minimum itself, then the midpoint, then the predecessor. Greedy
/// re-testing of these converges like a binary search on the smallest
/// still-failing value. All arithmetic goes through [`ShrinkInt`] in
/// `i128`, so signed ranges spanning zero (e.g. `-100i8..100`) cannot
/// overflow.
fn shrink_toward<T: ShrinkInt>(lo: T, v: T) -> Vec<T> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mid = T::midpoint_toward(lo, v);
    if mid > lo && mid < v {
        out.push(mid);
    }
    let prev = v.pred();
    if prev > lo && prev != mid {
        out.push(prev);
    }
    out
}

/// Overflow-safe integer helpers for [`shrink_toward`]. Every primitive
/// integer the strategies cover fits in `i128`, so the midpoint is
/// computed there.
trait ShrinkInt: Copy + PartialOrd {
    /// `lo + (v - lo) / 2`, computed without overflow.
    fn midpoint_toward(lo: Self, v: Self) -> Self;
    /// `self - 1`; callers guarantee `self > lo ≥ MIN`.
    fn pred(self) -> Self;
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl ShrinkInt for $t {
            fn midpoint_toward(lo: Self, v: Self) -> Self {
                ((lo as i128) + ((v as i128) - (lo as i128)) / 2) as $t
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Source = $t;

            fn generate_source(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Width via i128 and offset via wrapping add, so ranges
                // with a negative start (sign-extension under `as u128`)
                // neither mis-size nor overflow.
                let width = ((self.end as i128) - (self.start as i128)) as u128;
                self.start.wrapping_add(rng.below_u128(width) as $t)
            }

            fn realize(&self, source: &$t) -> $t {
                *source
            }

            fn shrink_source(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            type Source = $t;

            fn generate_source(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = ((hi as i128) - (lo as i128)) as u128 + 1;
                lo.wrapping_add(rng.below_u128(width) as $t)
            }

            fn realize(&self, source: &$t) -> $t {
                *source
            }

            fn shrink_source(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    type Source = f64;

    fn generate_source(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn realize(&self, source: &f64) -> f64 {
        *source
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    type Source = f64;

    fn generate_source(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }

    fn realize(&self, source: &f64) -> f64 {
        *source
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Source = ($($s::Source,)+);

            fn generate_source(&self, rng: &mut TestRng) -> Self::Source {
                ($(self.$idx.generate_source(rng),)+)
            }

            fn realize(&self, source: &Self::Source) -> Self::Value {
                ($(self.$idx.realize(&source.$idx),)+)
            }

            fn shrink_source(&self, source: &Self::Source) -> Vec<Self::Source> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink_source(&source.$idx) {
                        let mut next = source.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy for "any value" of a primitive type — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates uniformly distributed values of a primitive type.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            type Source = $t;

            fn generate_source(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn realize(&self, source: &$t) -> $t {
                *source
            }

            fn shrink_source(&self, value: &$t) -> Vec<$t> {
                if *value > (0 as $t) {
                    shrink_toward(0 as $t, *value)
                } else {
                    Vec::new()
                }
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    type Source = bool;

    fn generate_source(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn realize(&self, source: &bool) -> bool {
        *source
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    type Source = f64;

    fn generate_source(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }

    fn realize(&self, source: &f64) -> f64 {
        *source
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Source = ();

    fn generate_source(&self, _rng: &mut TestRng) {}

    fn realize(&self, _source: &()) -> T {
        self.0.clone()
    }
}
