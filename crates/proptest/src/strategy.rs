//! Value-generation strategies: ranges, tuples, maps, unions, `any`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof!
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.below_u128(width) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.below_u128(width) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy for "any value" of a primitive type — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates uniformly distributed values of a primitive type.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
