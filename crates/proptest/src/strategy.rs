//! Value-generation strategies: ranges, tuples, maps, unions, `any`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree: `generate` produces a
/// finished value directly. Shrinking is a lightweight afterthought
/// rather than a tree walk: [`Strategy::shrink`] proposes *smaller*
/// candidate values (a halving search toward the strategy's minimum for
/// integers, shorter prefixes for collections, per-component candidates
/// for tuples), and the test runner greedily re-tests candidates while
/// they keep failing.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, most aggressive
    /// first. An empty vector means this strategy cannot shrink (the
    /// default — e.g. `prop_map`ped strategies, whose transform cannot be
    /// inverted).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Ties a case-runner closure's argument type to `strategy`'s value type,
/// so the `proptest!` macro can define the closure before the first value
/// exists (plain `|values: &_|` closures cannot be inferred from their
/// body alone).
pub fn case_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), crate::test_runner::TestCaseError>,
{
    run
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof!
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Halving-search shrink candidates for an integer `v` toward `lo`: the
/// minimum itself, then the midpoint, then the predecessor. Greedy
/// re-testing of these converges like a binary search on the smallest
/// still-failing value. All arithmetic goes through [`ShrinkInt`] in
/// `i128`, so signed ranges spanning zero (e.g. `-100i8..100`) cannot
/// overflow.
fn shrink_toward<T: ShrinkInt>(lo: T, v: T) -> Vec<T> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mid = T::midpoint_toward(lo, v);
    if mid > lo && mid < v {
        out.push(mid);
    }
    let prev = v.pred();
    if prev > lo && prev != mid {
        out.push(prev);
    }
    out
}

/// Overflow-safe integer helpers for [`shrink_toward`]. Every primitive
/// integer the strategies cover fits in `i128`, so the midpoint is
/// computed there.
trait ShrinkInt: Copy + PartialOrd {
    /// `lo + (v - lo) / 2`, computed without overflow.
    fn midpoint_toward(lo: Self, v: Self) -> Self;
    /// `self - 1`; callers guarantee `self > lo ≥ MIN`.
    fn pred(self) -> Self;
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl ShrinkInt for $t {
            fn midpoint_toward(lo: Self, v: Self) -> Self {
                ((lo as i128) + ((v as i128) - (lo as i128)) / 2) as $t
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Width via i128 and offset via wrapping add, so ranges
                // with a negative start (sign-extension under `as u128`)
                // neither mis-size nor overflow.
                let width = ((self.end as i128) - (self.start as i128)) as u128;
                self.start.wrapping_add(rng.below_u128(width) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = ((hi as i128) - (lo as i128)) as u128 + 1;
                lo.wrapping_add(rng.below_u128(width) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy for "any value" of a primitive type — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates uniformly distributed values of a primitive type.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                if *value > (0 as $t) {
                    shrink_toward(0 as $t, *value)
                } else {
                    Vec::new()
                }
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
