//! The glob-import surface test files use: `use proptest::prelude::*;`.

pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
