//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    /// One element source per position — so a mapped element strategy
    /// shrinks through its own source at every index.
    type Source = Vec<S::Source>;

    fn generate_source(&self, rng: &mut TestRng) -> Vec<S::Source> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len)
            .map(|_| self.element.generate_source(rng))
            .collect()
    }

    fn realize(&self, source: &Vec<S::Source>) -> Vec<S::Value> {
        source.iter().map(|s| self.element.realize(s)).collect()
    }

    /// Length shrinking by halving search toward the minimum length
    /// (shortest allowed prefix, half-length prefix, drop-last), then
    /// element shrinking at every position — any element may be the one
    /// keeping the failure alive, so each gets candidates (the greedy
    /// runner's budget bounds the total work).
    fn shrink_source(&self, source: &Vec<S::Source>) -> Vec<Vec<S::Source>> {
        let mut out = Vec::new();
        let len = source.len();
        if len > self.size.lo {
            out.push(source[..self.size.lo].to_vec());
            let half = self.size.lo + (len - self.size.lo) / 2;
            if half > self.size.lo && half < len {
                out.push(source[..half].to_vec());
            }
            if len - 1 > self.size.lo && len - 1 != half {
                out.push(source[..len - 1].to_vec());
            }
        }
        for (i, s) in source.iter().enumerate() {
            for cand in self.element.shrink_source(s) {
                let mut next = source.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
