//! A self-contained, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this crate reimplements exactly the slice of proptest's API the test
//! suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`], the
//! `prop_assert*` family, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Greedy halving shrink over generation sources instead of a value
//!   tree.** Every strategy draws a *source* (its generation witness,
//!   [`Strategy::generate_source`]) and realizes the finished value from
//!   it. On failure the runner re-tests simpler source candidates
//!   proposed by [`Strategy::shrink_source`] — a halving search toward
//!   each integer strategy's minimum (and toward shorter vectors) —
//!   adopting any candidate that still fails until none do, then reports
//!   both the original and the minimal failing inputs. Because
//!   `prop_map` retains its source strategy and re-maps each shrunk
//!   source candidate (shrink the input, not the output), mapped
//!   strategies minimize too — no transform inversion needed. Unlike
//!   real proptest there is no backtracking through a generation tree.
//! * **Fixed derivation of randomness** (SplitMix64 keyed by test name),
//!   rather than an OS-seeded RNG with a persisted failure file; failures
//!   reproduce exactly on re-run.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                // All argument strategies as one tuple strategy, so
                // sources draw exactly as before (same rng consumption
                // order) and shrinking can hold other arguments fixed
                // while one shrinks.
                let strategies = ($(($strat),)+);
                let run_case = $crate::strategy::case_runner(&strategies, |values| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(values);
                    (|| { $body ::std::result::Result::Ok(()) })()
                });
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                while accepted < config.cases {
                    let source =
                        $crate::strategy::Strategy::generate_source(&strategies, &mut rng);
                    let values = $crate::strategy::Strategy::realize(&strategies, &source);
                    match run_case(&values) {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(64),
                                "{}: too many cases rejected by prop_assume!",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            // Greedy halving shrink over generation
                            // sources: keep adopting simpler source
                            // candidates while their realized values still
                            // fail, so the report names a minimal case,
                            // not just the first one generated. Bounded so
                            // pathological strategies cannot loop.
                            let mut minimal_source = source;
                            let mut minimal = values;
                            let mut minimal_msg = msg.clone();
                            let mut steps = 0usize;
                            let mut budget = 256usize;
                            'shrink: loop {
                                let candidates = $crate::strategy::Strategy::shrink_source(
                                    &strategies,
                                    &minimal_source,
                                );
                                if candidates.is_empty() {
                                    break;
                                }
                                let mut advanced = false;
                                for cand in candidates {
                                    if budget == 0 {
                                        break 'shrink;
                                    }
                                    budget -= 1;
                                    let value =
                                        $crate::strategy::Strategy::realize(&strategies, &cand);
                                    if let Err($crate::test_runner::TestCaseError::Fail(m)) =
                                        run_case(&value)
                                    {
                                        minimal_source = cand;
                                        minimal = value;
                                        minimal_msg = m;
                                        steps += 1;
                                        advanced = true;
                                        break;
                                    }
                                }
                                if !advanced {
                                    break;
                                }
                            }
                            panic!(
                                "property {name} failed at case {case}: {msg}\n\
                                 minimal failing inputs after {steps} shrink step(s) \
                                 (halving search): {minimal:?}\n\
                                 minimal case failure: {minimal_msg}\n\
                                 inputs are regenerated deterministically from the test name; \
                                 case {case} will recur at the same index.\n\
                                 rerun exactly:\n    cargo test -p {pkg} {name}",
                                name = stringify!($name),
                                case = accepted,
                                msg = msg,
                                minimal = minimal,
                                minimal_msg = minimal_msg,
                                steps = steps,
                                pkg = env!("CARGO_PKG_NAME"),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
