//! A self-contained, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this crate reimplements exactly the slice of proptest's API the test
//! suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`], the
//! `prop_assert*` family, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and seed;
//!   inputs are regenerated deterministically from the test name, so
//!   failures still reproduce exactly on re-run.
//! * **Fixed derivation of randomness** (SplitMix64 keyed by test name),
//!   rather than an OS-seeded RNG with a persisted failure file.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(64),
                                "{}: too many cases rejected by prop_assume!",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            // No shrinking in this stand-in, but generation
                            // is deterministic per test name: the same case
                            // index always regenerates the same inputs, so
                            // the rerun path is one copy-paste.
                            panic!(
                                "property {name} failed at case {case}: {msg}\n\
                                 inputs are regenerated deterministically from the test name \
                                 (no shrinking); case {case} will recur at the same index.\n\
                                 rerun exactly:\n    cargo test -p {pkg} {name}",
                                name = stringify!($name),
                                case = accepted,
                                msg = msg,
                                pkg = env!("CARGO_PKG_NAME"),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
