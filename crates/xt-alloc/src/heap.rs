//! The `Heap` trait implemented by every allocator in the reproduction.

use std::error::Error;
use std::fmt;

use xt_arena::{Addr, Arena};

use crate::{AllocTime, SiteHash};

/// Why an allocation request could not be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeapError {
    /// The heap could not grow to satisfy the request.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// The request exceeds the largest supported size class.
    RequestTooLarge {
        /// Bytes requested.
        requested: usize,
        /// Largest supported request.
        max: usize,
    },
    /// A zero-byte request, which the reproduced allocators reject.
    ZeroSize,
    /// The allocation clock reached an armed *malloc breakpoint* (§3.4).
    ///
    /// In iterative mode, Exterminator replays the program and aborts
    /// execution at the allocation time recorded in the first heap image;
    /// this error is how the replayed workload gets stopped.
    Breakpoint {
        /// The clock value at which the breakpoint fired.
        at: AllocTime,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            HeapError::RequestTooLarge { requested, max } => {
                write!(f, "request of {requested} bytes exceeds maximum {max}")
            }
            HeapError::ZeroSize => write!(f, "zero-byte allocation request"),
            HeapError::Breakpoint { at } => write!(f, "malloc breakpoint reached at {at}"),
        }
    }
}

impl Error for HeapError {}

/// What a call to [`Heap::free`] did.
///
/// DieHard-family allocators never treat a bad `free` as fatal: double and
/// invalid frees are tolerated by construction (Table 1), so they are
/// reported as benign outcomes rather than errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FreeOutcome {
    /// The object was released.
    Freed,
    /// The pointer addressed an already-free slot; the request was ignored.
    DoubleFreeIgnored,
    /// The pointer was not one the allocator handed out; ignored.
    InvalidFreeIgnored,
    /// The correcting allocator deferred the release (dangling-pointer
    /// patch, §6.3). The object remains readable until the deferral expires.
    Deferred {
        /// Clock tick at which the object will actually be released.
        until: AllocTime,
    },
}

impl FreeOutcome {
    /// `true` if the request released or scheduled a release of the object.
    #[must_use]
    pub fn accepted(self) -> bool {
        matches!(self, FreeOutcome::Freed | FreeOutcome::Deferred { .. })
    }
}

/// A dynamic memory allocator over the simulated address space.
///
/// All of the reproduction's allocators implement this object-safe trait so
/// workloads can run unmodified over any of them:
///
/// * `xt-baseline`'s Lea-style freelist allocator (the GNU libc stand-in),
/// * `xt-diehard`'s randomized allocator,
/// * `xt-diefast`'s probabilistic debugging allocator,
/// * `xt-correct`'s correcting allocator,
/// * `xt-faults`' error-injecting wrappers.
///
/// Loads and stores go through [`Heap::arena`]/[`Heap::arena_mut`]; the
/// allocator only hands out [`Addr`]s and tracks metadata.
pub trait Heap {
    /// Allocates `size` bytes, recording `site` as the allocation site.
    ///
    /// # Errors
    ///
    /// Returns a [`HeapError`] when the request cannot be satisfied or a
    /// malloc breakpoint fired; workloads are expected to propagate it and
    /// abort, as a crashing process would.
    fn malloc(&mut self, size: usize, site: SiteHash) -> Result<Addr, HeapError>;

    /// Frees the object at `ptr`, recording `site` as the deallocation site.
    ///
    /// Never fails: invalid and double frees are tolerated and reported via
    /// the returned [`FreeOutcome`].
    fn free(&mut self, ptr: Addr, site: SiteHash) -> FreeOutcome;

    /// Read access to the simulated address space.
    fn arena(&self) -> &Arena;

    /// Write access to the simulated address space.
    fn arena_mut(&mut self) -> &mut Arena;

    /// Current allocation clock (number of `malloc` calls so far).
    fn clock(&self) -> AllocTime;

    /// The usable size of the live object at `ptr`, if `ptr` is the base of
    /// a live allocation. Mirrors `malloc_usable_size`.
    fn usable_size(&self, ptr: Addr) -> Option<usize>;

    /// The allocation site recorded for the live object at `ptr`.
    ///
    /// This is Fig. 6's `getAllocSite`: the correcting allocator keys its
    /// deferral table by (allocation site, deallocation site) pairs, so it
    /// must recover the allocation site at `free` time. Allocators that do
    /// not track sites (e.g. the baseline) return `None`, which disables
    /// deferral matching.
    fn alloc_site_of(&self, ptr: Addr) -> Option<SiteHash> {
        let _ = ptr;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(HeapError::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64"));
        assert!(HeapError::RequestTooLarge {
            requested: 10,
            max: 5
        }
        .to_string()
        .contains("exceeds"));
        assert!(HeapError::Breakpoint {
            at: AllocTime::from_raw(9)
        }
        .to_string()
        .contains("t9"));
        assert!(!HeapError::ZeroSize.to_string().is_empty());
    }

    #[test]
    fn outcome_acceptance() {
        assert!(FreeOutcome::Freed.accepted());
        assert!(FreeOutcome::Deferred {
            until: AllocTime::from_raw(5)
        }
        .accepted());
        assert!(!FreeOutcome::DoubleFreeIgnored.accepted());
        assert!(!FreeOutcome::InvalidFreeIgnored.accepted());
    }

    #[test]
    fn heap_is_object_safe() {
        fn _takes_dyn(_h: &mut dyn Heap) {}
    }
}
