//! The allocation clock and object identities.
//!
//! The paper measures time "by the number of allocations to date" (§3.4) and
//! identifies the nth allocated object by the object id n (§3.2). Object ids
//! are what let the error isolator match the same logical object across
//! independently randomized heaps, where addresses are meaningless.

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the allocation clock: the number of `malloc` calls so far.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AllocTime(u64);

impl AllocTime {
    /// The clock before any allocation.
    pub const ZERO: AllocTime = AllocTime(0);

    /// Wraps a raw tick count.
    #[must_use]
    pub const fn from_raw(ticks: u64) -> Self {
        AllocTime(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next tick.
    #[must_use]
    pub const fn next(self) -> AllocTime {
        AllocTime(self.0 + 1)
    }

    /// Ticks elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub const fn since(self, earlier: AllocTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for AllocTime {
    type Output = AllocTime;

    fn add(self, rhs: u64) -> AllocTime {
        AllocTime(self.0 + rhs)
    }
}

impl Sub<AllocTime> for AllocTime {
    type Output = u64;

    fn sub(self, rhs: AllocTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("allocation clock underflow")
    }
}

impl fmt::Debug for AllocTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AllocTime({})", self.0)
    }
}

impl fmt::Display for AllocTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identity of a heap object: `ObjectId(n)` is the nth object allocated.
///
/// Ids are assigned from the allocation clock, so in deterministic
/// (iterative/replicated) runs the same logical object receives the same id
/// in every differently-seeded heap — the property §3.2 relies on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Wraps a raw ordinal.
    #[must_use]
    pub const fn from_raw(n: u64) -> Self {
        ObjectId(n)
    }

    /// Returns the raw ordinal.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The allocation time at which this object was created.
    #[must_use]
    pub const fn alloc_time(self) -> AllocTime {
        AllocTime(self.0)
    }
}

impl From<AllocTime> for ObjectId {
    fn from(t: AllocTime) -> ObjectId {
        ObjectId(t.raw())
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let t = AllocTime::ZERO;
        assert_eq!(t.next().raw(), 1);
        assert_eq!((t + 10).raw(), 10);
        assert_eq!((t + 10) - (t + 4), 6);
        assert_eq!((t + 4).since(t + 10), 0, "since saturates");
    }

    #[test]
    fn object_id_tracks_alloc_time() {
        let id = ObjectId::from(AllocTime::from_raw(17));
        assert_eq!(id.raw(), 17);
        assert_eq!(id.alloc_time(), AllocTime::from_raw(17));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AllocTime::from_raw(3).to_string(), "t3");
        assert_eq!(ObjectId::from_raw(3).to_string(), "obj#3");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn clock_subtraction_underflow_panics() {
        let _ = AllocTime::ZERO - AllocTime::from_raw(1);
    }
}
