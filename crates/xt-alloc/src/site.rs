//! Allocation/deallocation call-site identification.
//!
//! The paper captures the calling context of each `malloc`/`free` by hashing
//! "the least significant bytes of the five most-recent return addresses"
//! with the DJB2 hash (Fig. 3). Runtime patches are keyed by these 32-bit
//! hashes.
//!
//! Rust workloads have no C call stack to walk, so they maintain an explicit
//! [`SiteStack`] of synthetic program counters — one token per simulated
//! function — which is hashed with the paper's exact function.

use std::fmt;

/// Number of return addresses mixed into a site hash (paper Fig. 3).
pub const SITE_HASH_DEPTH: usize = 5;

/// A 32-bit hash identifying an allocation or deallocation call site.
///
/// # Example
///
/// ```
/// use xt_alloc::SiteHash;
///
/// let site = SiteHash::from_raw(0xdead_beef);
/// assert_eq!(site.raw(), 0xdead_beef);
/// assert_eq!(format!("{site}"), "site:deadbeef");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteHash(u32);

impl SiteHash {
    /// Site hash used when no context is available (empty stack).
    pub const UNKNOWN: SiteHash = SiteHash(0);

    /// Wraps a raw 32-bit hash.
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        SiteHash(raw)
    }

    /// Returns the raw 32-bit hash.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for SiteHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteHash({:#010x})", self.0)
    }
}

impl fmt::Display for SiteHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site:{:08x}", self.0)
    }
}

/// An (allocation site, deallocation site) pair — the key of the paper's
/// deferral table (§6.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SitePair {
    /// Where the object was allocated.
    pub alloc: SiteHash,
    /// Where the object was freed.
    pub free: SiteHash,
}

impl SitePair {
    /// Creates a pair from its two sites.
    #[must_use]
    pub const fn new(alloc: SiteHash, free: SiteHash) -> Self {
        SitePair { alloc, free }
    }
}

impl fmt::Display for SitePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.alloc, self.free)
    }
}

/// The paper's site-information hash (Fig. 3): DJB2 over five program
/// counters.
///
/// ```text
/// int computeHash (int * pc)
///     int hash = 5381;
///     for (int i = 0; i < 5; i++)
///         hash = ((hash << 5) + hash) + pc[i];
///     return hash;
/// ```
#[must_use]
pub fn djb2_site_hash(pcs: &[u32; SITE_HASH_DEPTH]) -> u32 {
    let mut hash: u32 = 5381;
    for &pc in pcs {
        hash = hash.wrapping_mul(33).wrapping_add(pc);
    }
    hash
}

/// An explicit stack of synthetic return addresses.
///
/// Workloads push a token when "entering a function" and pop on exit; the
/// allocators call [`SiteStack::hash`] at each `malloc`/`free` to obtain the
/// paper's calling-context hash. When fewer than five frames are live the
/// missing slots hash as zero, mirroring a shallow C stack.
///
/// # Example
///
/// ```
/// use xt_alloc::SiteStack;
///
/// let mut stack = SiteStack::new();
/// stack.push(10);
/// stack.push(20);
/// assert_eq!(stack.depth(), 2);
/// let deep = stack.hash();
/// stack.pop();
/// assert_ne!(deep, stack.hash());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteStack {
    frames: Vec<u32>,
}

impl SiteStack {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        SiteStack::default()
    }

    /// Creates a stack pre-populated with `frames`, oldest first.
    #[must_use]
    pub fn from_frames(frames: &[u32]) -> Self {
        SiteStack {
            frames: frames.to_vec(),
        }
    }

    /// Pushes a synthetic return address.
    pub fn push(&mut self, pc: u32) {
        self.frames.push(pc);
    }

    /// Pops the most recent return address.
    ///
    /// Returns the popped frame, or `None` if the stack was empty.
    pub fn pop(&mut self) -> Option<u32> {
        self.frames.pop()
    }

    /// Number of live frames.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Hashes the five most-recent frames with [`djb2_site_hash`], the most
    /// recent frame first.
    #[must_use]
    pub fn hash(&self) -> SiteHash {
        let mut pcs = [0u32; SITE_HASH_DEPTH];
        for (i, slot) in pcs.iter_mut().enumerate() {
            if i < self.frames.len() {
                *slot = self.frames[self.frames.len() - 1 - i];
            }
        }
        SiteHash(djb2_site_hash(&pcs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn djb2_matches_reference_values() {
        // hash = 5381; five rounds of hash*33 + pc, computed by hand for the
        // all-zero stack: 5381 * 33^5 mod 2^32.
        let expected = 5381u32
            .wrapping_mul(33)
            .wrapping_mul(33)
            .wrapping_mul(33)
            .wrapping_mul(33)
            .wrapping_mul(33);
        assert_eq!(djb2_site_hash(&[0; 5]), expected);
    }

    #[test]
    fn djb2_depends_on_every_position() {
        let base = djb2_site_hash(&[1, 2, 3, 4, 5]);
        for i in 0..5 {
            let mut pcs = [1, 2, 3, 4, 5];
            pcs[i] += 1;
            assert_ne!(djb2_site_hash(&pcs), base, "position {i} ignored");
        }
    }

    #[test]
    fn djb2_is_order_sensitive() {
        assert_ne!(
            djb2_site_hash(&[1, 2, 3, 4, 5]),
            djb2_site_hash(&[5, 4, 3, 2, 1])
        );
    }

    #[test]
    fn stack_hash_uses_five_most_recent() {
        let mut stack = SiteStack::from_frames(&[9, 9, 9, 1, 2, 3, 4, 5]);
        // Only the last five frames matter: pushing more than five frames and
        // changing a deep one must not affect the hash.
        let h = stack.hash();
        assert_eq!(h, SiteStack::from_frames(&[7, 7, 1, 2, 3, 4, 5]).hash());
        stack.push(6);
        assert_ne!(stack.hash(), h);
    }

    #[test]
    fn empty_stack_hashes_like_all_zero() {
        assert_eq!(
            SiteStack::new().hash(),
            SiteHash::from_raw(djb2_site_hash(&[0; 5]))
        );
    }

    #[test]
    fn shallow_stack_pads_with_zero() {
        let stack = SiteStack::from_frames(&[42]);
        assert_eq!(
            stack.hash(),
            SiteHash::from_raw(djb2_site_hash(&[42, 0, 0, 0, 0]))
        );
    }

    #[test]
    fn push_pop_round_trips() {
        let mut stack = SiteStack::new();
        let before = stack.hash();
        stack.push(1);
        stack.push(2);
        assert_eq!(stack.pop(), Some(2));
        assert_eq!(stack.pop(), Some(1));
        assert_eq!(stack.pop(), None);
        assert_eq!(stack.hash(), before);
    }

    #[test]
    fn site_pair_display() {
        let p = SitePair::new(SiteHash::from_raw(1), SiteHash::from_raw(2));
        assert_eq!(p.to_string(), "site:00000001/site:00000002");
    }
}
