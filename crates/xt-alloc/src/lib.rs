//! Allocator-facing API shared by every heap in the Exterminator
//! reproduction: the [`Heap`] trait, allocation/deallocation call-site
//! hashing (paper Fig. 3), the allocation clock, and object identities.
//!
//! Applications ("workloads") are written against [`Heap`] so the same code
//! runs over the GNU-libc-style baseline allocator, plain DieHard, DieFast,
//! the correcting allocator, and any fault-injecting wrapper.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{SiteStack, djb2_site_hash};
//!
//! let mut stack = SiteStack::new();
//! stack.push(0x400100);
//! stack.push(0x400200);
//! let site = stack.hash();
//! assert_eq!(site, stack.hash(), "hashing is pure");
//! stack.pop();
//! assert_ne!(site, stack.hash(), "different calling context, different site");
//! # let _ = djb2_site_hash(&[1, 2, 3, 4, 5]);
//! ```

mod heap;
mod site;
mod time;

pub use heap::{FreeOutcome, Heap, HeapError};
pub use site::{djb2_site_hash, SiteHash, SitePair, SiteStack};
pub use time::{AllocTime, ObjectId};

// Re-export the substrate so dependents need only one import path.
pub use xt_arena::{Addr, Arena, MemFault, Rng, PAGE_SIZE};
