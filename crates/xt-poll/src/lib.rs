//! Readiness polling without dependencies: a thin epoll FFI shim with a
//! portable level-triggered fallback.
//!
//! `xt-net`'s event-loop server needs exactly four primitives: register
//! a socket under a caller-chosen token, change its interest set, wait
//! for readiness with a timeout, and wake the waiter from another
//! thread. The real ecosystem answer is `mio`, but this workspace is
//! built offline — so, in the same stand-in spirit as the local
//! `proptest`/`criterion` crates, this crate implements the subset it
//! needs directly:
//!
//! - **epoll backend** (Linux): raw `extern "C"` declarations against
//!   the libc that `std` already links — `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`, plus an `eventfd` registered under an
//!   internal sentinel token for [`Poller::notify`]. Level-triggered
//!   (the default; no `EPOLLET`), so a short read that leaves bytes
//!   behind re-arms by itself.
//! - **fallback backend** (everywhere, and on Linux when
//!   `XT_POLL_FALLBACK=1`): keeps the registration table in a
//!   [`BTreeMap`] and, on [`Poller::wait`], parks on a condvar for a
//!   small slice of the timeout before reporting **every registered
//!   fd** as ready in fd order. That is a deliberate level-triggered
//!   over-approximation: correctness rests on the caller's sockets
//!   being non-blocking (a spurious readable just yields
//!   `WouldBlock`), and the slice bounds the wakeup rate so the
//!   over-approximation costs milliseconds of latency, not a spin.
//!   [`Poller::notify`] sets a flag and wakes the condvar immediately.
//!
//! Deliberate differences from `mio`: no edge-triggered mode, no
//! `Token` newtype (tokens are `usize`), no `Source` trait (raw fds),
//! and `wait` never allocates beyond the caller's event buffer. Both
//! backends honor the same contract, and the server's soak/unit suites
//! exercise both (the fallback via [`Poller::new_fallback`]).
//!
//! Nothing here touches the deterministic surface: readiness order is
//! explicitly *not* part of any byte-pinned output — `xt-net`'s
//! determinism pin (remote digests == in-process serial digests) holds
//! because the front-end's global sequence number, not poll order,
//! seeds replica execution.

use std::io;
use std::time::Duration;

/// Raw file descriptor, as returned by `std::os::fd::AsRawFd`.
pub type RawFd = i32;

/// What readiness a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the token the fd was registered under, and
/// which directions fired. `error` covers `EPOLLERR`/`EPOLLHUP`; the
/// fallback never reports it (a dead socket surfaces as a 0-byte read
/// on the next level-triggered pass instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// A readiness poller. Construct with [`Poller::new`] (picks epoll on
/// Linux unless `XT_POLL_FALLBACK=1`) or [`Poller::new_fallback`]
/// (forces the portable backend, e.g. to test both paths on one host).
pub struct Poller {
    backend: Backend,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Fallback(fallback::Fallback),
}

impl Poller {
    /// Opens the best backend for this platform. On Linux that is
    /// epoll; set `XT_POLL_FALLBACK=1` to force the portable fallback
    /// (useful for exercising the fallback under the full test suite).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let forced = std::env::var("XT_POLL_FALLBACK").map(|v| v == "1");
            if forced != Ok(true) {
                return Ok(Poller {
                    backend: Backend::Epoll(epoll::Epoll::new()?),
                });
            }
        }
        Ok(Poller::new_fallback())
    }

    /// Opens the portable fallback backend unconditionally.
    pub fn new_fallback() -> Poller {
        Poller {
            backend: Backend::Fallback(fallback::Fallback::new()),
        }
    }

    /// Which backend this poller runs on: `"epoll"` or `"fallback"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Fallback(_) => "fallback",
        }
    }

    /// Registers `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`]; the caller is responsible for making it
    /// non-blocking (both backends are level-triggered and may report
    /// spurious readiness).
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Fallback(f) => f.register(fd, token, interest),
        }
    }

    /// Replaces the interest set (and token) of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Fallback(f) => f.register(fd, token, interest),
        }
    }

    /// Removes a registration. Safe to call right before closing the fd.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.del(fd),
            Backend::Fallback(f) => f.deregister(fd),
        }
    }

    /// Blocks until readiness, a [`Poller::notify`], or `timeout`
    /// (`None` = forever). Clears and refills `events`; returns the
    /// number of events delivered. A notify wake with no ready fds
    /// returns `Ok(0)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout),
            Backend::Fallback(f) => f.wait(events, timeout),
        }
    }

    /// Wakes a concurrent [`Poller::wait`] from another thread. Cheap
    /// and coalescing: many notifies before the next wait cost one
    /// wakeup.
    pub fn notify(&self) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.notify(),
            Backend::Fallback(f) => f.notify(),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The real thing: raw FFI against the libc `std` already links.

    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    /// The kernel ABI's `struct epoll_event`. Packed on x86-64 only —
    /// that is how glibc (`__EPOLL_PACKED`) and the kernel define it;
    /// other architectures use natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Sentinel `data` value for the internal notify eventfd; real
    /// registrations use the caller's token, which a `usize` cannot
    /// collide with on any platform where `usize` ≤ 64 bits... except
    /// exactly at `usize::MAX`, which is therefore rejected at
    /// registration.
    const NOTIFY_DATA: u64 = u64::MAX;

    pub(crate) struct Epoll {
        epfd: RawFd,
        wakefd: RawFd,
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Epoll> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let this = Epoll { epfd, wakefd };
            this.ctl(
                EPOLL_CTL_ADD,
                wakefd,
                NOTIFY_DATA as usize,
                Interest::READABLE,
            )?;
            Ok(this)
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = 0;
            if interest.readable {
                m |= EPOLLIN;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        pub(crate) fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            if token as u64 == NOTIFY_DATA && fd != self.wakefd {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token usize::MAX is reserved for the internal notify fd",
                ));
            }
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(crate) fn del(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels require a non-null event for DEL; pass
            // a dummy unconditionally.
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let ms: i32 = match timeout {
                None => -1,
                // Round sub-millisecond timeouts up so a 100µs request
                // does not degenerate into a busy-poll of 0ms waits.
                Some(d) if d > Duration::ZERO => d.as_millis().clamp(1, i32::MAX as u128) as i32,
                Some(_) => 0,
            };
            const CAP: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = loop {
                match cvt(unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, ms) }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let (bits, data) = (ev.events, ev.data);
                if data == NOTIFY_DATA {
                    // Drain the eventfd counter so level-triggered
                    // readiness re-arms only on the next notify.
                    let mut b = [0u8; 8];
                    unsafe { read(self.wakefd, b.as_mut_ptr(), 8) };
                    continue;
                }
                events.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(events.len())
        }

        pub(crate) fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            let r = unsafe { write(self.wakefd, one.as_ptr(), 8) };
            if r < 0 {
                let e = io::Error::last_os_error();
                // EAGAIN: the counter is already saturated — a wake is
                // pending, which is all a notify promises.
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

mod fallback {
    //! Portable level-triggered over-approximation: every registered fd
    //! is reported ready after a short park, and notify wakes the park.

    use super::{Event, Interest, RawFd};
    use std::collections::BTreeMap;
    use std::io;
    use std::sync::{Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// How long one wait parks before over-approximating readiness.
    /// Bounds the idle wakeup rate at ~500/s per poller; small enough
    /// that the added frame latency stays invisible next to socket RTT.
    const SLICE: Duration = Duration::from_millis(2);

    struct State {
        registrations: BTreeMap<RawFd, (usize, Interest)>,
        notified: bool,
    }

    pub(crate) struct Fallback {
        state: Mutex<State>,
        wake: Condvar,
    }

    impl Fallback {
        pub(crate) fn new() -> Fallback {
            Fallback {
                state: Mutex::new(State {
                    registrations: BTreeMap::new(),
                    notified: false,
                }),
                wake: Condvar::new(),
            }
        }

        fn locked(&self) -> std::sync::MutexGuard<'_, State> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.locked().registrations.insert(fd, (token, interest));
            Ok(())
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.locked().registrations.remove(&fd);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let park = match timeout {
                Some(d) => d.min(SLICE),
                None => SLICE,
            };
            let deadline = Instant::now() + park;
            let mut st = self.locked();
            while !st.notified {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = self
                    .wake
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
            st.notified = false;
            for (_, &(token, interest)) in st.registrations.iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    error: false,
                });
            }
            Ok(events.len())
        }

        pub(crate) fn notify(&self) -> io::Result<()> {
            self.locked().notified = true;
            self.wake.notify_all();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::thread;
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        let mut v = vec![Poller::new_fallback()];
        if cfg!(target_os = "linux") {
            let p = Poller::new().expect("epoll");
            if p.backend_name() == "epoll" {
                v.push(p);
            }
        }
        v
    }

    #[test]
    fn reports_a_readable_listener_on_both_backends() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller
                .register(listener.as_raw_fd(), 7, Interest::READABLE)
                .expect("register");

            // Nothing pending: epoll must time out empty; the fallback
            // over-approximates, which is allowed, so only assert the
            // epoll backend here.
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            if poller.backend_name() == "epoll" {
                assert!(events.is_empty(), "no connection yet");
            }

            let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("conn");
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut saw = false;
            while Instant::now() < deadline && !saw {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .expect("wait");
                saw = events.iter().any(|e| e.token == 7 && e.readable);
            }
            assert!(
                saw,
                "pending accept must surface as readable (backend {})",
                poller.backend_name()
            );
            poller.deregister(listener.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn notify_wakes_a_parked_wait_quickly() {
        for poller in pollers() {
            let poller = std::sync::Arc::new(poller);
            let waker = poller.clone();
            let handle = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                waker.notify().expect("notify");
            });
            let started = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .expect("wait");
            // Fallback waits park at most SLICE per call, so both
            // backends come back well under the 30s timeout.
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "notify must cut the wait short (backend {})",
                poller.backend_name()
            );
            handle.join().expect("join waker");
        }
    }

    #[test]
    fn notify_events_never_leak_a_sentinel_token() {
        for poller in pollers() {
            poller.notify().expect("notify");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            assert!(
                events.iter().all(|e| e.token != usize::MAX),
                "internal wake token must stay internal (backend {})",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn write_interest_fires_on_a_connected_socket() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let mut client =
                TcpStream::connect(listener.local_addr().expect("addr")).expect("conn");
            let (_server_side, _) = listener.accept().expect("accept");
            client.set_nonblocking(true).expect("nonblocking");
            client.write_all(b"x").expect("prime");
            poller
                .register(client.as_raw_fd(), 3, Interest::BOTH)
                .expect("register");
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut writable = false;
            while Instant::now() < deadline && !writable {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .expect("wait");
                writable = events.iter().any(|e| e.token == 3 && e.writable);
            }
            assert!(
                writable,
                "an idle connected socket is writable (backend {})",
                poller.backend_name()
            );
            poller.deregister(client.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn reregister_swaps_token_and_interest() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller
                .register(listener.as_raw_fd(), 1, Interest::READABLE)
                .expect("register");
            poller
                .reregister(listener.as_raw_fd(), 9, Interest::READABLE)
                .expect("reregister");
            let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("conn");
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut token = None;
            while Instant::now() < deadline && token.is_none() {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .expect("wait");
                token = events.iter().find(|e| e.readable).map(|e| e.token);
            }
            assert_eq!(token, Some(9), "backend {}", poller.backend_name());
        }
    }
}
