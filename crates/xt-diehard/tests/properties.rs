//! Property tests for the DieHard allocator's invariants.

use proptest::prelude::*;

use xt_alloc::{FreeOutcome, Heap, Rng, SiteHash};
use xt_arena::Addr;
use xt_diehard::{class_object_size, size_class_of, DieHardConfig, DieHardHeap};

/// A randomized malloc/free script.
#[derive(Clone, Debug)]
enum Op {
    Malloc(usize),
    FreeNth(usize),
    DoubleFreeNth(usize),
    WildFree(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..512).prop_map(Op::Malloc),
        (0usize..64).prop_map(Op::FreeNth),
        (0usize..64).prop_map(Op::DoubleFreeNth),
        (0u64..u64::MAX / 2).prop_map(Op::WildFree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary scripts: live objects never alias, data written to
    /// one object is never visible in another, occupancy respects the 1/M
    /// bound, and invalid/double frees are always benign.
    #[test]
    fn allocator_invariants_hold(seed in 0u64..10_000, ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(seed));
        let site = SiteHash::from_raw(1);
        let mut live: Vec<(Addr, usize, u64)> = Vec::new();
        let mut freed: Vec<Addr> = Vec::new();
        let mut stamp = 0u64;

        for op in ops {
            match op {
                Op::Malloc(size) => {
                    let ptr = heap.malloc(size, site).unwrap();
                    // No overlap with any live object.
                    for &(other, other_size, _) in &live {
                        let sep = ptr >= other + class_object_size(size_class_of(other_size)) as u64
                            || other >= ptr + class_object_size(size_class_of(size)) as u64;
                        prop_assert!(sep, "objects alias: {ptr} vs {other}");
                    }
                    stamp += 1;
                    heap.arena_mut().write_u64(ptr, stamp).unwrap();
                    if size >= 16 {
                        heap.arena_mut().write_u64(ptr + (size - 8) as u64, stamp).unwrap();
                    }
                    live.push((ptr, size, stamp));
                }
                Op::FreeNth(n) => {
                    if live.is_empty() { continue; }
                    let (ptr, _, _) = live.swap_remove(n % live.len());
                    prop_assert_eq!(heap.free(ptr, site), FreeOutcome::Freed);
                    freed.push(ptr);
                }
                Op::DoubleFreeNth(n) => {
                    if freed.is_empty() { continue; }
                    let ptr = freed[n % freed.len()];
                    // Slot may have been reused; either way the heap
                    // survives and live data stays intact (checked below).
                    let _ = heap.free(ptr, site);
                    live.retain(|&(p, _, _)| p != ptr);
                }
                Op::WildFree(raw) => {
                    // Wild frees never free a live object out from under us
                    // unless they happen to hit an exact live base (the
                    // allocator cannot distinguish that from a real free).
                    let addr = Addr::new(raw);
                    if live.iter().all(|&(p, _, _)| p != addr) {
                        let out = heap.free(addr, site);
                        prop_assert!(
                            out == FreeOutcome::InvalidFreeIgnored
                                || out == FreeOutcome::DoubleFreeIgnored,
                            "wild free was honoured: {out:?}"
                        );
                    }
                }
            }
            // Occupancy bound: every class stays within 1/M (+1 slot).
            prop_assert!(
                heap.total_occupied() as f64 * 2.0 <= heap.total_capacity() as f64 + 2.0,
                "over-occupied: {}/{}", heap.total_occupied(), heap.total_capacity()
            );
        }
        // All live data still intact at the end.
        for &(ptr, size, stamp) in &live {
            prop_assert_eq!(heap.arena().read_u64(ptr).unwrap(), stamp);
            if size >= 16 {
                prop_assert_eq!(heap.arena().read_u64(ptr + (size - 8) as u64).unwrap(), stamp);
            }
        }
        prop_assert_eq!(heap.live_objects(), live.len());
    }

    /// The same seed and script always produce the same addresses
    /// (replay determinism — the foundation of iterative mode).
    #[test]
    fn identical_seeds_replay_identically(seed in 0u64..10_000, sizes in proptest::collection::vec(1usize..256, 1..60)) {
        let mut a = DieHardHeap::new(DieHardConfig::with_seed(seed));
        let mut b = DieHardHeap::new(DieHardConfig::with_seed(seed));
        let site = SiteHash::from_raw(2);
        for &size in &sizes {
            prop_assert_eq!(a.malloc(size, site).unwrap(), b.malloc(size, site).unwrap());
        }
    }

    /// Two different seeds rarely agree on placement (full randomization).
    #[test]
    fn different_seeds_place_differently(seed in 0u64..10_000) {
        let mut a = DieHardHeap::new(DieHardConfig::with_seed(seed));
        let mut b = DieHardHeap::new(DieHardConfig::with_seed(seed ^ 0xFFFF_FFFF));
        let site = SiteHash::from_raw(3);
        let same = (0..32)
            .filter(|_| a.malloc(16, site).unwrap() == b.malloc(16, site).unwrap())
            .count();
        prop_assert!(same < 4, "{same}/32 identical placements across seeds");
    }

    /// Object ids equal the allocation ordinal regardless of script.
    #[test]
    fn object_ids_are_ordinals(seed in 0u64..10_000, n in 1usize..80) {
        let mut heap = DieHardHeap::new(DieHardConfig::with_seed(seed));
        let site = SiteHash::from_raw(4);
        let mut rng = Rng::new(seed);
        let mut ptrs = Vec::new();
        for i in 1..=n as u64 {
            let ptr = heap.malloc(16 + rng.below_usize(64), site).unwrap();
            let loc = heap.location_of(ptr).unwrap();
            prop_assert_eq!(heap.meta(loc).object_id.raw(), i);
            ptrs.push(ptr);
            if rng.chance(0.3) {
                let victim = ptrs.swap_remove(rng.below_usize(ptrs.len()));
                heap.free(victim, site);
            }
        }
    }
}
