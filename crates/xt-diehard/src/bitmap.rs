//! The allocation bitmap backing each miniheap.

use xt_arena::Rng;

/// A fixed-size bitmap with one bit per object slot.
///
/// DieHard's heap is *headerless*: whether a slot is in use is recorded
/// here, out of band, where overflowing application writes can never reach
/// it. Double frees are benign because a bit "can only be reset once"
/// (paper §2).
///
/// # Example
///
/// ```
/// use xt_diehard::BitMap;
///
/// let mut bm = BitMap::new(64);
/// assert!(bm.set(10), "first set succeeds");
/// assert!(!bm.set(10), "second set reports already-set");
/// assert!(bm.clear(10));
/// assert!(!bm.clear(10), "second clear reports already-clear");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitMap {
    /// Creates an all-clear bitmap with `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        BitMap {
            words: vec![0u64; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Returns bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Sets bit `idx`; returns `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.ones += 1;
        true
    }

    /// Clears bit `idx`; returns `true` if it was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn clear(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.ones -= 1;
        true
    }

    /// Randomly probes for a clear bit, the core of DieHard's `O(1)`
    /// expected-time allocation. Falls back to a deterministic scan after
    /// `max_probes` misses so allocation never spins (the fallback is
    /// unreachable at the occupancies the growth policy maintains).
    ///
    /// Returns `None` only if every bit is set.
    pub fn probe_clear(&mut self, rng: &mut Rng, max_probes: usize) -> Option<usize> {
        if self.ones == self.len {
            return None;
        }
        for _ in 0..max_probes {
            let idx = rng.below_usize(self.len);
            if !self.get(idx) {
                return Some(idx);
            }
        }
        // Deterministic fallback: first clear bit.
        for (w, &word) in self.words.iter().enumerate() {
            if word != u64::MAX {
                let bit = (!word).trailing_zeros() as usize;
                let idx = w * 64 + bit;
                if idx < self.len {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Iterates over the indices of set bits, word-at-a-time: each word
    /// yields its set bits via `trailing_zeros` instead of probing every
    /// bit position (padding bits past `len` are never set, so no bound
    /// check is needed).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bm = BitMap::new(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!((0..100).all(|i| !bm.get(i)));
        assert!(!bm.is_empty());
        assert!(BitMap::new(0).is_empty());
    }

    #[test]
    fn set_clear_track_counts() {
        let mut bm = BitMap::new(130);
        assert!(bm.set(0));
        assert!(bm.set(64));
        assert!(bm.set(129));
        assert_eq!(bm.count_ones(), 3);
        assert!(!bm.set(64), "setting a set bit is a no-op");
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.clear(64));
        assert!(!bm.clear(64), "clearing a clear bit is a no-op");
        assert_eq!(bm.count_ones(), 2);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitMap::new(10).get(10);
    }

    #[test]
    fn probe_finds_clear_bits() {
        let mut bm = BitMap::new(64);
        let mut rng = Rng::new(3);
        for i in 0..63 {
            bm.set(i);
        }
        // Only bit 63 is clear; probing must find it (via fallback if the
        // random probes miss).
        assert_eq!(bm.probe_clear(&mut rng, 8), Some(63));
    }

    #[test]
    fn probe_on_full_bitmap_is_none() {
        let mut bm = BitMap::new(10);
        for i in 0..10 {
            bm.set(i);
        }
        assert_eq!(bm.probe_clear(&mut Rng::new(1), 100), None);
    }

    #[test]
    fn probe_is_uniform_over_clear_bits() {
        // With half the bitmap set, probes should land roughly uniformly on
        // the clear half.
        let mut bm = BitMap::new(64);
        for i in 0..32 {
            bm.set(i);
        }
        let mut rng = Rng::new(9);
        let mut counts = [0u32; 64];
        for _ in 0..6400 {
            let idx = bm.probe_clear(&mut rng, 1000).unwrap();
            counts[idx] += 1;
        }
        assert!(counts[..32].iter().all(|&c| c == 0));
        for &c in &counts[32..] {
            assert!((100..320).contains(&c), "probe count {c} is not uniform");
        }
    }

    #[test]
    fn fallback_scan_skips_padding_bits() {
        // 65 bits: the second word has 63 padding bits that must never be
        // returned.
        let mut bm = BitMap::new(65);
        for i in 0..65 {
            bm.set(i);
        }
        bm.clear(64);
        let got = bm.probe_clear(&mut Rng::new(4), 0);
        assert_eq!(got, Some(64));
    }
}
