//! The DieHard substrate: a bitmap-based, fully randomized, over-provisioned
//! memory allocator (Berger & Zorn, PLDI 2006), in the adaptive variant that
//! Exterminator builds on (paper §3.1, Fig. 2).
//!
//! Key properties reproduced here:
//!
//! * **Size-class miniheaps.** Objects of one size class live in dedicated
//!   *miniheaps* mapped at random addresses; each new miniheap is twice as
//!   large as the previous largest in its class.
//! * **Over-provisioning.** A size class grows whenever an allocation would
//!   push it past `1/M` occupancy, so at least an `(M-1)/M` fraction of every
//!   class is free space — the fence-post reservoir DieFast's canaries use.
//! * **Random probing.** Allocation probes the class's slots uniformly at
//!   random (expected `O(1)` probes at `1/M` occupancy).
//! * **Benign double/invalid frees.** A bitmap bit can only be reset once,
//!   and range/alignment checks reject pointers the allocator never issued
//!   (Table 1).
//! * **Out-of-band metadata.** Object id, allocation/deallocation sites,
//!   deallocation time and the canary bit are kept per slot, "below the
//!   line" (Fig. 1), never inline where overflows could destroy them.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{Heap, FreeOutcome, SiteHash};
//! use xt_diehard::{DieHardConfig, DieHardHeap};
//!
//! # fn main() -> Result<(), xt_alloc::HeapError> {
//! let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
//! let site = SiteHash::from_raw(0x100);
//! let p = heap.malloc(48, site)?;
//! heap.arena_mut().write_u64(p, 7).unwrap();
//! assert_eq!(heap.free(p, site), FreeOutcome::Freed);
//! // Double frees are tolerated, not fatal.
//! assert_eq!(heap.free(p, site), FreeOutcome::DoubleFreeIgnored);
//! # Ok(())
//! # }
//! ```

mod bitmap;
mod config;
mod heap;
mod history;
mod meta;
mod miniheap;

pub use bitmap::BitMap;
pub use config::DieHardConfig;
pub use heap::{DieHardHeap, SlotRef};
pub use history::{FreeRecord, ObjectLog, ObjectRecord};
pub use meta::{SlotMeta, SlotState};
pub use miniheap::{MiniHeap, MiniHeapId};

/// Log2 of the smallest object size (16 bytes).
pub const MIN_SIZE_LOG2: u32 = 4;

/// Returns the size-class index for a request of `size` bytes.
///
/// Classes are powers of two: class 0 holds 16-byte objects, class 1
/// 32-byte objects, and so on.
///
/// # Panics
///
/// Panics if `size` is zero (callers validate requests first).
#[must_use]
pub fn size_class_of(size: usize) -> usize {
    assert!(size > 0, "zero-size request has no size class");
    let bits = usize::BITS - (size - 1).leading_zeros();
    (bits.max(MIN_SIZE_LOG2) - MIN_SIZE_LOG2) as usize
}

/// Returns the object size (bytes) of size class `class`.
#[must_use]
pub fn class_object_size(class: usize) -> usize {
    1usize << (MIN_SIZE_LOG2 as usize + class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_are_powers_of_two() {
        assert_eq!(size_class_of(1), 0);
        assert_eq!(size_class_of(16), 0);
        assert_eq!(size_class_of(17), 1);
        assert_eq!(size_class_of(32), 1);
        assert_eq!(size_class_of(33), 2);
        assert_eq!(size_class_of(4096), 8);
    }

    #[test]
    fn class_sizes_round_trip() {
        for class in 0..12 {
            let size = class_object_size(class);
            assert_eq!(size_class_of(size), class);
            assert_eq!(size_class_of(size - 1), if size == 16 { 0 } else { class });
        }
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_panics() {
        let _ = size_class_of(0);
    }
}
