//! The adaptive DieHard heap (paper §3.1–3.2, Fig. 2).

use std::collections::BTreeMap;

use xt_alloc::{AllocTime, FreeOutcome, Heap, HeapError, ObjectId, SiteHash};
use xt_arena::{Addr, Arena, Rng};

use crate::{
    class_object_size, size_class_of, DieHardConfig, FreeRecord, MiniHeap, MiniHeapId, ObjectLog,
    ObjectRecord, SlotMeta, SlotState,
};

/// Random probes attempted before falling back to a deterministic scan.
/// At the `1/M ≤ 1/2` occupancy the growth policy maintains, each probe
/// succeeds with probability ≥ 1/2, so 64 misses in a row is unreachable in
/// practice.
const MAX_PROBES: usize = 64;

/// An opaque handle to one object slot: `(size class, miniheap, slot)`.
///
/// Produced by [`DieHardHeap::location_of`] and friends; consumed by the
/// metadata accessors. Handles stay valid for the life of the heap (miniheaps
/// are never unmapped).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotRef {
    class: u32,
    miniheap: u32,
    slot: u32,
}

impl SlotRef {
    /// Size-class index.
    #[must_use]
    pub fn class(self) -> usize {
        self.class as usize
    }

    /// Miniheap ordinal within the class.
    #[must_use]
    pub fn miniheap_index(self) -> usize {
        self.miniheap as usize
    }

    /// Slot index within the miniheap.
    #[must_use]
    pub fn slot(self) -> usize {
        self.slot as usize
    }

    /// The owning miniheap's id.
    #[must_use]
    pub fn miniheap_id(self) -> MiniHeapId {
        MiniHeapId::new(self.class, self.miniheap)
    }
}

#[derive(Debug, Default)]
struct ClassHeap {
    miniheaps: Vec<MiniHeap>,
    /// Slots whose allocation bit is set (live objects + retired bad slots).
    occupied: usize,
    /// Total slots across all miniheaps.
    capacity: usize,
}

/// The fully randomized, over-provisioned DieHard heap.
///
/// See the [crate docs](crate) for the properties reproduced. All loads and
/// stores happen through the embedded [`Arena`]; the heap assigns addresses
/// and maintains out-of-band metadata.
#[derive(Debug)]
pub struct DieHardHeap {
    arena: Arena,
    rng: Rng,
    config: DieHardConfig,
    classes: Vec<ClassHeap>,
    addr_index: BTreeMap<u64, (u32, u32)>,
    clock: AllocTime,
    live_objects: usize,
    breakpoint: Option<AllocTime>,
    history: Option<ObjectLog>,
}

impl DieHardHeap {
    /// Creates an empty heap; miniheaps are mapped lazily per size class.
    #[must_use]
    pub fn new(config: DieHardConfig) -> Self {
        DieHardHeap::with_arena(config, Arena::new())
    }

    /// Creates an empty heap over a donated (typically recycled) address
    /// space. The arena is reset first, so a heap built this way behaves
    /// byte-for-byte like one built by [`DieHardHeap::new`] — but reuses
    /// the donor's page-table allocations. Long-lived replica workers pair
    /// this with [`DieHardHeap::into_arena`] to run many inputs over one
    /// arena instead of rebuilding translation structures per input.
    #[must_use]
    pub fn with_arena(config: DieHardConfig, mut arena: Arena) -> Self {
        arena.reset();
        let n_classes = (config.max_size_log2 - crate::MIN_SIZE_LOG2 + 1) as usize;
        let mut classes = Vec::with_capacity(n_classes);
        classes.resize_with(n_classes, ClassHeap::default);
        DieHardHeap {
            arena,
            rng: Rng::new(config.seed),
            history: config.track_history.then(ObjectLog::new),
            config,
            classes,
            addr_index: BTreeMap::new(),
            clock: AllocTime::ZERO,
            live_objects: 0,
            breakpoint: None,
        }
    }

    /// Tears the heap down, releasing its arena (already reset) for reuse
    /// by the next heap built over it.
    #[must_use]
    pub fn into_arena(self) -> Arena {
        let mut arena = self.arena;
        arena.reset();
        arena
    }

    /// The heap's configuration.
    #[must_use]
    pub fn config(&self) -> &DieHardConfig {
        &self.config
    }

    /// Arms (or disarms) the *malloc breakpoint*: once the allocation clock
    /// reaches `at`, further `malloc` calls fail with
    /// [`HeapError::Breakpoint`] so iterative-mode replays stop at the same
    /// logical time as the original failing run (§3.4).
    pub fn set_breakpoint(&mut self, at: Option<AllocTime>) {
        self.breakpoint = at;
    }

    /// Currently armed breakpoint, if any.
    #[must_use]
    pub fn breakpoint(&self) -> Option<AllocTime> {
        self.breakpoint
    }

    /// Number of live application objects (excludes retired bad slots).
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    /// The allocation history, when enabled in the configuration.
    #[must_use]
    pub fn history(&self) -> Option<&ObjectLog> {
        self.history.as_ref()
    }

    /// Iterates over every miniheap in every size class.
    pub fn miniheaps(&self) -> impl Iterator<Item = &MiniHeap> {
        self.classes.iter().flat_map(|c| c.miniheaps.iter())
    }

    /// Iterates over the miniheaps of one size class.
    pub fn miniheaps_of_class(&self, class: usize) -> impl Iterator<Item = &MiniHeap> {
        self.classes
            .get(class)
            .into_iter()
            .flat_map(|c| c.miniheaps.iter())
    }

    /// Resolves an exact object base address to its slot.
    #[must_use]
    pub fn location_of(&self, addr: Addr) -> Option<SlotRef> {
        let (loc, mh) = self.lookup(addr)?;
        mh.slot_of(addr).map(|slot| SlotRef {
            class: loc.0,
            miniheap: loc.1,
            slot: slot as u32,
        })
    }

    /// Resolves any address inside a slot to that slot (interior pointers).
    #[must_use]
    pub fn location_containing(&self, addr: Addr) -> Option<SlotRef> {
        let (loc, mh) = self.lookup(addr)?;
        mh.slot_containing(addr).map(|slot| SlotRef {
            class: loc.0,
            miniheap: loc.1,
            slot: slot as u32,
        })
    }

    fn lookup(&self, addr: Addr) -> Option<((u32, u32), &MiniHeap)> {
        let (&base, &(class, mh_idx)) = self.addr_index.range(..=addr.get()).next_back()?;
        let mh = &self.classes[class as usize].miniheaps[mh_idx as usize];
        debug_assert_eq!(mh.base().get(), base);
        (addr < mh.end()).then_some(((class, mh_idx), mh))
    }

    /// The miniheap owning `loc`.
    #[must_use]
    pub fn miniheap(&self, loc: SlotRef) -> &MiniHeap {
        &self.classes[loc.class()].miniheaps[loc.miniheap_index()]
    }

    /// Metadata of the slot at `loc`.
    #[must_use]
    pub fn meta(&self, loc: SlotRef) -> &SlotMeta {
        self.miniheap(loc).meta(loc.slot())
    }

    /// Base address of the slot at `loc`.
    #[must_use]
    pub fn slot_addr(&self, loc: SlotRef) -> Addr {
        self.miniheap(loc).slot_addr(loc.slot())
    }

    /// Physically adjacent slots (previous, next) within the same miniheap.
    /// Random placement means nothing else is ever adjacent (§3.3).
    #[must_use]
    pub fn neighbors(&self, loc: SlotRef) -> (Option<SlotRef>, Option<SlotRef>) {
        let mh = self.miniheap(loc);
        let prev = (loc.slot() > 0).then(|| SlotRef {
            slot: loc.slot - 1,
            ..loc
        });
        let next = (loc.slot() + 1 < mh.n_slots()).then(|| SlotRef {
            slot: loc.slot + 1,
            ..loc
        });
        (prev, next)
    }

    /// Sets the canary flag on a slot (DieFast bookkeeping). Also mirrors
    /// the flag into the allocation history when tracking is on.
    pub fn set_canaried(&mut self, loc: SlotRef, canaried: bool) {
        let meta = self.classes[loc.class()].miniheaps[loc.miniheap_index()].meta_mut(loc.slot());
        meta.canaried = canaried;
        let id = meta.object_id;
        let was_used = meta.ever_used;
        if canaried && was_used {
            if let Some(history) = self.history.as_mut() {
                history.record_canaried(id);
            }
        }
    }

    /// Reserves a uniformly random free slot able to hold `size` bytes: the
    /// allocation bit is set, but the slot's metadata — still describing its
    /// *previous* occupant — is left untouched and the allocation clock does
    /// not tick. The caller must finish with [`DieHardHeap::commit_slot`]
    /// (hand the slot to the application) or
    /// [`DieHardHeap::retire_reserved`] (bad-object isolation).
    ///
    /// This two-phase protocol exists for DieFast: canaries must be verified
    /// *before* the previous occupant's identity and deallocation record are
    /// overwritten, because exactly that metadata is the evidence the error
    /// isolator needs when the canary turns out corrupted.
    ///
    /// # Errors
    ///
    /// Fails like `malloc`: breakpoint armed and reached, zero/oversized
    /// request, or the class cannot grow.
    pub fn reserve_slot(&mut self, size: usize) -> Result<SlotRef, HeapError> {
        if let Some(bp) = self.breakpoint {
            if self.clock >= bp {
                return Err(HeapError::Breakpoint { at: self.clock });
            }
        }
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        if size > self.config.max_request() {
            return Err(HeapError::RequestTooLarge {
                requested: size,
                max: self.config.max_request(),
            });
        }
        let class = size_class_of(size);
        self.ensure_capacity(class)?;
        let (mh_idx, slot) = self.take_random_slot(class);
        Ok(SlotRef {
            class: class as u32,
            miniheap: mh_idx as u32,
            slot: slot as u32,
        })
    }

    /// Commits a reserved slot to the application: ticks the allocation
    /// clock, assigns the next object id, and records the allocation.
    /// Returns the object's address.
    pub fn commit_slot(&mut self, loc: SlotRef, size: usize, site: SiteHash) -> Addr {
        self.clock = self.clock.next();
        let id = ObjectId::from(self.clock);
        self.finish_commit(loc, id, self.clock, size, site)
    }

    /// Commits a reserved slot as a *replacement* for a previously reserved
    /// slot that was retired: the object keeps `id`, `alloc_time`, and
    /// `site`, and the clock does **not** tick, so object ids keep matching
    /// across replicas and replays (§3.2).
    pub fn commit_slot_as(
        &mut self,
        loc: SlotRef,
        id: ObjectId,
        alloc_time: AllocTime,
        size: usize,
        site: SiteHash,
    ) -> Addr {
        self.finish_commit(loc, id, alloc_time, size, site)
    }

    fn finish_commit(
        &mut self,
        loc: SlotRef,
        id: ObjectId,
        alloc_time: AllocTime,
        size: usize,
        site: SiteHash,
    ) -> Addr {
        let mh = &mut self.classes[loc.class()].miniheaps[loc.miniheap_index()];
        let addr = mh.slot_addr(loc.slot());
        let meta = mh.meta_mut(loc.slot());
        debug_assert_eq!(meta.state, SlotState::Free, "commit of unreserved slot");
        *meta = SlotMeta {
            state: SlotState::Live,
            object_id: id,
            alloc_site: site,
            free_site: SiteHash::UNKNOWN,
            alloc_time,
            free_time: AllocTime::ZERO,
            canaried: false,
            requested: size as u32,
            ever_used: true,
        };
        self.live_objects += 1;
        if let Some(history) = self.history.as_mut() {
            history.record_alloc(ObjectRecord {
                id,
                alloc_site: site,
                alloc_time,
                size_class: loc.class,
                requested: size as u32,
                miniheap: loc.miniheap_id(),
                slot: loc.slot,
                free: None,
            });
        }
        addr
    }

    /// Retires a reserved slot as *bad* (DieFast bad-object isolation,
    /// §3.3): the allocation bit stays set so the slot is never reused, and
    /// both its contents and its previous occupant's metadata are preserved
    /// as evidence for the error isolator.
    ///
    /// # Panics
    ///
    /// Panics if the slot's metadata is not in the `Free` state (i.e. the
    /// slot was not obtained from [`DieHardHeap::reserve_slot`]).
    pub fn retire_reserved(&mut self, loc: SlotRef) {
        let meta = self.classes[loc.class()].miniheaps[loc.miniheap_index()].meta_mut(loc.slot());
        assert_eq!(
            meta.state,
            SlotState::Free,
            "retire_reserved expects a reserved (metadata-Free) slot"
        );
        meta.state = SlotState::Bad;
    }

    /// Total slots mapped across all classes.
    #[must_use]
    pub fn total_capacity(&self) -> usize {
        self.classes.iter().map(|c| c.capacity).sum()
    }

    /// Occupied slots (live + bad) across all classes.
    #[must_use]
    pub fn total_occupied(&self) -> usize {
        self.classes.iter().map(|c| c.occupied).sum()
    }

    fn ensure_capacity(&mut self, class: usize) -> Result<(), HeapError> {
        loop {
            let c = &self.classes[class];
            let needs_growth = (c.occupied + 1) as f64 * self.config.multiplier > c.capacity as f64;
            if !needs_growth {
                return Ok(());
            }
            self.grow_class(class)?;
        }
    }

    fn grow_class(&mut self, class: usize) -> Result<(), HeapError> {
        let object_size = class_object_size(class);
        let largest = self.classes[class]
            .miniheaps
            .iter()
            .map(MiniHeap::n_slots)
            .max();
        // "A new miniheap that is twice as large as the previous largest."
        let n_slots = largest.map_or(self.config.initial_slots, |n| n * 2);
        let len = n_slots * object_size;
        let base = self
            .arena
            .try_map(len, &mut self.rng)
            .map_err(|_| HeapError::OutOfMemory { requested: len })?;
        let mh_idx = self.classes[class].miniheaps.len() as u32;
        let id = MiniHeapId::new(class as u32, mh_idx);
        let mh = MiniHeap::new(id, base, object_size, n_slots, self.clock);
        self.addr_index.insert(base.get(), (class as u32, mh_idx));
        let c = &mut self.classes[class];
        c.capacity += n_slots;
        c.miniheaps.push(mh);
        Ok(())
    }

    /// Picks a uniformly random free slot in the class. The class is at most
    /// `1/M` occupied when called, so random probing terminates quickly; a
    /// deterministic fallback keeps the worst case bounded.
    fn take_random_slot(&mut self, class: usize) -> (usize, usize) {
        let capacity = self.classes[class].capacity;
        debug_assert!(capacity > self.classes[class].occupied);
        for _ in 0..MAX_PROBES {
            let t = self.rng.below(capacity as u64) as usize;
            let (mh_idx, slot) = Self::nth_slot(&self.classes[class], t);
            let mh = &mut self.classes[class].miniheaps[mh_idx];
            if mh.bitmap_mut().set(slot) {
                self.classes[class].occupied += 1;
                return (mh_idx, slot);
            }
        }
        // Deterministic fallback: first miniheap with space.
        for (mh_idx, mh) in self.classes[class].miniheaps.iter_mut().enumerate() {
            if mh.used_slots() < mh.n_slots() {
                let mut rng = Rng::new(self.rng.next_u64());
                let slot = mh
                    .bitmap_mut()
                    .probe_clear(&mut rng, MAX_PROBES)
                    .expect("miniheap reported free space");
                assert!(mh.bitmap_mut().set(slot));
                self.classes[class].occupied += 1;
                return (mh_idx, slot);
            }
        }
        unreachable!("class occupancy accounting violated");
    }

    fn nth_slot(class: &ClassHeap, mut t: usize) -> (usize, usize) {
        for (mh_idx, mh) in class.miniheaps.iter().enumerate() {
            if t < mh.n_slots() {
                return (mh_idx, t);
            }
            t -= mh.n_slots();
        }
        unreachable!("slot ordinal beyond class capacity");
    }
}

impl Heap for DieHardHeap {
    fn malloc(&mut self, size: usize, site: SiteHash) -> Result<Addr, HeapError> {
        let loc = self.reserve_slot(size)?;
        Ok(self.commit_slot(loc, size, site))
    }

    fn free(&mut self, ptr: Addr, site: SiteHash) -> FreeOutcome {
        let Some(loc) = self.location_of(ptr) else {
            return FreeOutcome::InvalidFreeIgnored;
        };
        let clock = self.clock;
        let mh = &mut self.classes[loc.class()].miniheaps[loc.miniheap_index()];
        let meta = mh.meta_mut(loc.slot());
        match meta.state {
            SlotState::Free | SlotState::Bad => FreeOutcome::DoubleFreeIgnored,
            SlotState::Live => {
                meta.state = SlotState::Free;
                meta.free_site = site;
                meta.free_time = clock;
                meta.canaried = false;
                let id = meta.object_id;
                assert!(mh.bitmap_mut().clear(loc.slot()));
                self.classes[loc.class()].occupied -= 1;
                self.live_objects -= 1;
                if let Some(history) = self.history.as_mut() {
                    history.record_free(
                        id,
                        FreeRecord {
                            free_site: site,
                            free_time: clock,
                            canaried: false,
                        },
                    );
                }
                FreeOutcome::Freed
            }
        }
    }

    fn arena(&self) -> &Arena {
        &self.arena
    }

    fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    fn clock(&self) -> AllocTime {
        self.clock
    }

    fn usable_size(&self, ptr: Addr) -> Option<usize> {
        let loc = self.location_of(ptr)?;
        self.meta(loc)
            .is_live()
            .then(|| class_object_size(loc.class()))
    }

    fn alloc_site_of(&self, ptr: Addr) -> Option<SiteHash> {
        let loc = self.location_of(ptr)?;
        let meta = self.meta(loc);
        meta.is_live().then_some(meta.alloc_site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(seed: u64) -> DieHardHeap {
        DieHardHeap::new(DieHardConfig::with_seed(seed))
    }

    const SITE: SiteHash = SiteHash::from_raw(0xabc);

    #[test]
    fn malloc_returns_distinct_writable_objects() {
        let mut h = heap(1);
        let mut ptrs = Vec::new();
        for i in 0..100 {
            let p = h.malloc(24, SITE).unwrap();
            h.arena_mut().write_u64(p, i).unwrap();
            ptrs.push(p);
        }
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(h.arena().read_u64(p).unwrap(), i as u64);
        }
        let mut sorted = ptrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "all objects distinct");
    }

    #[test]
    fn object_ids_count_allocations() {
        let mut h = heap(2);
        for expected in 1..=10u64 {
            let p = h.malloc(16, SITE).unwrap();
            let loc = h.location_of(p).unwrap();
            assert_eq!(h.meta(loc).object_id, ObjectId::from_raw(expected));
            assert_eq!(h.clock(), AllocTime::from_raw(expected));
        }
    }

    #[test]
    fn occupancy_never_exceeds_one_over_m() {
        let mut h = heap(3);
        let mut live = Vec::new();
        for _ in 0..500 {
            live.push(h.malloc(16, SITE).unwrap());
        }
        let class = &h.classes[0];
        assert!(
            class.occupied as f64 * h.config.multiplier <= class.capacity as f64 + 1.0,
            "occupied {} capacity {}",
            class.occupied,
            class.capacity
        );
    }

    #[test]
    fn miniheaps_double_in_size() {
        let mut h = heap(4);
        for _ in 0..200 {
            h.malloc(16, SITE).unwrap();
        }
        let sizes: Vec<usize> = h.miniheaps_of_class(0).map(MiniHeap::n_slots).collect();
        assert!(sizes.len() >= 2, "growth expected");
        for w in sizes.windows(2) {
            assert_eq!(w[1], w[0] * 2, "sizes {sizes:?}");
        }
    }

    #[test]
    fn free_then_double_free_is_benign() {
        let mut h = heap(5);
        let p = h.malloc(32, SITE).unwrap();
        assert_eq!(h.free(p, SITE), FreeOutcome::Freed);
        assert_eq!(h.free(p, SITE), FreeOutcome::DoubleFreeIgnored);
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn invalid_frees_are_ignored() {
        let mut h = heap(6);
        let p = h.malloc(32, SITE).unwrap();
        // Interior pointer.
        assert_eq!(h.free(p + 1, SITE), FreeOutcome::InvalidFreeIgnored);
        // Wild pointer.
        assert_eq!(
            h.free(Addr::new(0x6666_0000), SITE),
            FreeOutcome::InvalidFreeIgnored
        );
        // The object is still live and intact.
        assert_eq!(h.usable_size(p), Some(32));
    }

    #[test]
    fn free_records_site_and_time() {
        let mut h = heap(7);
        let p = h.malloc(32, SITE).unwrap();
        h.malloc(32, SITE).unwrap();
        let free_site = SiteHash::from_raw(0xdef);
        h.free(p, free_site);
        let loc = h.location_of(p).unwrap();
        let meta = h.meta(loc);
        assert!(meta.is_freed_object());
        assert_eq!(meta.free_site, free_site);
        assert_eq!(meta.free_time, AllocTime::from_raw(2));
    }

    #[test]
    fn zero_and_oversize_requests_fail() {
        let mut h = heap(8);
        assert_eq!(h.malloc(0, SITE), Err(HeapError::ZeroSize));
        assert!(matches!(
            h.malloc(1 << 20, SITE),
            Err(HeapError::RequestTooLarge { .. })
        ));
    }

    #[test]
    fn breakpoint_stops_allocation() {
        let mut h = heap(9);
        h.set_breakpoint(Some(AllocTime::from_raw(3)));
        for _ in 0..3 {
            h.malloc(16, SITE).unwrap();
        }
        assert!(matches!(
            h.malloc(16, SITE),
            Err(HeapError::Breakpoint { .. })
        ));
        assert_eq!(h.clock(), AllocTime::from_raw(3));
        h.set_breakpoint(None);
        h.malloc(16, SITE).unwrap();
    }

    #[test]
    fn layouts_differ_across_seeds() {
        let mut h1 = heap(100);
        let mut h2 = heap(200);
        let a: Vec<Addr> = (0..20).map(|_| h1.malloc(16, SITE).unwrap()).collect();
        let b: Vec<Addr> = (0..20).map(|_| h2.malloc(16, SITE).unwrap()).collect();
        assert_ne!(a, b, "two seeds gave identical layouts");
    }

    #[test]
    fn layouts_identical_for_same_seed() {
        let mut h1 = heap(42);
        let mut h2 = heap(42);
        for _ in 0..50 {
            assert_eq!(h1.malloc(16, SITE).unwrap(), h2.malloc(16, SITE).unwrap());
        }
    }

    #[test]
    fn placement_within_class_is_random() {
        // The same allocation sequence must not produce consecutive slots.
        let mut h = heap(11);
        let ptrs: Vec<u64> = (0..32).map(|_| h.malloc(16, SITE).unwrap().get()).collect();
        let consecutive = ptrs.windows(2).filter(|w| w[1] == w[0] + 16).count();
        assert!(consecutive < 8, "{consecutive} consecutive placements");
    }

    #[test]
    fn neighbors_are_adjacent_slots() {
        let mut h = heap(12);
        let p = h.malloc(16, SITE).unwrap();
        let loc = h.location_of(p).unwrap();
        let (prev, next) = h.neighbors(loc);
        if let Some(prev) = prev {
            assert_eq!(h.slot_addr(loc) - h.slot_addr(prev), 16);
        }
        if let Some(next) = next {
            assert_eq!(h.slot_addr(next) - h.slot_addr(loc), 16);
        }
        assert!(prev.is_some() || next.is_some());
    }

    #[test]
    fn retired_slot_is_never_reused_and_keeps_evidence() {
        let mut h = DieHardHeap::new(DieHardConfig::with_seed(13).initial_slots(4));
        // Create a freed object whose metadata should survive retirement.
        let p = h.malloc(16, SITE).unwrap();
        let free_site = SiteHash::from_raw(0xf5ee);
        h.free(p, free_site);
        // Reserve slots until we land on p's slot, then retire it.
        let target = h.location_of(p).unwrap();
        let mut reserved;
        loop {
            reserved = h.reserve_slot(16).unwrap();
            if reserved == target {
                h.retire_reserved(reserved);
                break;
            }
            let q = h.commit_slot(reserved, 16, SITE);
            assert_ne!(q, p);
        }
        let meta = h.meta(target);
        assert_eq!(meta.state, SlotState::Bad);
        assert_eq!(meta.object_id, ObjectId::from_raw(1), "evidence destroyed");
        assert_eq!(meta.free_site, free_site, "free site destroyed");
        // The bad slot is never handed out again and frees of it are benign.
        for _ in 0..64 {
            let q = h.malloc(16, SITE).unwrap();
            assert_ne!(q, p, "bad slot was reused");
        }
        assert_eq!(h.free(p, SITE), FreeOutcome::DoubleFreeIgnored);
    }

    #[test]
    fn commit_slot_as_preserves_identity_without_clock_tick() {
        let mut h = heap(14);
        let p = h.malloc(40, SITE).unwrap();
        let loc = h.location_of(p).unwrap();
        let id = h.meta(loc).object_id;
        let t = h.meta(loc).alloc_time;
        let clock = h.clock();
        // Simulate DieFast's replacement path: reserve another slot and
        // commit it under the same identity.
        let reserved = h.reserve_slot(40).unwrap();
        let q = h.commit_slot_as(reserved, id, t, 40, SITE);
        assert_ne!(q, p);
        assert_eq!(h.clock(), clock, "clock must not tick");
        let new_loc = h.location_of(q).unwrap();
        assert_eq!(h.meta(new_loc).object_id, id);
        assert_eq!(h.meta(new_loc).requested, 40);
        assert_eq!(h.live_objects(), 2);
    }

    #[test]
    fn reserve_does_not_touch_previous_metadata() {
        let mut h = heap(20);
        let p = h.malloc(16, SITE).unwrap();
        let fsite = SiteHash::from_raw(0xfefe);
        h.free(p, fsite);
        let target = h.location_of(p).unwrap();
        h.set_canaried(target, true);
        // Reserve until the old slot comes up again.
        loop {
            let r = h.reserve_slot(16).unwrap();
            if r == target {
                let meta = *h.meta(r);
                assert_eq!(meta.state, SlotState::Free);
                assert_eq!(meta.free_site, fsite);
                assert!(meta.canaried);
                assert_eq!(meta.object_id, ObjectId::from_raw(1));
                break;
            }
            h.commit_slot(r, 16, SITE);
        }
    }

    #[test]
    fn usable_size_rounds_to_class() {
        let mut h = heap(15);
        let p = h.malloc(33, SITE).unwrap();
        assert_eq!(h.usable_size(p), Some(64));
        h.free(p, SITE);
        assert_eq!(h.usable_size(p), None);
        assert_eq!(h.usable_size(Addr::new(1)), None);
    }

    #[test]
    fn history_records_allocs_and_frees() {
        let mut h = DieHardHeap::new(DieHardConfig::with_seed(16).track_history(true));
        let p = h.malloc(16, SITE).unwrap();
        let q = h.malloc(16, SiteHash::from_raw(2)).unwrap();
        h.free(p, SiteHash::from_raw(3));
        let _ = q;
        let log = h.history().unwrap();
        assert_eq!(log.len(), 2);
        let rec = log.get(ObjectId::from_raw(1)).unwrap();
        assert_eq!(rec.free.unwrap().free_site, SiteHash::from_raw(3));
        assert!(log.get(ObjectId::from_raw(2)).unwrap().free.is_none());
    }

    #[test]
    fn distinct_size_classes_use_distinct_miniheaps() {
        let mut h = heap(17);
        let small = h.malloc(16, SITE).unwrap();
        let large = h.malloc(1000, SITE).unwrap();
        let ls = h.location_of(small).unwrap();
        let ll = h.location_of(large).unwrap();
        assert_ne!(ls.class(), ll.class());
        assert_eq!(h.miniheap(ll).object_size(), 1024);
    }

    #[test]
    fn location_lookup_rejects_gaps() {
        let mut h = heap(18);
        let p = h.malloc(16, SITE).unwrap();
        let mh_end = h.miniheap(h.location_of(p).unwrap()).end();
        assert_eq!(h.location_containing(mh_end), None);
        assert_eq!(h.location_of(Addr::new(0x10)), None);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut h = heap(19);
        let mut rng = Rng::new(77);
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for round in 0..2000u64 {
            if !live.is_empty() && rng.chance(0.45) {
                let (p, tag) = live.swap_remove(rng.below_usize(live.len()));
                assert_eq!(h.arena().read_u64(p).unwrap(), tag, "corruption");
                assert_eq!(h.free(p, SITE), FreeOutcome::Freed);
            } else {
                let size = 16 + rng.below_usize(200);
                let p = h.malloc(size, SITE).unwrap();
                h.arena_mut().write_u64(p, round).unwrap();
                live.push((p, round));
            }
        }
        assert_eq!(h.live_objects(), live.len());
        for (p, tag) in live {
            assert_eq!(h.arena().read_u64(p).unwrap(), tag);
        }
    }
}
